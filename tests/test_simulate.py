"""Tests for the simulation layer: hardware, profiles, cost and memory models."""

import pytest

from repro.simulate import (
    BASE_CELL_COST_NS,
    CostModel,
    ENGINE_ORDER,
    ENGINE_PROFILES,
    GB,
    LAPTOP,
    MACHINE_CONFIGS,
    MemoryModel,
    PAPER_SERVER,
    SERVER,
    SimulatedOOMError,
    VirtualClock,
    WORKSTATION,
    average_runs,
    get_machine,
    get_profile,
    trimmed_mean,
)


class TestHardware:
    def test_table4_configurations(self):
        assert LAPTOP.cpu_threads == 8 and LAPTOP.ram_gb == 16
        assert WORKSTATION.cpu_threads == 16 and WORKSTATION.ram_gb == 64
        assert SERVER.cpu_threads == 24 and SERVER.ram_gb == 128

    def test_paper_server_has_gpu(self):
        assert PAPER_SERVER.has_gpu
        assert PAPER_SERVER.gpu.memory_gb == 40

    def test_smaller_machines_have_no_gpu(self):
        assert not LAPTOP.has_gpu and not SERVER.has_gpu

    def test_lookup(self):
        assert get_machine("laptop") is LAPTOP
        with pytest.raises(KeyError):
            get_machine("mainframe")
        assert set(MACHINE_CONFIGS) >= {"laptop", "workstation", "server"}

    def test_usable_ram_below_total(self):
        assert LAPTOP.usable_ram_bytes < LAPTOP.ram_bytes

    def test_describe_row(self):
        row = LAPTOP.describe()
        assert row["machine"] == "laptop" and row["cpus"] == 8


class TestProfiles:
    def test_every_engine_has_a_profile(self):
        for name in ENGINE_ORDER:
            assert name in ENGINE_PROFILES

    def test_feature_matrix_matches_table1(self):
        assert not get_profile("pandas").multithreading
        assert get_profile("cudf").gpu_acceleration
        assert get_profile("polars").lazy_evaluation
        assert get_profile("sparksql").cluster_deploy
        assert not get_profile("datatable").supports_parquet

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_profile("arrowframe")

    def test_multiplier_defaults_to_one(self):
        assert get_profile("pandas").multiplier("sort") == 1.0
        assert get_profile("polars").multiplier("isna") < 0.1


class TestCostModel:
    def test_more_rows_cost_more(self):
        model = CostModel(PAPER_SERVER)
        small = model.estimate(get_profile("pandas"), "groupby", 1_000_000, 4)
        large = model.estimate(get_profile("pandas"), "groupby", 50_000_000, 4)
        assert large.seconds > small.seconds

    def test_parallel_engine_faster_than_pandas_on_large_input(self):
        model = CostModel(PAPER_SERVER)
        pandas = model.estimate(get_profile("pandas"), "sort", 50_000_000, 3)
        polars = model.estimate(get_profile("polars"), "sort", 50_000_000, 3)
        assert polars.seconds < pandas.seconds

    def test_gpu_engine_fast_on_paper_server(self):
        model = CostModel(PAPER_SERVER)
        cudf = model.estimate(get_profile("cudf"), "join", 50_000_000, 3)
        pandas = model.estimate(get_profile("pandas"), "join", 50_000_000, 3)
        assert cudf.seconds < pandas.seconds / 10

    def test_spark_overhead_dominates_small_inputs(self):
        model = CostModel(PAPER_SERVER)
        spark = model.estimate(get_profile("sparksql"), "metadata", 1000, 1)
        pandas = model.estimate(get_profile("pandas"), "metadata", 1000, 1)
        assert spark.seconds > pandas.seconds

    def test_lazy_overhead_smaller_than_eager(self):
        model = CostModel(PAPER_SERVER)
        eager = model.estimate(get_profile("sparksql"), "filter", 10_000_000, 2, lazy=False)
        lazy = model.estimate(get_profile("sparksql"), "filter", 10_000_000, 2, lazy=True)
        assert lazy.seconds < eager.seconds

    def test_io_priced_by_bytes(self):
        model = CostModel(PAPER_SERVER)
        small = model.estimate(get_profile("pandas"), "read_csv", 1000, 5, bytes_in=10 * GB // 10)
        large = model.estimate(get_profile("pandas"), "read_csv", 1000, 5, bytes_in=10 * GB)
        assert large.seconds > small.seconds

    def test_jitter_is_deterministic(self):
        model = CostModel(PAPER_SERVER)
        a = model.estimate(get_profile("polars"), "sort", 1_000_000, 2, run_index=1)
        b = model.estimate(get_profile("polars"), "sort", 1_000_000, 2, run_index=1)
        c = model.estimate(get_profile("polars"), "sort", 1_000_000, 2, run_index=2)
        assert a.seconds == b.seconds
        assert a.seconds != c.seconds

    def test_spill_penalty_charged(self):
        model = CostModel(LAPTOP)
        cost = model.estimate(get_profile("sparksql"), "sort", 200_000_000, 10,
                              bytes_in=40 * GB, dataset_bytes=40 * GB)
        assert cost.spilled and cost.seconds > 1.0

    def test_every_op_class_has_base_cost(self):
        for op in ("isna", "sort", "groupby", "join", "pivot", "dedup", "stats"):
            assert op in BASE_CELL_COST_NS


class TestMemoryModel:
    def test_fits_small_dataset(self):
        model = MemoryModel(LAPTOP)
        assessment = model.assess(get_profile("pandas"), "groupby", 10 * 1024 ** 2,
                                  dataset_bytes=100 * 1024 ** 2)
        assert assessment.peak_bytes > 0 and not assessment.spilled

    def test_pandas_oom_on_laptop_for_huge_dataset(self):
        model = MemoryModel(LAPTOP)
        with pytest.raises(SimulatedOOMError):
            model.assess(get_profile("pandas"), "pivot", 4 * GB, dataset_bytes=13 * GB,
                         pipeline_scope=True)

    def test_sparksql_spills_instead_of_oom(self):
        model = MemoryModel(LAPTOP)
        assessment = model.assess(get_profile("sparksql"), "pivot", 4 * GB,
                                  dataset_bytes=13 * GB, pipeline_scope=True)
        assert assessment.spilled

    def test_vaex_streams_columnwise_ops(self):
        model = MemoryModel(LAPTOP)
        assessment = model.assess(get_profile("vaex"), "filter", 8 * GB, dataset_bytes=13 * GB)
        assert assessment.streamed

    def test_cudf_limited_by_gpu_memory(self):
        model = MemoryModel(PAPER_SERVER)
        with pytest.raises(SimulatedOOMError) as err:
            model.assess(get_profile("cudf"), "join", 30 * GB, dataset_bytes=30 * GB)
        assert err.value.device == "GPU"

    def test_cudf_unavailable_without_gpu(self):
        model = MemoryModel(LAPTOP)
        with pytest.raises(SimulatedOOMError):
            model.assess(get_profile("cudf"), "join", 1 * GB, dataset_bytes=1 * GB)

    def test_sparksql_only_laptop_finisher_for_full_taxi(self):
        """Table 5 headline: SparkSQL alone completes the full Taxi pipeline on a laptop."""
        taxi_bytes = int(13 * GB)
        model = MemoryModel(LAPTOP)
        finishers = [name for name in ENGINE_ORDER if name != "cudf"
                     and model.fits_pipeline(get_profile(name), taxi_bytes)]
        assert finishers == ["sparksql"]

    def test_pandas_cannot_finish_taxi_even_on_server(self):
        taxi_bytes = int(13 * GB)
        model = MemoryModel(SERVER)
        assert not model.fits_pipeline(get_profile("pandas"), taxi_bytes)
        assert model.fits_pipeline(get_profile("sparksql"), taxi_bytes)

    def test_modin_ray_scales_further_than_dask(self):
        taxi_bytes = int(13 * GB)
        model = MemoryModel(WORKSTATION)
        ray_ok = model.fits_pipeline(get_profile("modin_ray"), taxi_bytes)
        dask_ok = model.fits_pipeline(get_profile("modin_dask"), taxi_bytes)
        assert ray_ok and not dask_ok


class TestClock:
    def test_trimmed_mean_removes_extremes(self):
        values = [1.0] * 8 + [100.0, 0.0001]
        assert trimmed_mean(values) == pytest.approx(1.0)

    def test_trimmed_mean_small_samples(self):
        assert trimmed_mean([2.0, 4.0]) == pytest.approx(3.0)
        assert trimmed_mean([]) == 0.0

    def test_average_runs_alias(self):
        assert average_runs([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_virtual_clock(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.elapsed_seconds == pytest.approx(2.0)
        clock.reset()
        assert clock.elapsed_seconds == 0.0
        with pytest.raises(ValueError):
            clock.advance(-1)
