"""Tests for the TPC-H substrate: data generator, queries and runner."""

import pytest

from repro.engines import create_engine, create_engines
from repro.simulate import PAPER_SERVER
from repro.tpch import (
    QUERIES,
    TABLE_NAMES,
    TPCHRunner,
    generate_tpch,
    get_query,
    query_names,
    rows_at_scale,
)


class TestSchema:
    def test_eight_tables(self):
        assert len(TABLE_NAMES) == 8

    def test_rows_at_scale(self):
        assert rows_at_scale("lineitem", 1.0) == 6_000_000
        assert rows_at_scale("nation", 100.0) == 25
        with pytest.raises(KeyError):
            rows_at_scale("warehouse", 1.0)


class TestDatagen:
    def test_table_cardinality_ratios(self, tpch_data):
        tables = tpch_data.tables
        assert set(tables) == set(TABLE_NAMES)
        assert tables["nation"].num_rows == 25
        assert tables["region"].num_rows == 5
        assert tables["lineitem"].num_rows > tables["orders"].num_rows

    def test_foreign_keys_are_valid(self, tpch_data):
        orders = tpch_data["orders"]
        customers = set(tpch_data["customer"]["c_custkey"].to_list())
        assert set(orders["o_custkey"].to_list()) <= customers
        lineitem = tpch_data["lineitem"]
        order_keys = set(orders["o_orderkey"].to_list())
        assert set(lineitem["l_orderkey"].to_list()) <= order_keys
        nation_keys = set(tpch_data["nation"]["n_nationkey"].to_list())
        assert set(tpch_data["supplier"]["s_nationkey"].to_list()) <= nation_keys

    def test_value_domains(self, tpch_data):
        lineitem = tpch_data["lineitem"]
        assert lineitem["l_discount"].min() >= 0.0
        assert lineitem["l_discount"].max() <= 0.11
        assert lineitem["l_quantity"].min() >= 1
        assert tpch_data["lineitem"].null_fraction() == 0.0

    def test_dates_ordered(self, tpch_data):
        lineitem = tpch_data["lineitem"]
        ship = lineitem["l_shipdate"].to_list()
        receipt = lineitem["l_receiptdate"].to_list()
        assert all(r > s for s, r in zip(ship, receipt))

    def test_determinism(self):
        a = generate_tpch(0.001, seed=3)
        b = generate_tpch(0.001, seed=3)
        assert a["orders"].equals(b["orders"])

    def test_row_scale_and_memory(self, tpch_data):
        assert tpch_data.row_scale == pytest.approx(10.0 / 0.001)
        assert tpch_data.nominal_memory_bytes() > 10 * 1024 ** 3

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_tpch(0.0)


class TestQueries:
    def test_22_queries_registered(self):
        assert len(QUERIES) == 22
        assert query_names()[0] == "q01" and query_names()[-1] == "q22"

    def test_unknown_query(self):
        with pytest.raises(KeyError):
            get_query("q99")

    @pytest.mark.parametrize("name", query_names())
    def test_query_executes_and_optimization_preserves_result(self, tpch_data, name):
        plan = get_query(name)(tpch_data)
        optimized = plan.collect()
        baseline = get_query(name)(tpch_data).collect(optimize_plan=False)
        assert optimized.equals(baseline)
        assert optimized.num_columns > 0

    def test_q01_aggregates_by_flag_and_status(self, tpch_data):
        out = get_query("q01")(tpch_data).collect()
        assert {"l_returnflag", "l_linestatus"} <= set(out.columns)
        assert out.num_rows <= 6

    def test_q06_is_highly_selective(self, tpch_data):
        out = get_query("q06")(tpch_data).collect()
        assert out.num_rows == 1
        assert out["revenue"].to_list()[0] >= 0

    def test_q03_limits_to_ten_rows(self, tpch_data):
        assert get_query("q03")(tpch_data).collect().num_rows <= 10

    def test_q10_revenue_sorted_descending(self, tpch_data):
        out = get_query("q10")(tpch_data).collect()
        revenue = out["revenue"].to_list()
        assert revenue == sorted(revenue, reverse=True)


class TestRunner:
    def test_single_query_result(self, tpch_data):
        runner = TPCHRunner(tpch_data, runs=1)
        outcome = runner.run_query(create_engine("polars"), "q01", keep_frame=True)
        assert not outcome.failed and outcome.seconds > 0
        assert outcome.frame is not None

    def test_engines_agree_on_results(self, tpch_data):
        runner = TPCHRunner(tpch_data, runs=1)
        engines = create_engines(["pandas", "polars", "sparksql", "cudf", "duckdb"],
                                 PAPER_SERVER)
        frames = {}
        for name, engine in engines.items():
            outcome = runner.run_query(engine, "q05", keep_frame=True)
            frames[name] = outcome.frame
        reference = frames.pop("pandas")
        for name, frame in frames.items():
            assert frame.equals(reference), f"{name} result differs on q05"

    def test_matrix_shape(self, tpch_data):
        runner = TPCHRunner(tpch_data, runs=1)
        engines = create_engines(["polars", "cudf"], PAPER_SERVER)
        matrix = runner.run_matrix(engines, queries=["q01", "q06"])
        assert set(matrix) == {"polars", "cudf"}
        assert set(matrix["polars"]) == {"q01", "q06"}

    def test_cudf_fastest_on_q01(self, tpch_data):
        runner = TPCHRunner(tpch_data, runs=1)
        engines = create_engines(["pandas", "polars", "cudf", "vaex"], PAPER_SERVER)
        times = {name: runner.run_query(engine, "q01").seconds
                 for name, engine in engines.items()}
        assert times["cudf"] == min(times.values())
        assert times["polars"] < times["pandas"]
        assert times["vaex"] > times["polars"]
