"""Tests for the synthetic datasets and their pipelines."""

import pytest

from repro.core import Stage
from repro.datasets import (
    DATASET_NAMES,
    DATASET_SPECS,
    build_pipelines,
    generate_dataset,
    get_dataset_spec,
    get_pipeline,
    get_pipelines,
    pipeline_call_counts,
    table2,
)
from repro.simulate import LAPTOP, PAPER_SERVER


class TestSpecs:
    def test_four_datasets_registered(self):
        assert set(DATASET_NAMES) == {"athlete", "loan", "patrol", "taxi"}

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_dataset_spec("imdb")

    @pytest.mark.parametrize("name,rows,cols", [
        ("athlete", 200_000, 15),
        ("loan", 2_000_000, 151),
        ("patrol", 27_000_000, 34),
        ("taxi", 77_000_000, 18),
    ])
    def test_nominal_characteristics_match_table2(self, name, rows, cols):
        spec = get_dataset_spec(name)
        assert spec.nominal_rows == rows
        assert spec.num_columns == cols
        assert spec.numeric_columns + spec.string_columns + spec.boolean_columns == cols


class TestGeneration:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_generated_schema_matches_spec(self, name):
        spec = get_dataset_spec(name)
        dataset = generate_dataset(name, scale=0.2, seed=5)
        assert dataset.frame.num_columns == spec.num_columns
        numeric = sum(1 for d in dataset.frame.dtypes.values() if d.is_numeric and d.value != "bool")
        booleans = sum(1 for d in dataset.frame.dtypes.values() if d.value == "bool")
        strings = sum(1 for d in dataset.frame.dtypes.values()
                      if d.value in ("string", "categorical"))
        assert numeric == spec.numeric_columns
        assert booleans == spec.boolean_columns
        assert strings == spec.string_columns

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_null_fraction_close_to_spec(self, name):
        spec = get_dataset_spec(name)
        dataset = generate_dataset(name, scale=0.3, seed=5)
        assert abs(dataset.frame.null_fraction() - spec.null_fraction) < 0.08

    def test_generation_is_deterministic(self):
        a = generate_dataset("athlete", scale=0.1, seed=9)
        b = generate_dataset("athlete", scale=0.1, seed=9)
        assert a.frame.equals(b.frame)

    def test_different_seeds_differ(self):
        a = generate_dataset("athlete", scale=0.1, seed=1)
        b = generate_dataset("athlete", scale=0.1, seed=2)
        assert not a.frame.equals(b.frame)

    def test_row_scale_extrapolation(self):
        dataset = generate_dataset("taxi", scale=0.1)
        assert dataset.nominal_rows == 77_000_000
        assert dataset.row_scale == pytest.approx(77_000_000 / dataset.physical_rows)
        assert dataset.nominal_memory_bytes > 1024 ** 3

    def test_sample_scales_nominal_size(self):
        dataset = generate_dataset("taxi", scale=0.2)
        half = dataset.sample(0.5)
        assert half.nominal_rows == pytest.approx(dataset.nominal_rows * 0.5, rel=0.01)
        assert half.physical_rows < dataset.physical_rows

    def test_simulation_context(self):
        dataset = generate_dataset("athlete", scale=0.2)
        sim = dataset.simulation_context(PAPER_SERVER, runs=5)
        assert sim.nominal_rows == 200_000
        assert sim.dataset_bytes > 0
        assert set(sim.column_bytes) == set(dataset.frame.columns)
        laptop_sim = dataset.simulation_context(LAPTOP)
        assert laptop_sim.machine is LAPTOP

    def test_write_files(self, tmp_path):
        dataset = generate_dataset("athlete", scale=0.05)
        paths = dataset.write_files(tmp_path)
        assert paths["csv"].exists() and paths["rparquet"].exists()

    def test_table2_rows(self):
        rows = table2(scale=0.1)
        assert [r["dataset"] for r in rows] == list(DATASET_NAMES)
        assert all("null_pct" in r for r in rows)


class TestPipelines:
    def test_three_pipelines_per_dataset(self):
        all_pipelines = build_pipelines()
        assert set(all_pipelines) == set(DATASET_NAMES)
        assert all(len(p) == 3 for p in all_pipelines.values())

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_pipelines_reference_real_columns(self, name):
        dataset = generate_dataset(name, scale=0.1)
        for pipeline in get_pipelines(name):
            # Columns produced by earlier calccol steps are legitimate targets.
            derived = {str(s.params.get("target")) for s in pipeline.steps
                       if s.preparator == "calccol"}
            known = set(dataset.frame.columns) | derived
            for step in pipeline.steps:
                for key in ("by", "columns", "subset"):
                    value = step.params.get(key)
                    names = [value] if isinstance(value, str) else list(value or [])
                    if isinstance(value, dict):
                        names = list(value)
                    for column in names:
                        assert column in known, (
                            f"{pipeline.name}:{step.preparator} references unknown "
                            f"column {column!r}")

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_pipelines_start_with_read(self, name):
        for pipeline in get_pipelines(name):
            assert pipeline.steps[0].preparator == "read"
            assert Stage.EDA in pipeline.stages()

    def test_first_pipeline_is_heaviest(self):
        counts = [len(p) for p in get_pipelines("taxi")]
        assert counts[0] == max(counts)

    def test_get_pipeline_index_bounds(self):
        with pytest.raises(IndexError):
            get_pipeline("taxi", 5)
        with pytest.raises(KeyError):
            get_pipelines("imdb")

    def test_call_counts_structure(self):
        counts = pipeline_call_counts("athlete")
        assert all(len(v) == 3 for v in counts.values())
        assert counts["read"] == [1, 1, 1]
