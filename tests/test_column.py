"""Unit tests for the Column type: construction, nulls, casts, kernels."""

import numpy as np
import pytest

from repro.frame import BOOL, CATEGORICAL, DATETIME, FLOAT64, INT64, STRING, Column
from repro.frame.errors import DTypeError, LengthMismatchError


class TestConstruction:
    def test_infers_int64(self):
        col = Column.from_values([1, 2, 3])
        assert col.dtype is INT64
        assert col.to_list() == [1, 2, 3]

    def test_infers_float64(self):
        col = Column.from_values([1.5, 2.0])
        assert col.dtype is FLOAT64

    def test_infers_string(self):
        col = Column.from_values(["a", "b"])
        assert col.dtype is STRING

    def test_infers_bool(self):
        col = Column.from_values([True, False])
        assert col.dtype is BOOL

    def test_none_becomes_null(self):
        col = Column.from_values([1, None, 3])
        assert col.null_count() == 1
        assert col.to_list() == [1, None, 3]

    def test_nan_becomes_null(self):
        col = Column.from_values([1.0, float("nan"), 3.0])
        assert col.null_count() == 1

    def test_from_numpy_float_array(self):
        col = Column.from_values(np.array([1.0, np.nan, 2.0]))
        assert col.dtype is FLOAT64
        assert col.null_count() == 1

    def test_from_numpy_int_array(self):
        col = Column.from_values(np.arange(5))
        assert col.dtype is INT64
        assert len(col) == 5

    def test_explicit_dtype_string(self):
        col = Column.from_values([1, 2], "string")
        assert col.dtype is STRING
        assert col.to_list() == ["1", "2"]

    def test_categorical_encoding(self):
        col = Column.from_values(["x", "y", "x", None], CATEGORICAL)
        assert col.dtype is CATEGORICAL
        assert col.to_list() == ["x", "y", "x", None]
        assert col.categories is not None and len(col.categories) == 2

    def test_datetime_parsing(self):
        col = Column.from_values(["2015-01-01", None], DATETIME)
        assert col.dtype is DATETIME
        assert col.null_count() == 1
        assert col[0] > 0

    def test_full_null(self):
        col = Column.full_null(4, FLOAT64)
        assert col.null_count() == 4

    def test_validity_length_mismatch(self):
        with pytest.raises(LengthMismatchError):
            Column(np.array([1, 2, 3]), INT64, validity=np.array([True]))


class TestNullHandling:
    def test_is_null_and_not_null(self):
        col = Column.from_values([1, None, 3])
        assert col.is_null().to_list() == [False, True, False]
        assert col.not_null().to_list() == [True, False, True]

    def test_fill_null_numeric(self):
        col = Column.from_values([1, None, 3]).fill_null(0)
        assert col.null_count() == 0
        assert col.to_list() == [1, 0, 3]

    def test_fill_null_string(self):
        col = Column.from_values(["a", None]).fill_null("missing")
        assert col.to_list() == ["a", "missing"]

    def test_fill_null_categorical_adds_category(self):
        col = Column.from_values(["a", None], CATEGORICAL).fill_null("zz")
        assert col.to_list() == ["a", "zz"]

    def test_drop_null(self):
        col = Column.from_values([1, None, 3]).drop_null()
        assert col.to_list() == [1, 3]

    def test_fill_null_noop_when_no_nulls(self):
        col = Column.from_values([1, 2])
        assert col.fill_null(9).to_list() == [1, 2]


class TestSelection:
    def test_take(self):
        col = Column.from_values([10, 20, 30])
        assert col.take(np.array([2, 0])).to_list() == [30, 10]

    def test_filter_with_mask(self):
        col = Column.from_values([1, 2, 3, 4])
        assert col.filter(np.array([True, False, True, False])).to_list() == [1, 3]

    def test_filter_length_mismatch(self):
        with pytest.raises(LengthMismatchError):
            Column.from_values([1, 2]).filter(np.array([True]))

    def test_slice_and_head(self):
        col = Column.from_values(list(range(10)))
        assert col.slice(2, 3).to_list() == [2, 3, 4]
        assert col.head(2).to_list() == [0, 1]


class TestCast:
    def test_int_to_float(self):
        assert Column.from_values([1, 2]).cast(FLOAT64).to_list() == [1.0, 2.0]

    def test_float_to_string(self):
        assert Column.from_values([1.5]).cast(STRING).to_list() == ["1.5"]

    def test_string_to_int(self):
        assert Column.from_values(["3", "4"]).cast(INT64).to_list() == [3, 4]

    def test_string_to_categorical_roundtrip(self):
        col = Column.from_values(["b", "a", "b"]).cast(CATEGORICAL)
        assert col.cast(STRING).to_list() == ["b", "a", "b"]

    def test_cast_preserves_nulls(self):
        col = Column.from_values([1, None]).cast(FLOAT64)
        assert col.null_count() == 1

    def test_cast_same_dtype_copies(self):
        col = Column.from_values([1, 2])
        assert col.cast(INT64).to_list() == [1, 2]


class TestArithmeticAndComparison:
    def test_add_scalar(self):
        assert Column.from_values([1, 2]).add(1).to_list() == [2, 3]

    def test_add_columns_propagates_nulls(self):
        out = Column.from_values([1, None]).add(Column.from_values([10, 20]))
        assert out.to_list() == [11, None]

    def test_division_yields_float(self):
        out = Column.from_values([4, 9]).div(2)
        assert out.dtype is FLOAT64
        assert out.to_list() == [2.0, 4.5]

    def test_division_by_zero_is_null(self):
        out = Column.from_values([1.0]).div(0)
        assert out.to_list() == [None]

    def test_string_arithmetic_rejected(self):
        with pytest.raises(DTypeError):
            Column.from_values(["a"]).add(1)

    def test_numeric_comparison(self):
        out = Column.from_values([1, 5, 10]).gt(4)
        assert out.to_list() == [False, True, True]

    def test_string_equality(self):
        out = Column.from_values(["a", "b", None]).eq("a")
        assert out.to_list() == [True, False, None]

    def test_logical_ops(self):
        a = Column.from_values([True, True, False])
        b = Column.from_values([True, False, False])
        assert a.logical_and(b).to_list() == [True, False, False]
        assert a.logical_or(b).to_list() == [True, True, False]
        assert a.logical_not().to_list() == [False, False, True]

    def test_is_in(self):
        out = Column.from_values(["x", "y", "z"]).is_in(["x", "z"])
        assert out.to_list() == [True, False, True]

    def test_neg(self):
        assert Column.from_values([1, -2]).neg().to_list() == [-1, 2]


class TestReductions:
    def test_sum_mean_ignore_nulls(self):
        col = Column.from_values([1.0, None, 3.0])
        assert col.sum() == pytest.approx(4.0)
        assert col.mean() == pytest.approx(2.0)
        assert col.count() == 2

    def test_min_max(self):
        col = Column.from_values([5, 1, None, 9])
        assert col.min() == 1
        assert col.max() == 9

    def test_std_var(self):
        col = Column.from_values([1.0, 2.0, 3.0, 4.0])
        assert col.std() == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert col.var() == pytest.approx(col.std() ** 2)

    def test_std_single_value_is_none(self):
        assert Column.from_values([1.0]).std() is None

    def test_nunique_and_value_counts(self):
        col = Column.from_values(["a", "b", "a", None])
        assert col.nunique() == 2
        assert col.value_counts() == {"a": 2, "b": 1}

    def test_mode(self):
        assert Column.from_values(["x", "y", "x"]).mode() == "x"

    def test_quantile_exact(self):
        col = Column.from_values(list(range(101)))
        assert col.quantile(0.5) == pytest.approx(50.0)

    def test_quantile_approximate_close_to_exact(self):
        values = list(np.random.default_rng(0).normal(0, 1, 20_000))
        col = Column.from_values(values)
        exact = col.quantile(0.75)
        approx = col.quantile(0.75, approximate=True)
        assert abs(exact - approx) < 0.1

    def test_quantile_empty_returns_none(self):
        assert Column.full_null(3, FLOAT64).quantile(0.5) is None

    def test_unique_preserves_first_appearance(self):
        assert Column.from_values([3, 1, 3, 2]).unique().to_list() == [3, 1, 2]


class TestOrderingAndTransforms:
    def test_sort_indices_ascending_nulls_last(self):
        col = Column.from_values([3, None, 1])
        order = col.sort_indices()
        assert col.take(order).to_list() == [1, 3, None]

    def test_sort_indices_descending(self):
        col = Column.from_values([3, None, 1])
        order = col.sort_indices(ascending=False)
        assert col.take(order).to_list() == [3, 1, None]

    def test_sort_strings(self):
        col = Column.from_values(["pear", "apple"])
        assert col.take(col.sort_indices()).to_list() == ["apple", "pear"]

    def test_replace_values(self):
        col = Column.from_values(["M", "F", "M"]).replace({"M": "male", "F": "female"})
        assert col.to_list() == ["male", "female", "male"]

    def test_replace_no_match_is_copy(self):
        col = Column.from_values([1, 2]).replace({9: 0})
        assert col.to_list() == [1, 2]

    def test_clip(self):
        assert Column.from_values([1.0, 5.0, 10.0]).clip(2, 8).to_list() == [2.0, 5.0, 8.0]

    def test_normalize_minmax(self):
        out = Column.from_values([0.0, 5.0, 10.0]).normalize("minmax")
        assert out.to_list() == [0.0, 0.5, 1.0]

    def test_normalize_zscore_mean_zero(self):
        out = Column.from_values([1.0, 2.0, 3.0]).normalize("zscore")
        assert sum(out.to_list()) == pytest.approx(0.0)

    def test_normalize_constant_column(self):
        assert Column.from_values([2.0, 2.0]).normalize().to_list() == [0.0, 0.0]

    def test_normalize_unknown_method(self):
        with pytest.raises(ValueError):
            Column.from_values([1.0]).normalize("bogus")

    def test_apply(self):
        out = Column.from_values(["a", None]).apply(str.upper)
        assert out.to_list() == ["A", None]


class TestSentinelEncoding:
    @pytest.mark.parametrize("values,dtype", [
        ([1, None, 3], INT64),
        ([1.5, None], FLOAT64),
        ([True, None, False], BOOL),
        (["a", None, "c"], STRING),
    ])
    def test_sentinel_roundtrip(self, values, dtype):
        col = Column.from_values(values, dtype)
        restored = Column.from_sentinel(col.to_sentinel(), dtype)
        assert restored.to_list() == col.to_list()

    def test_memory_usage_positive(self):
        assert Column.from_values(["abc", "de"]).memory_usage() > 0

    def test_equals_detects_difference(self):
        a = Column.from_values([1, 2])
        assert a.equals(Column.from_values([1, 2]))
        assert not a.equals(Column.from_values([1, 3]))
        assert not a.equals(Column.from_values([1.0, 2.0]))
