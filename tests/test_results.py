"""Tests for the unified Measurement / ResultSet subsystem."""

import pytest

from repro.results import Measurement, ResultSet


def _sample_set() -> ResultSet:
    """A small hand-built matrix: 2 datasets × 2-3 engines, one OOM row."""
    return ResultSet([
        Measurement(engine="pandas", dataset="taxi", pipeline="taxi-1", mode="full",
                    seconds=8.0, peak_bytes=100, machine="server"),
        Measurement(engine="pandas", dataset="taxi", pipeline="taxi-2", mode="full",
                    seconds=4.0, machine="server"),
        Measurement(engine="polars", dataset="taxi", pipeline="taxi-1", mode="full",
                    seconds=2.0, lazy=True, machine="server"),
        Measurement(engine="polars", dataset="taxi", pipeline="taxi-2", mode="full",
                    seconds=1.0, lazy=True, machine="server"),
        Measurement(engine="vaex", dataset="taxi", pipeline="taxi-1", mode="full",
                    failed=True, failure_reason="simulated OOM: needs 12 GiB",
                    machine="server"),
        Measurement(engine="pandas", dataset="athlete", pipeline="athlete-1",
                    mode="full", seconds=3.0, machine="server"),
        Measurement(engine="polars", dataset="athlete", pipeline="athlete-1",
                    mode="full", seconds=1.5, machine="server"),
    ])


class TestContainer:
    def test_len_iter_index_slice(self):
        rs = _sample_set()
        assert len(rs) == 7
        assert rs[0].engine == "pandas"
        assert isinstance(rs[:2], ResultSet) and len(rs[:2]) == 2
        assert [m.engine for m in rs][:2] == ["pandas", "pandas"]

    def test_add_merges_in_order(self):
        rs = _sample_set()
        merged = rs[:2] + rs[2:]
        assert merged == rs

    def test_repr_mentions_engines_and_failures(self):
        text = repr(_sample_set())
        assert "pandas" in text and "failures=1" in text


class TestFilter:
    def test_filter_by_field(self):
        rs = _sample_set()
        assert len(rs.filter(engine="polars")) == 3
        assert len(rs.filter(dataset="taxi", engine="pandas")) == 2

    def test_filter_by_membership_and_callable(self):
        rs = _sample_set()
        assert len(rs.filter(engine=["pandas", "vaex"])) == 4
        assert len(rs.filter(seconds=lambda s: s > 2.5)) == 3

    def test_filter_by_predicate(self):
        rs = _sample_set()
        lazy_rows = rs.filter(lambda m: m.lazy)
        assert {m.engine for m in lazy_rows} == {"polars"}

    def test_ok_and_failures_partition_oom_rows(self):
        rs = _sample_set()
        assert len(rs.ok()) == 6
        failures = rs.failures()
        assert len(failures) == 1
        assert failures[0].engine == "vaex"
        assert "OOM" in failures[0].failure_reason
        assert len(rs.ok()) + len(rs.failures()) == len(rs)

    def test_group_by_single_and_multiple(self):
        rs = _sample_set()
        by_engine = rs.group_by("engine")
        assert list(by_engine) == ["pandas", "polars", "vaex"]
        assert len(by_engine["polars"]) == 3
        by_pair = rs.group_by("dataset", "engine")
        assert ("taxi", "pandas") in by_pair

    def test_values_and_shorthands(self):
        rs = _sample_set()
        assert rs.engines() == ["pandas", "polars", "vaex"]
        assert rs.datasets() == ["taxi", "athlete"]
        assert rs.pipelines() == ["taxi-1", "taxi-2", "athlete-1"]


class TestAggregation:
    def test_mean_and_total(self):
        rs = _sample_set().filter(engine="pandas", dataset="taxi")
        assert rs.mean() == pytest.approx(6.0)
        assert rs.total() == pytest.approx(12.0)
        with pytest.raises(ValueError):
            ResultSet().mean()

    def test_pivot(self):
        table = _sample_set().ok().pivot(rows="dataset", cols="engine")
        assert table["taxi"]["pandas"] == pytest.approx(6.0)
        assert table["taxi"]["polars"] == pytest.approx(1.5)
        assert table["athlete"]["polars"] == pytest.approx(1.5)
        counts = _sample_set().pivot(rows="dataset", cols="engine", agg="count")
        assert counts["taxi"]["vaex"] == 1

    def test_speedup_vs_hand_computed(self):
        speedups = _sample_set().speedup_vs("pandas")
        # taxi: pandas mean = (8+4)/2 = 6s, polars mean = (2+1)/2 = 1.5s
        assert speedups["taxi"]["polars"] == pytest.approx(4.0)
        assert speedups["taxi"]["pandas"] == pytest.approx(1.0)
        # athlete: 3.0 / 1.5
        assert speedups["athlete"]["polars"] == pytest.approx(2.0)
        # the failed vaex row is excluded rather than treated as 0 seconds
        assert "vaex" not in speedups["taxi"]

    def test_speedup_vs_drops_groups_without_baseline(self):
        rs = _sample_set().filter(engine="polars")
        assert rs.speedup_vs("pandas") == {}


class TestWinners:
    def test_winner_per_group_is_the_fastest_strategy_mean(self):
        winners = _sample_set().winners()
        taxi1 = winners[("taxi", "taxi-1")]
        assert (taxi1.engine, taxi1.strategy) == ("polars", "lazy")
        assert taxi1.seconds == pytest.approx(2.0)
        athlete = winners[("athlete", "athlete-1")]
        assert athlete.engine == "polars"

    def test_failed_rows_never_win(self):
        winners = _sample_set().winners()
        assert all(m.engine != "vaex" for m in winners.values())

    def test_winner_averages_repeated_rows(self):
        rs = ResultSet([
            Measurement(engine="a", dataset="d", pipeline="p", seconds=1.0),
            Measurement(engine="a", dataset="d", pipeline="p", seconds=3.0),
            Measurement(engine="b", dataset="d", pipeline="p", seconds=2.1),
        ])
        winner = rs.winners()[("d", "p")]
        assert winner.engine == "a" and winner.seconds == pytest.approx(2.0)

    def test_custom_grouping(self):
        winners = _sample_set().winners(by="dataset")
        assert set(winners) == {"taxi", "athlete"}


class TestSerialization:
    def test_json_roundtrip_is_lossless(self, tmp_path):
        rs = _sample_set()
        path = tmp_path / "results.json"
        rs.to_json(path)
        assert ResultSet.from_json(path) == rs
        # and from a JSON string
        assert ResultSet.from_json(rs.to_json()) == rs

    def test_csv_roundtrip_is_lossless(self, tmp_path):
        rs = _sample_set()
        path = tmp_path / "results.csv"
        rs.to_csv(path)
        loaded = ResultSet.from_csv(path)
        assert loaded == rs
        assert ResultSet.from_csv(rs.to_csv()) == rs

    def test_ndjson_roundtrip_is_lossless(self, tmp_path):
        rs = _sample_set()
        path = tmp_path / "results.ndjson"
        rs.to_ndjson(path)
        assert ResultSet.from_ndjson(path) == rs
        assert ResultSet.from_ndjson(rs.to_ndjson()) == rs

    def test_ndjson_is_valid_after_any_prefix(self):
        # the streaming property: each line stands alone, so a consumer can
        # parse a partially-delivered stream
        rs = _sample_set()
        lines = rs.to_ndjson().splitlines()
        assert len(lines) == len(rs)
        for cut in range(1, len(lines) + 1):
            prefix = ResultSet.from_ndjson("\n".join(lines[:cut]) + "\n")
            assert prefix.measurements == rs.measurements[:cut]

    def test_measurement_to_json_is_compact_and_stable(self):
        m = _sample_set().measurements[0]
        text = m.to_json()
        assert "\n" not in text and ": " not in text  # one compact line
        assert text == m.to_json()  # deterministic (sorted keys)
        assert Measurement.from_dict(__import__("json").loads(text)) == m

    def test_roundtrip_preserves_failure_rows(self, tmp_path):
        rs = _sample_set()
        loaded = ResultSet.from_json(rs.to_json())
        assert len(loaded.failures()) == 1
        assert loaded.failures()[0].failure_reason == "simulated OOM: needs 12 GiB"
        assert loaded.filter(lazy=True).engines() == ["polars"]

    def test_from_json_missing_file_raises_clearly(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no/such/results.json"):
            ResultSet.from_json(str(tmp_path / "no/such/results.json"))
        with pytest.raises(FileNotFoundError):
            ResultSet.from_csv(tmp_path / "missing.csv")

    def test_from_records_rejects_engineless_rows(self):
        with pytest.raises(ValueError):
            ResultSet.from_records([{"dataset": "taxi"}])
