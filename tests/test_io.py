"""Tests for CSV and rparquet I/O plus schema inference."""

import pytest

from repro.frame import DataFrame
from repro.frame.errors import IOFormatError
from repro.io import (
    Schema,
    csv_row_count,
    infer_value_dtype,
    read_any,
    read_csv,
    read_rparquet,
    read_rparquet_schema,
    scan_csv_chunks,
    write_any,
    write_csv,
    write_rparquet,
)


@pytest.fixture
def mixed_frame():
    return DataFrame({
        "i": [1, 2, None, 4],
        "f": [1.5, None, 3.25, 4.0],
        "s": ["alpha", "beta", None, "delta"],
        "b": [True, False, None, True],
        "d": ["2015-01-02", "2016-02-03", None, "2017-03-04"],
    })


class TestCSV:
    def test_roundtrip_preserves_values_and_nulls(self, mixed_frame, tmp_path):
        path = tmp_path / "data.csv"
        size = write_csv(mixed_frame, path)
        assert size > 0
        back = read_csv(path)
        assert back["i"].to_list() == [1, 2, None, 4]
        assert back["s"].to_list() == ["alpha", "beta", None, "delta"]
        assert back["b"].to_list() == [True, False, None, True]

    def test_dtype_inference(self, mixed_frame, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(mixed_frame, path)
        dtypes = {name: dtype.value for name, dtype in read_csv(path).dtypes.items()}
        assert dtypes == {"i": "int64", "f": "float64", "s": "string",
                          "b": "bool", "d": "datetime"}

    def test_projection(self, mixed_frame, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(mixed_frame, path)
        assert read_csv(path, columns=["s", "i"]).columns == ["s", "i"]

    def test_projection_unknown_column(self, mixed_frame, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(mixed_frame, path)
        with pytest.raises(IOFormatError):
            read_csv(path, columns=["nope"])

    def test_explicit_schema_overrides_inference(self, mixed_frame, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(mixed_frame, path)
        schema = Schema.from_mapping({"i": "string", "f": "float64", "s": "string",
                                      "b": "string", "d": "string"})
        out = read_csv(path, schema=schema)
        assert out.dtypes["i"].value == "string"

    def test_chunked_scan(self, tmp_path):
        frame = DataFrame({"x": list(range(250))})
        path = tmp_path / "big.csv"
        write_csv(frame, path)
        chunks = list(scan_csv_chunks(path, chunk_rows=100))
        assert [c.num_rows for c in chunks] == [100, 100, 50]

    def test_row_count(self, mixed_frame, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(mixed_frame, path)
        assert csv_row_count(path) == 4

    def test_missing_file(self, tmp_path):
        with pytest.raises(IOFormatError):
            read_csv(tmp_path / "absent.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(IOFormatError):
            read_csv(path)


class TestRParquet:
    def test_roundtrip(self, mixed_frame, tmp_path):
        path = tmp_path / "data.rpq"
        size = write_rparquet(mixed_frame, path)
        assert size > 0
        back = read_rparquet(path)
        for name in ("i", "f", "s", "b"):
            assert back[name].to_list() == mixed_frame[name].to_list()

    def test_projection_reads_subset(self, mixed_frame, tmp_path):
        path = tmp_path / "data.rpq"
        write_rparquet(mixed_frame, path)
        out = read_rparquet(path, columns=["f"])
        assert out.columns == ["f"]

    def test_schema_only_read(self, mixed_frame, tmp_path):
        path = tmp_path / "data.rpq"
        write_rparquet(mixed_frame, path)
        schema = read_rparquet_schema(path)
        assert schema["i"].value == "int64"
        assert "s" in schema

    def test_unknown_column_rejected(self, mixed_frame, tmp_path):
        path = tmp_path / "data.rpq"
        write_rparquet(mixed_frame, path)
        with pytest.raises(IOFormatError):
            read_rparquet(path, columns=["zzz"])

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.rpq"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(IOFormatError):
            read_rparquet(path)

    def test_smaller_than_csv_for_repetitive_data(self, tmp_path):
        frame = DataFrame({"s": ["the same long string value"] * 2000,
                           "x": [1.234567] * 2000})
        csv_size = write_csv(frame, tmp_path / "a.csv")
        rpq_size = write_rparquet(frame, tmp_path / "a.rpq")
        assert rpq_size < csv_size


class TestDispatchAndSchema:
    def test_read_write_any(self, mixed_frame, tmp_path):
        for fmt, suffix in (("csv", "csv"), ("rparquet", "rpq")):
            path = tmp_path / f"data.{suffix}"
            write_any(mixed_frame, path, fmt)
            assert read_any(path, fmt).num_rows == 4

    def test_unknown_format(self, mixed_frame, tmp_path):
        with pytest.raises(ValueError):
            write_any(mixed_frame, tmp_path / "x.bin", "orc")

    @pytest.mark.parametrize("text,expected", [
        ("12", "int64"), ("1.5", "float64"), ("true", "bool"),
        ("2015-06-01", "datetime"), ("hello", "string"),
    ])
    def test_infer_value_dtype(self, text, expected):
        assert infer_value_dtype(text).value == expected

    def test_schema_mapping_helpers(self):
        schema = Schema.from_mapping({"a": "int64", "b": "string"})
        assert schema.names == ["a", "b"]
        assert schema.select(["b"]).names == ["b"]
        assert Schema.from_dict(schema.to_dict()).to_dict() == schema.to_dict()
