"""Tests for the Session facade, the CLI and the legacy-runner shims.

The regression classes replicate the pre-refactor experiment-driver logic on
top of the deprecated ``BentoRunner`` API and assert that the rewritten
drivers (which go through ``Session.run`` + ``ResultSet``) produce exactly the
same values.
"""

import json

import pytest

from repro import BentoRunner, ExperimentConfig, Measurement, ResultSet, Session
from repro.__main__ import main as cli_main
from repro.core.metrics import speedup
from repro.core.runner import PipelineTiming, PreparatorTiming, StageTiming
from repro.core.stages import Stage
from repro.experiments import fig1_stage_speedup, fig5_pipeline_speedup

_CONFIG = ExperimentConfig(scale=0.1, runs=1, datasets=["athlete"],
                           engines=["pandas", "polars", "sparksql", "vaex"])


@pytest.fixture(scope="module")
def session() -> Session:
    return Session(_CONFIG)


class TestSessionBasics:
    def test_construction_is_lazy(self):
        fresh = Session(_CONFIG)
        assert fresh._datasets == {} and fresh._engines is None

    def test_keyword_overrides(self):
        fresh = Session(_CONFIG, runs=2, scale=0.2)
        assert fresh.config.runs == 2 and fresh.config.scale == pytest.approx(0.2)
        assert _CONFIG.runs == 1  # the base config is not mutated

    def test_components_cached(self, session):
        assert session.dataset("athlete") is session.dataset("athlete")
        assert session.engines is session.engines
        assert session.context_for("athlete") is session.context_for("athlete")
        assert session.baseline() is session.engines["pandas"]

    def test_full_matrix_shape(self, session):
        results = session.run(mode="full")
        pipelines = session.pipelines_for("athlete")
        assert len(results) == len(session.engines) * len(pipelines)
        assert results.engines() == session.engine_names
        for m in results:
            assert m.mode == "full" and m.dataset == "athlete"
            assert m.machine == session.config.machine.name

    def test_slicing_engines_datasets_pipelines(self, session):
        results = session.run(mode="full", engines=["polars"], datasets=["athlete"],
                              pipelines=[0, "athlete-2"])
        assert len(results) == 2
        assert results.pipelines() == ["athlete-1", "athlete-2"]

    def test_lazy_both_adds_rows_only_for_lazy_engines(self, session):
        results = session.run(mode="full", engines=["pandas", "polars"], lazy="both")
        pipelines = len(session.pipelines_for("athlete"))
        # pandas: eager only; polars: eager + lazy
        assert len(results.filter(engine="pandas")) == pipelines
        assert len(results.filter(engine="polars")) == 2 * pipelines
        assert len(results.filter(engine="polars", lazy=True)) == pipelines

    def test_core_mode_emits_one_row_per_step(self, session):
        results = session.run(mode="function-core", engines=["pandas"], pipelines=[0])
        pipeline = session.pipelines_for("athlete")[0]
        assert len(results) == len(pipeline)
        assert [m.step for m in results] == [s.preparator for s in pipeline.steps]
        assert [m.step_index for m in results] == list(range(len(pipeline)))

    def test_io_modes(self, session):
        results = session.run(mode="read", engines=["pandas", "polars"])
        assert {m.step for m in results} == {"csv", "parquet"}
        assert all(m.stage == "I/O" for m in results)

    def test_unknown_mode_and_pipeline(self, session):
        with pytest.raises(ValueError, match="unknown mode"):
            session.run(mode="warp")
        with pytest.raises(KeyError, match="unknown pipeline"):
            session.run(pipelines=["no-such-pipeline"])

    def test_injected_datasets_define_the_matrix(self):
        sample = Session(_CONFIG).dataset("athlete").sample(0.5)
        scoped = Session(_CONFIG, datasets={"athlete": sample})
        assert list(scoped.datasets) == ["athlete"]
        results = scoped.run(mode="full", engines=["pandas"], pipelines=[0])
        assert len(results) == 1 and results[0].dataset == sample.name


class TestRunnerShims:
    """The deprecated BentoRunner API must match the new-API numbers."""

    @pytest.fixture(scope="class")
    def parts(self):
        session = Session(_CONFIG)
        generated = session.dataset("athlete")
        sim = session.context_for("athlete")
        pipeline = session.pipelines_for("athlete")[0]
        return session, generated, sim, pipeline

    def test_run_full_matches_measure_full(self, parts):
        session, generated, sim, pipeline = parts
        engine = session.engines["polars"]
        runner = BentoRunner(runs=1)
        with pytest.warns(DeprecationWarning):
            timing = runner.run_full(engine, generated.frame, pipeline, sim)
        measurement = runner.measure_full(engine, generated.frame, pipeline, sim)
        assert isinstance(timing, PipelineTiming)
        assert timing.seconds == measurement.seconds
        assert timing.peak_bytes == measurement.peak_bytes
        assert timing.lazy == measurement.lazy
        # the legacy dataclass never carried the machine, so it round-trips empty
        roundtripped = timing.to_measurement()
        assert roundtripped == Measurement.from_dict({**measurement.to_dict(),
                                                      "machine": ""})

    def test_run_stage_matches_measure_stage(self, parts):
        session, generated, sim, pipeline = parts
        engine = session.engines["pandas"]
        runner = BentoRunner(runs=1)
        with pytest.warns(DeprecationWarning):
            timing = runner.run_stage(engine, generated.frame, pipeline, Stage.EDA, sim)
        measurement = runner.measure_stage(engine, generated.frame, pipeline,
                                           Stage.EDA, sim)
        assert isinstance(timing, StageTiming)
        assert timing.seconds == measurement.seconds
        assert timing.stage == measurement.stage == "EDA"

    def test_run_function_core_matches_measurements(self, parts):
        session, generated, sim, pipeline = parts
        engine = session.engines["pandas"]
        runner = BentoRunner(runs=1)
        with pytest.warns(DeprecationWarning):
            timing = runner.run_function_core(engine, generated.frame, pipeline, sim)
        measurements = runner.measure_function_core(engine, generated.frame, pipeline, sim)
        assert isinstance(timing, PreparatorTiming)
        assert timing.seconds_by_call == [(m.step, m.seconds) for m in measurements]
        assert timing.total_seconds == pytest.approx(sum(m.seconds for m in measurements))
        assert [m.step for m in timing.to_measurements()] == [m.step for m in measurements]

    def test_session_matches_shim_numbers(self, parts):
        session, generated, sim, pipeline = parts
        results = session.run(mode="full", engines=["polars"], pipelines=[pipeline])
        shim = BentoRunner(runs=session.config.runs)
        timing = shim.run_full_matrix({"polars": session.engines["polars"]},
                                      generated.frame, pipeline, sim)["polars"]
        assert results[0].seconds == timing.seconds


class TestDriverRegression:
    """Pre-refactor driver logic (on the shim API) vs the rewritten drivers."""

    @pytest.fixture(scope="class")
    def session(self):
        return Session(_CONFIG)

    def test_fig1_values_unchanged(self, session):
        new = fig1_stage_speedup.run(setup=session)
        old_speedups, old_seconds = self._legacy_fig1(session)
        assert new.seconds == old_seconds
        assert new.speedups == old_speedups

    def test_fig5_values_unchanged(self, session):
        new = fig5_pipeline_speedup.run(setup=session)
        old_speedups, old_seconds = self._legacy_fig5(session)
        assert new.seconds == old_seconds
        assert new.speedups == old_speedups

    # -- verbatim ports of the pre-refactor drivers, on the deprecated API -- #
    @staticmethod
    def _legacy_fig1(setup):
        runner = BentoRunner(runs=setup.config.runs)
        baseline = setup.baseline()
        speedups: dict = {}
        seconds: dict = {}
        with pytest.warns(DeprecationWarning):
            for dataset_name, generated in setup.datasets.items():
                sim = generated.simulation_context(setup.config.machine,
                                                   runs=setup.config.runs)
                pipelines = setup.pipelines_for(dataset_name)
                speedups[dataset_name] = {}
                seconds[dataset_name] = {}
                for stage in (Stage.EDA, Stage.DT, Stage.DC):
                    stage_seconds: dict = {}
                    for pipeline in pipelines:
                        if not pipeline.steps_for_stage(stage):
                            continue
                        baseline_timing = runner.run_stage(baseline, generated.frame,
                                                           pipeline, stage, sim)
                        for engine_name, engine in setup.engines.items():
                            timing = (baseline_timing if engine_name == "pandas"
                                      else runner.run_stage(engine, generated.frame,
                                                            pipeline, stage, sim))
                            if timing.failed:
                                continue
                            stage_seconds.setdefault(engine_name, []).append(timing.seconds)
                    averaged = {name: sum(values) / len(values)
                                for name, values in stage_seconds.items() if values}
                    if "pandas" not in averaged:
                        continue
                    pandas_seconds = averaged["pandas"]
                    seconds[dataset_name][stage.value] = averaged
                    speedups[dataset_name][stage.value] = {
                        name: speedup(pandas_seconds, value)
                        for name, value in averaged.items()
                    }
        return speedups, seconds

    @staticmethod
    def _legacy_fig5(setup):
        runner = BentoRunner(runs=setup.config.runs)
        baseline = setup.baseline()
        speedups: dict = {}
        seconds: dict = {}
        with pytest.warns(DeprecationWarning):
            for dataset_name, generated in setup.datasets.items():
                sim = generated.simulation_context(setup.config.machine,
                                                   runs=setup.config.runs)
                per_engine_mode: dict = {}
                for pipeline in setup.pipelines_for(dataset_name):
                    baseline_timing = runner.run_full(baseline, generated.frame,
                                                      pipeline, sim, lazy=False)
                    if baseline_timing.failed:
                        continue
                    per_engine_mode.setdefault("pandas", {}).setdefault("eager", []).append(
                        baseline_timing.seconds)
                    for engine_name, engine in setup.engines.items():
                        if engine_name == "pandas":
                            continue
                        modes = ["eager", "lazy"] if engine.supports_lazy else ["eager"]
                        for mode in modes:
                            timing = runner.run_full(engine, generated.frame, pipeline,
                                                     sim, lazy=(mode == "lazy"))
                            if timing.failed:
                                continue
                            per_engine_mode.setdefault(engine_name, {}).setdefault(
                                mode, []).append(timing.seconds)
                pandas_values = per_engine_mode.get("pandas", {}).get("eager", [])
                if not pandas_values:
                    continue
                pandas_seconds = sum(pandas_values) / len(pandas_values)
                seconds[dataset_name] = {}
                speedups[dataset_name] = {}
                for engine_name, modes in per_engine_mode.items():
                    averaged = {mode: sum(values) / len(values)
                                for mode, values in modes.items() if values}
                    seconds[dataset_name][engine_name] = averaged
                    speedups[dataset_name][engine_name] = {
                        mode: speedup(pandas_seconds, value)
                        for mode, value in averaged.items()
                    }
        return speedups, seconds


class TestResultSetOnRealRuns:
    def test_json_roundtrip_of_a_real_run(self, session, tmp_path):
        results = session.run(mode="full", engines=["pandas", "polars"])
        path = tmp_path / "run.json"
        results.to_json(path)
        assert ResultSet.from_json(path) == results

    def test_speedup_vs_matches_driver(self, session):
        results = session.run(mode="full", engines=["pandas", "polars"], lazy=False)
        per_engine = results.speedup_vs("pandas")["athlete"]
        pandas_mean = results.filter(engine="pandas").mean()
        polars_mean = results.filter(engine="polars").mean()
        assert per_engine["polars"] == pytest.approx(pandas_mean / polars_mean)


class TestCLI:
    def test_cli_runs_a_slice_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        code = cli_main(["--mode", "full", "--engines", "pandas,polars",
                         "--datasets", "athlete", "--scale", "0.1", "--runs", "1",
                         "--no-cache", "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "Simulated seconds" in printed and "Speedup over Pandas" in printed
        loaded = ResultSet.from_json(out)
        assert loaded.engines() == ["pandas", "polars"]
        assert loaded.datasets() == ["athlete"]
        payload = json.loads(out.read_text())
        assert payload["version"] == 1

    def test_cli_tpch_slice(self, tmp_path, capsys):
        out = tmp_path / "tpch.csv"
        code = cli_main(["--mode", "tpch", "--engines", "pandas,polars",
                         "--queries", "q01,q06", "--runs", "1", "--no-cache",
                         "--csv", str(out)])
        assert code == 0
        loaded = ResultSet.from_csv(out)
        assert len(loaded) == 4
        assert {m.mode for m in loaded} == {"tpch"}


class TestMeasurementRecord:
    def test_to_dict_from_dict_roundtrip(self):
        m = Measurement(engine="polars", dataset="taxi", pipeline="taxi-1",
                        mode="stage", stage="EDA", seconds=1.25, lazy=True,
                        machine="laptop")
        assert Measurement.from_dict(m.to_dict()) == m

    def test_from_dict_ignores_unknown_keys(self):
        m = Measurement.from_dict({"engine": "pandas", "seconds": "2.5",
                                   "lazy": "true", "future_field": 1})
        assert m.seconds == 2.5 and m.lazy is True
