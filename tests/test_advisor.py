"""Tests for the adaptive engine advisor: candidate pricing, ranking,
feasibility, the Session/CLI entry points and Figure 9 accuracy."""

import dataclasses

import pytest

from repro import ExperimentConfig, Session
from repro.__main__ import main as cli_main
from repro.datasets import generate_dataset
from repro.datasets.pipelines import get_pipelines
from repro.engines import create_engine
from repro.engines.base import EngineUnavailableError
from repro.plan.advisor import Advisor, AdvisorReport, CandidateEstimate, pipeline_plan
from repro.simulate.hardware import LAPTOP, PAPER_SERVER

_SCALE = 0.05


@pytest.fixture(scope="module")
def setup():
    session = Session(ExperimentConfig(scale=_SCALE, runs=1, datasets=["athlete"]))
    dataset = session.dataset("athlete")
    return session, dataset, session.context_for("athlete"), get_pipelines("athlete")


class TestEstimateSteps:
    def test_estimate_is_positive_and_itemized(self, setup):
        _, dataset, sim, pipelines = setup
        engine = create_engine("polars")
        estimate = engine.estimate_steps(dataset.frame, pipelines[0].steps, sim,
                                         lazy=True)
        assert estimate.seconds > 0 and not estimate.oom
        assert estimate.per_node
        assert estimate.out_stats is not None and estimate.out_stats.rows > 0

    def test_lazy_estimate_beats_eager_for_polars(self, setup):
        _, dataset, sim, pipelines = setup
        engine = create_engine("polars")
        eager = engine.estimate_steps(dataset.frame, pipelines[0].steps, sim)
        lazy = engine.estimate_steps(dataset.frame, pipelines[0].steps, sim,
                                     lazy=True)
        assert lazy.seconds < eager.seconds

    def test_nothing_is_executed(self, setup):
        _, dataset, sim, pipelines = setup
        engine = create_engine("polars")
        before = dataset.frame.num_rows
        engine.estimate_steps(dataset.frame, pipelines[0].steps, sim, lazy=True)
        assert dataset.frame.num_rows == before

    def test_oom_is_flagged_on_a_tiny_machine(self, setup):
        from repro.experiments.fig8_out_of_core import constrained_machine

        _, dataset, _, pipelines = setup
        machine = constrained_machine(memory_gb=0.0001)
        engine = create_engine("pandas", machine)
        sim = dataset.simulation_context(machine, runs=1)
        estimate = engine.estimate_steps(dataset.frame, pipelines[0].steps, sim)
        assert estimate.oom

    def test_unsupported_format_raises(self, setup):
        from repro.core.pipeline import PipelineStep

        _, dataset, sim, _ = setup
        steps = [PipelineStep("read", {"format": "parquet"})]
        engine = create_engine("datatable")  # no parquet support
        with pytest.raises(EngineUnavailableError):
            engine.estimate_steps(dataset.frame, steps, sim)


class TestAdvisor:
    def test_candidates_cover_engine_strategies(self, setup):
        _, dataset, sim, pipelines = setup
        advisor = Advisor(engines=["pandas", "polars"])
        report = advisor.advise(dataset.frame, pipelines[0], sim)
        keys = {c.key for c in report.candidates}
        assert ("pandas", "eager") in keys
        assert {("polars", "eager"), ("polars", "lazy"),
                ("polars", "streaming")} <= keys

    def test_ranking_is_sorted_and_best_is_feasible(self, setup):
        _, dataset, sim, pipelines = setup
        advisor = Advisor(engines=["pandas", "polars", "vaex"])
        report = advisor.advise(dataset.frame, pipelines[0], sim)
        feasible = [c for c in report.candidates if c.feasible]
        assert feasible == sorted(feasible, key=lambda c: c.seconds)
        assert report.best is feasible[0]
        infeasible_rank = [i for i, c in enumerate(report.candidates)
                          if not c.feasible]
        assert all(i >= len(feasible) for i in infeasible_rank)

    def test_oom_candidates_rank_infeasible(self, setup):
        from repro.experiments.fig8_out_of_core import constrained_machine

        _, dataset, _, pipelines = setup
        machine = constrained_machine(memory_gb=0.0001)
        sim = dataset.simulation_context(machine, runs=1)
        advisor = Advisor(machine, engines=["pandas"])
        report = advisor.advise(dataset.frame, pipelines[0], sim)
        candidate = report.candidate("pandas", "eager")
        assert candidate is not None and not candidate.feasible
        assert "OOM" in candidate.reason
        assert report.best is None

    def test_format_marks_the_winner(self, setup):
        _, dataset, sim, pipelines = setup
        advisor = Advisor(engines=["pandas", "polars"])
        text = advisor.advise(dataset.frame, pipelines[0], sim).format(top=2)
        assert "»" in text and "predicted-fastest" in text

    def test_advise_tpch_prices_optimized_plans(self):
        session = Session(ExperimentConfig(scale=_SCALE, runs=1))
        reports = session.advise_tpch(engines=["pandas", "polars"],
                                      queries=["q06"])
        assert len(reports) == 1
        report = reports[0]
        assert report.pipeline == "q06"
        polars = report.candidate("polars", "lazy")
        pandas = report.candidate("pandas", "eager")
        assert polars is not None and pandas is not None
        assert polars.seconds < pandas.seconds


class TestSessionAdvise:
    def test_one_report_per_pipeline_cell(self, setup):
        session, _, _, pipelines = setup
        reports = session.advise(engines=["pandas", "polars"])
        assert len(reports) == len(pipelines)
        assert all(isinstance(r, AdvisorReport) and r.best is not None
                   for r in reports)

    def test_reports_carry_dataset_and_machine(self, setup):
        session, _, _, _ = setup
        report = session.advise(engines=["pandas"])[0]
        assert report.dataset == "athlete"
        assert report.machine == PAPER_SERVER.name


class TestSessionAdviseDegraded:
    """``Session.advise()`` when part of the engine set cannot take part."""

    def test_unavailable_engines_are_silently_skipped(self):
        # the laptop has no GPU, so CuDF cannot even be instantiated there —
        # advise() must drop it and still rank the remaining engines
        session = Session(ExperimentConfig(scale=_SCALE, runs=1,
                                           datasets=["athlete"], machine=LAPTOP))
        reports = session.advise(engines=["pandas", "polars", "cudf"])
        assert reports
        for report in reports:
            engines = {c.engine for c in report.candidates}
            assert engines == {"pandas", "polars"}
            assert report.best is not None

    def test_unknown_engine_name_raises(self, setup):
        session, _, _, _ = setup
        with pytest.raises(KeyError):
            session.advise(engines=["pandas", "no-such-engine"])

    def test_all_candidates_infeasible_yields_best_none(self):
        from repro.experiments.fig8_out_of_core import constrained_machine

        machine = constrained_machine(memory_gb=0.0001)
        session = Session(ExperimentConfig(scale=_SCALE, runs=1,
                                           datasets=["athlete"], machine=machine))
        reports = session.advise(engines=["pandas"])
        assert reports
        for report in reports:
            assert report.best is None
            assert all(not c.feasible for c in report.candidates)
            assert all("OOM" in c.reason for c in report.candidates)

    def test_infeasible_candidates_rank_after_feasible_ones(self):
        from repro.experiments.fig8_out_of_core import constrained_machine

        # 2 GiB: enough for the out-of-core capable engines to spill their
        # way through, too little for fully-materializing ones
        machine = constrained_machine(memory_gb=2.0)
        session = Session(ExperimentConfig(scale=_SCALE, runs=1,
                                           datasets=["athlete"], machine=machine))
        for report in session.advise(engines=["pandas", "polars", "vaex"]):
            flags = [c.feasible for c in report.candidates]
            assert flags == sorted(flags, reverse=True)  # feasible first
            if report.best is not None:
                assert report.candidates[0] is report.best

    def test_unsupported_estimates_carry_reason(self, setup, monkeypatch):
        _, dataset, sim, pipelines = setup
        engine = create_engine("pandas")

        def unsupported(*args, **kwargs):
            raise EngineUnavailableError("simulated: format not supported")

        monkeypatch.setattr(engine, "estimate_steps", unsupported)
        advisor = Advisor(engines={"pandas": engine})
        report = advisor.advise(dataset.frame, pipelines[0], sim)
        assert report.best is None
        candidate = report.candidates[0]
        assert not candidate.feasible
        assert candidate.reason.startswith("unsupported")
        assert candidate.to_dict()["seconds"] is None  # inf is JSON-safe


class TestPipelinePlan:
    def test_deferrable_steps_become_plan_nodes(self, setup):
        _, dataset, _, pipelines = setup
        text = pipeline_plan(dataset.frame, pipelines[0]).explain()
        assert "scan" in text

    def test_io_steps_render_as_barriers(self, setup):
        _, dataset, _, pipelines = setup
        with_io = next((p for p in pipelines
                        if any(s.preparator in ("read", "write") for s in p.steps)),
                       pipelines[0])
        text = pipeline_plan(dataset.frame, with_io).explain()
        if any(s.preparator in ("read", "write") for s in with_io.steps):
            assert "map[" in text


class TestAdviseCli:
    def test_advise_prints_rankings(self, capsys):
        assert cli_main(["advise", "--scale", str(_SCALE), "--datasets", "athlete",
                         "--engines", "pandas,polars", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "predicted-fastest configuration" in out
        assert "polars" in out

    def test_advise_explain_renders_plans(self, capsys):
        assert cli_main(["advise", "--tpch", "--queries", "q06",
                         "--engines", "pandas,polars", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "plan (unoptimized):" in out and "plan (optimized):" in out
        assert "~" in out  # estimated rows/bytes annotations

    def test_advise_memory_limit_flags_infeasible(self, capsys):
        assert cli_main(["advise", "--scale", str(_SCALE), "--datasets", "athlete",
                         "--engines", "pandas", "--memory-limit", "0.0001"]) == 0
        out = capsys.readouterr().out
        assert "infeasible" in out

    def test_advise_rejects_queries_without_tpch(self):
        with pytest.raises(SystemExit):
            cli_main(["advise", "--queries", "q06"])


class TestCandidateEstimate:
    def test_strategy_labels(self):
        assert CandidateEstimate("x").strategy == "eager"
        assert CandidateEstimate("x", lazy=True).strategy == "lazy"
        assert CandidateEstimate("x", lazy=True, streaming=True).strategy == "streaming"

    def test_describe_infeasible(self):
        candidate = CandidateEstimate("x", feasible=False, reason="predicted OOM")
        assert "infeasible" in candidate.describe()


class TestJoinReorderingOnTPCH:
    def test_reordering_reduces_estimated_cost_on_real_queries(self):
        """Acceptance: join reordering demonstrably reduces estimated cost on
        at least one TPC-H query plan."""
        from repro.plan.optimizer import Optimizer, OptimizerSettings
        from repro.tpch.datagen import generate_tpch
        from repro.tpch.queries import get_query

        data = generate_tpch(0.002, seed=7)
        pricer = Optimizer()
        with_reorder = Optimizer()
        without = Optimizer(dataclasses.replace(OptimizerSettings(),
                                                join_reordering=False))
        wins = 0
        for query in ("q04", "q09", "q12", "q21"):
            plan = get_query(query)(data).plan
            reordered = pricer.plan_seconds(with_reorder.optimize(plan))
            baseline = pricer.plan_seconds(without.optimize(plan))
            assert reordered <= baseline + 1e-12
            wins += reordered < baseline - 1e-12
        assert wins > 0


class TestFig9Accuracy:
    def test_advisor_matches_measured_winners(self):
        """Acceptance: ≥80% of fig5/fig7 cells hit (exact winner or within
        10% regret) at small scale."""
        from repro.experiments import fig9_advisor

        result = fig9_advisor.run(
            ExperimentConfig(scale=_SCALE, runs=1),
            queries=["q01", "q03", "q06", "q14"])
        assert len(result.cells) >= 12 + 4  # fig5 cells + the TPC-H subset
        assert result.accuracy >= 0.8, result.format()
        for cell in result.cells:
            assert cell.predicted_seconds < float("inf"), cell.describe()

    def test_format_reports_summary(self):
        from repro.experiments.fig9_advisor import AdvisorAccuracyResult, AdvisorCell

        result = AdvisorAccuracyResult(machine="m", scale=0.1)
        result.cells.append(AdvisorCell(
            dataset="d", pipeline="p", predicted=("a", "eager"),
            winner=("b", "lazy"), winner_seconds=1.0, predicted_seconds=1.05,
            hit=True))
        text = result.format()
        assert "1/1 hits" in text and "regret" in text
        assert result.total_regret_seconds == pytest.approx(0.05)
