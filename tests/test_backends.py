"""Backend parity: the dict backend must be bit-identical to the object one.

The ``"object"`` backend keeps the original per-row Python kernels and serves
as the behavioural oracle; the ``"dict"`` backend dictionary-encodes strings
and reroutes string kernels, joins and group-bys through vectorized numpy
kernels.  Every test here runs the same operation through both physical
implementations and asserts identical results — values, nulls, dtypes and row
order — including the all-null and empty-frame corners.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.frame import (
    Column,
    DataFrame,
    DictStringColumn,
    active_backend,
    convert_column,
    convert_frame,
    known_backends,
    set_default_backend,
    use_backend,
)
from repro.frame.backends import ColumnFactory
from repro.frame.dtypes import STRING
from repro.frame.errors import DTypeError
from repro.frame.groupby import AGG_FUNCTIONS
from repro.frame import strings as fstr

_SETTINGS = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.function_scoped_fixture])

_JOIN_TYPES = ("inner", "left", "right", "outer", "semi", "anti")

#: Every public string kernel, with representative arguments.
_STRING_KERNELS = [
    ("contains-regex", lambda c: fstr.contains(c, "a.", regex=True)),
    ("contains-literal", lambda c: fstr.contains(c, "ab", regex=False)),
    ("contains-nocase", lambda c: fstr.contains(c, "AB", regex=False, case=False)),
    ("match_like", lambda c: fstr.match_like(c, "%a%")),
    ("startswith", lambda c: fstr.startswith(c, "a")),
    ("endswith", lambda c: fstr.endswith(c, "b")),
    ("lower", lambda c: fstr.set_case(c, "lower")),
    ("upper", lambda c: fstr.set_case(c, "upper")),
    ("title", lambda c: fstr.set_case(c, "title")),
    ("strip", lambda c: fstr.strip(c)),
    ("strip-chars", lambda c: fstr.strip(c, "ab ")),
    ("replace_substring", lambda c: fstr.replace_substring(c, "a", "_")),
    ("replace-regex", lambda c: fstr.replace_substring(c, "[ab]+", "*", regex=True)),
    ("str_length", fstr.str_length),
    ("extract_regex", lambda c: fstr.extract_regex(c, r"([a-z]+)", group=1)),
]

string_lists = st.lists(
    st.one_of(st.none(), st.text(alphabet="abcAB _-", min_size=0, max_size=6)),
    min_size=0, max_size=50)


def _string_column_pair(values):
    obj = Column.from_values(list(values), "string")
    dct = convert_column(obj, "dict")
    assert isinstance(dct, DictStringColumn)
    return obj, dct


@st.composite
def keyed_frames(draw, prefix=""):
    """A frame with a low-cardinality string key plus mixed payload columns."""
    n = draw(st.integers(min_value=0, max_value=30))
    elem = st.one_of(st.none(), st.sampled_from(["a", "b", "c", "dd", ""]))
    keys = draw(st.lists(elem, min_size=n, max_size=n))
    ints = draw(st.lists(st.one_of(st.none(), st.integers(-50, 50)),
                         min_size=n, max_size=n))
    floats = draw(st.lists(
        st.one_of(st.none(), st.floats(min_value=-100, max_value=100,
                                       allow_nan=False, width=32)),
        min_size=n, max_size=n))
    bools = draw(st.lists(st.one_of(st.none(), st.booleans()),
                          min_size=n, max_size=n))
    return DataFrame({"key": Column.from_values(keys, "string"),
                      f"{prefix}i": Column.from_values(ints, "int64"),
                      f"{prefix}f": Column.from_values(floats, "float64"),
                      f"{prefix}b": Column.from_values(bools, "bool")})


def _assert_frames_identical(reference: DataFrame, candidate: DataFrame):
    assert list(candidate.columns) == list(reference.columns)
    assert candidate.num_rows == reference.num_rows
    for name in reference.columns:
        ref, got = reference[name], candidate[name]
        assert got.dtype == ref.dtype, f"{name}: {got.dtype} != {ref.dtype}"
        assert got.equals(ref), (
            f"column {name!r} differs:\n object: {ref.to_list()}\n dict:   {got.to_list()}")


class TestStringKernelParity:
    @pytest.mark.parametrize("name,kernel", _STRING_KERNELS,
                             ids=[name for name, _ in _STRING_KERNELS])
    @_SETTINGS
    @given(values=string_lists)
    def test_kernel_matches_reference(self, name, kernel, values):
        obj, dct = _string_column_pair(values)
        expected, got = kernel(obj), kernel(dct)
        assert got.dtype == expected.dtype
        assert got.to_list() == expected.to_list()

    @_SETTINGS
    @given(values=string_lists, other=string_lists)
    def test_concat_strings_matches_reference(self, values, other):
        n = min(len(values), len(other))
        lo, ld = _string_column_pair(values[:n])
        ro, rd = _string_column_pair(other[:n])
        expected = fstr.concat_strings(lo, ro, separator="-")
        got = fstr.concat_strings(ld, rd, separator="-")
        assert got.to_list() == expected.to_list()

    @pytest.mark.parametrize("name,kernel", _STRING_KERNELS,
                             ids=[name for name, _ in _STRING_KERNELS])
    @pytest.mark.parametrize("values", [[None, None, None], []],
                             ids=["all-null", "empty"])
    def test_kernel_degenerate_columns(self, name, kernel, values):
        obj, dct = _string_column_pair(values)
        expected, got = kernel(obj), kernel(dct)
        assert got.dtype == expected.dtype
        assert got.to_list() == expected.to_list()


class TestJoinParity:
    @pytest.mark.parametrize("how", _JOIN_TYPES)
    @_SETTINGS
    @given(left=keyed_frames(), right=keyed_frames(prefix="r"))
    def test_string_key_join(self, how, left, right):
        expected = left.join(right, on="key", how=how)
        got = left.to_backend("dict").join(right.to_backend("dict"), on="key", how=how)
        _assert_frames_identical(expected, got)

    @pytest.mark.parametrize("how", _JOIN_TYPES)
    @_SETTINGS
    @given(left=keyed_frames(), right=keyed_frames(prefix="r"))
    def test_multi_key_join(self, how, left, right):
        lkeys, rkeys = ["key", "i"], ["key", "ri"]
        expected = left.join(right, left_on=lkeys, right_on=rkeys, how=how)
        got = left.to_backend("dict").join(right.to_backend("dict"),
                                           left_on=lkeys, right_on=rkeys, how=how)
        _assert_frames_identical(expected, got)

    @pytest.mark.parametrize("how", _JOIN_TYPES)
    def test_degenerate_joins(self, how):
        empty = DataFrame({"key": Column.from_values([], "string"),
                           "x": Column.from_values([], "int64")})
        nulls = DataFrame({"key": Column.from_values([None, None], "string"),
                           "y": Column.from_values([1, 2], "int64")})
        for left, right in [(empty, nulls), (nulls, empty), (nulls, nulls),
                            (empty, empty)]:
            expected = left.join(right, on="key", how=how, suffix="_r")
            got = left.to_backend("dict").join(right.to_backend("dict"),
                                               on="key", how=how, suffix="_r")
            _assert_frames_identical(expected, got)


class TestGroupbyParity:
    @pytest.mark.parametrize("func", AGG_FUNCTIONS)
    @_SETTINGS
    @given(frame=keyed_frames())
    def test_string_key_aggregation(self, func, frame):
        aggs = {"i": func, "f": func, "b": "count"}
        expected = frame.group_agg("key", aggs)
        got = frame.to_backend("dict").group_agg("key", aggs)
        _assert_frames_identical(expected, got)

    @pytest.mark.parametrize("func", AGG_FUNCTIONS)
    @_SETTINGS
    @given(frame=keyed_frames())
    def test_multi_key_aggregation(self, func, frame):
        expected = frame.group_agg(["key", "b"], {"i": func})
        got = frame.to_backend("dict").group_agg(["key", "b"], {"i": func})
        _assert_frames_identical(expected, got)

    @_SETTINGS
    @given(frame=keyed_frames())
    def test_string_payload_aggregation(self, frame):
        # min/max/first/last/count/nunique on the string column itself
        aggs = {"key": "nunique"}
        expected = frame.group_agg("b", aggs)
        got = frame.to_backend("dict").group_agg("b", aggs)
        _assert_frames_identical(expected, got)

    @_SETTINGS
    @given(frame=keyed_frames())
    def test_size_matches_reference(self, frame):
        expected = frame.groupby("key").size()
        got = frame.to_backend("dict").groupby("key").size()
        _assert_frames_identical(expected, got)

    @pytest.mark.parametrize("func", AGG_FUNCTIONS)
    def test_degenerate_groupbys(self, func):
        empty = DataFrame({"key": Column.from_values([], "string"),
                           "x": Column.from_values([], "int64")})
        nulls = DataFrame({"key": Column.from_values([None, None, None], "string"),
                           "x": Column.from_values([1, None, 3], "int64")})
        for frame in (empty, nulls):
            expected = frame.group_agg("key", {"x": func})
            got = frame.to_backend("dict").group_agg("key", {"x": func})
            _assert_frames_identical(expected, got)


class TestColumnOpParity:
    """Column-level operations the dict backend overrides."""

    @_SETTINGS
    @given(values=string_lists)
    def test_sort_filter_take_unique(self, values):
        obj, dct = _string_column_pair(values)
        for kwargs in ({}, {"ascending": False}, {"nulls_last": True},
                       {"ascending": False, "nulls_last": True}):
            assert np.array_equal(obj.sort_indices(**kwargs), dct.sort_indices(**kwargs))
        assert obj.nunique() == dct.nunique()
        assert obj.unique().to_list() == dct.unique().to_list()
        assert obj.value_counts() == dct.value_counts()
        assert obj.min() == dct.min() and obj.max() == dct.max()
        assert obj.is_in(["a", "ab"]).to_list() == dct.is_in(["a", "ab"]).to_list()
        assert obj.fill_null("zz").to_list() == dct.fill_null("zz").to_list()
        assert (obj.replace({"a": "x", "b": "y"}).to_list()
                == dct.replace({"a": "x", "b": "y"}).to_list())

    @_SETTINGS
    @given(values=string_lists)
    def test_conversion_roundtrip(self, values):
        obj, dct = _string_column_pair(values)
        back = convert_column(dct, "object")
        assert type(back) is Column and back.dtype is STRING
        assert back.to_list() == obj.to_list()
        assert convert_column(dct, "dict") is dct  # already there: no copy


class TestBackendMachinery:
    def test_known_backends(self):
        assert set(known_backends()) >= {"object", "dict"}

    def test_use_backend_scoping(self):
        assert active_backend() == "object"
        with use_backend("dict"):
            assert active_backend() == "dict"
            assert isinstance(Column.from_values(["a", None], "string"),
                              DictStringColumn)
            with use_backend("object"):
                assert active_backend() == "object"
            assert active_backend() == "dict"
        assert active_backend() == "object"

    def test_set_default_backend(self):
        set_default_backend("dict")
        try:
            assert active_backend() == "dict"
        finally:
            set_default_backend("object")
        assert active_backend() == "object"

    def test_unknown_backend_rejected(self):
        with pytest.raises(DTypeError):
            use_backend("arrow").__enter__()

    def test_third_party_backend_registration(self):
        calls = []

        def builder(values, validity):
            calls.append(len(values))
            return Column(values, STRING, validity)

        key = (STRING.typecode, "mine")
        ColumnFactory.register(key, builder)
        try:
            assert "mine" in known_backends()
            with use_backend("mine"):
                column = Column.from_values(["a", None], "string")
            assert column.to_list() == ["a", None]
            assert calls  # the custom builder actually ran
        finally:
            ColumnFactory.unregister(key)
        assert "mine" not in known_backends()

    def test_convert_frame_is_noop_on_same_backend(self):
        frame = DataFrame({"s": Column.from_values(["a", "b"], "string"),
                           "i": Column.from_values([1, 2], "int64")})
        assert convert_frame(frame, "object") is frame
        converted = convert_frame(frame, "dict")
        assert convert_frame(converted, "dict") is converted
        assert isinstance(converted["s"], DictStringColumn)
        assert converted["i"] is frame["i"]  # non-strings are untouched


class TestSweepBackendCoordinate:
    def test_cell_id_depends_on_backend(self):
        from repro.sweep import Cell

        base = Cell(mode="full", engine="pandas", dataset="taxi")
        dct = Cell(mode="full", engine="pandas", dataset="taxi", backend="dict")
        assert base.backend == "object"
        assert base.cell_id != dct.cell_id
        assert Cell.from_dict(dct.to_dict()) == dct

    def test_measurement_roundtrips_backend(self):
        from repro.results import Measurement

        m = Measurement(engine="pandas", backend="dict")
        assert Measurement.from_dict(m.to_dict()).backend == "dict"
        # records written before the field existed load with the default
        assert Measurement.from_dict({"engine": "pandas"}).backend == "object"

    def test_sharing_roundtrips_dict_columns(self):
        from repro.frame.sharing import attach_frame, export_frame

        frame = DataFrame({
            "s": Column.from_values(["a", None, "b", "a"], "string"),
            "i": Column.from_values([1, 2, None, 4], "int64"),
        }).to_backend("dict")
        shm, manifest = export_frame(frame)
        try:
            attached, attached_shm = attach_frame(manifest)
            try:
                assert isinstance(attached["s"], DictStringColumn)
                _assert_frames_identical(frame, attached)
                # exported codes attach as a zero-copy read-only view
                with pytest.raises((ValueError, RuntimeError)):
                    attached["s"].values[0] = 0
            finally:
                del attached
                attached_shm.close()
        finally:
            shm.close()
            shm.unlink()
