"""Tests for the plan-statistics layer: harvesting, selectivity, propagation,
structural fingerprints and plan-level cost estimation."""

import dataclasses

import pytest

from repro.frame import DataFrame, col
from repro.plan import LazyFrame, Optimizer, OptimizerSettings
from repro.plan.logical import Join, Scan
from repro.plan.stats import (
    ColumnStats,
    DEFAULT_DISTINCT_FRACTION,
    JOIN_BUILD_COST_WEIGHT,
    RANGE_SELECTIVITY,
    StatsEstimator,
    TableStats,
    expression_key,
    harvest_frame,
    node_cost_inputs,
    plan_key,
    predicate_selectivity,
)
from repro.simulate import CostModel, PAPER_SERVER, get_profile
from repro.simulate.hardware import MachineConfig


@pytest.fixture
def frame():
    return DataFrame({
        "key": ["a", "b"] * 50,
        "value": [float(i) for i in range(100)],
        "nullable": [None if i % 4 == 0 else i for i in range(100)],
    })


class TestHarvest:
    def test_row_count_and_columns(self, frame):
        stats = harvest_frame(frame)
        assert stats.rows == 100
        assert set(stats.columns) == {"key", "value", "nullable"}

    def test_null_fraction(self, frame):
        stats = harvest_frame(frame)
        assert stats.column("nullable").null_fraction == pytest.approx(0.25)
        assert stats.column("value").null_fraction == 0.0

    def test_distinct_fraction(self, frame):
        stats = harvest_frame(frame)
        assert stats.column("key").distinct_fraction == pytest.approx(0.02)
        assert stats.column("value").distinct_fraction == pytest.approx(1.0)

    def test_harvest_is_cached_on_the_frame(self, frame):
        assert harvest_frame(frame) is harvest_frame(frame)

    def test_unknown_column_gets_defaults(self, frame):
        stats = harvest_frame(frame)
        assert stats.column("missing").distinct_fraction == DEFAULT_DISTINCT_FRACTION


class TestTableStats:
    def test_bytes_scale_with_rows(self):
        stats = TableStats(100, {"a": ColumnStats(byte_width=8.0)})
        assert stats.bytes == 800
        assert stats.scaled(2.0).bytes == 1600

    def test_distinct_count_caps_at_rows(self):
        stats = TableStats(10, {"a": ColumnStats(distinct_fraction=1.0),
                                "b": ColumnStats(distinct_fraction=1.0)})
        assert stats.distinct_count(["a", "b"]) == 10

    def test_project_keeps_row_count(self):
        stats = TableStats(50, {"a": ColumnStats(), "b": ColumnStats()})
        projected = stats.project(["a"])
        assert projected.rows == 50 and list(projected.columns) == ["a"]


class TestPredicateSelectivity:
    def test_equality_uses_distinct_count(self, frame):
        stats = harvest_frame(frame)
        assert predicate_selectivity(col("key") == "a", stats) == pytest.approx(0.5)

    def test_range_is_one_third(self, frame):
        stats = harvest_frame(frame)
        assert predicate_selectivity(col("value") > 5, stats) == RANGE_SELECTIVITY

    def test_conjunction_multiplies(self, frame):
        stats = harvest_frame(frame)
        conj = (col("key") == "a") & (col("value") > 5)
        assert predicate_selectivity(conj, stats) == pytest.approx(0.5 * RANGE_SELECTIVITY)

    def test_disjunction_is_inclusion_exclusion(self, frame):
        stats = harvest_frame(frame)
        disj = (col("key") == "a") | (col("key") == "b")
        assert predicate_selectivity(disj, stats) == pytest.approx(0.75)

    def test_is_null_uses_null_fraction(self, frame):
        stats = harvest_frame(frame)
        assert predicate_selectivity(col("nullable").is_null(), stats) == pytest.approx(0.25)
        assert predicate_selectivity(col("nullable").not_null(), stats) == pytest.approx(0.75)

    def test_isin_scales_with_value_count(self, frame):
        stats = harvest_frame(frame)
        assert predicate_selectivity(col("key").is_in(["a"]), stats) == pytest.approx(0.5)

    def test_selectivity_is_bounded(self, frame):
        stats = harvest_frame(frame)
        many = col("key").is_in(["a", "b", "c", "d", "e"])
        assert predicate_selectivity(many, stats) <= 1.0


class TestEstimatorPropagation:
    def test_filter_scales_rows(self, frame):
        plan = LazyFrame.from_frame(frame).filter(col("key") == "a").plan
        estimated = StatsEstimator().estimate(plan)
        assert estimated.rows == pytest.approx(50)

    def test_project_narrows_columns(self, frame):
        plan = LazyFrame.from_frame(frame).select(["key"]).plan
        estimated = StatsEstimator().estimate(plan)
        assert list(estimated.columns) == ["key"] and estimated.rows == 100

    def test_aggregate_caps_at_distinct_keys(self, frame):
        plan = LazyFrame.from_frame(frame).group_agg("key", {"value": "sum"}).plan
        estimated = StatsEstimator().estimate(plan)
        assert estimated.rows == pytest.approx(2)
        assert estimated.column("key").distinct_fraction == 1.0

    def test_join_cardinality(self, frame):
        right = DataFrame({"key": ["a", "b"], "w": [1.0, 2.0]})
        plan = LazyFrame.from_frame(frame).join(
            LazyFrame.from_frame(right), on="key").plan
        estimated = StatsEstimator().estimate(plan)
        # |L|*|R| / max(d(L.key), d(R.key)) = 100*2/2
        assert estimated.rows == pytest.approx(100)
        assert "w" in estimated.columns

    def test_semi_join_keeps_left_schema(self, frame):
        right = DataFrame({"key": ["a"], "w": [1.0]})
        plan = LazyFrame.from_frame(frame).join(
            LazyFrame.from_frame(right), on="key", how="semi").plan
        estimated = StatsEstimator().estimate(plan)
        assert "w" not in estimated.columns
        assert estimated.rows < 100

    def test_drop_nulls_applies_null_fractions(self, frame):
        plan = LazyFrame.from_frame(frame).drop_nulls(["nullable"]).plan
        estimated = StatsEstimator().estimate(plan)
        assert estimated.rows == pytest.approx(75)
        assert estimated.column("nullable").null_fraction == 0.0

    def test_fill_nulls_clears_null_fraction(self, frame):
        plan = LazyFrame.from_frame(frame).fill_nulls(0).plan
        estimated = StatsEstimator().estimate(plan)
        assert estimated.rows == 100
        assert estimated.column("nullable").null_fraction == 0.0

    def test_limit_caps_rows(self, frame):
        plan = LazyFrame.from_frame(frame).limit(7).plan
        assert StatsEstimator().estimate(plan).rows == 7

    def test_row_scale_lifts_leaves(self, frame):
        plan = LazyFrame.from_frame(frame).filter(col("key") == "a").plan
        estimated = StatsEstimator(row_scale=1000.0).estimate(plan)
        assert estimated.rows == pytest.approx(50_000)

    def test_filescan_uses_catalog(self):
        from repro.plan.logical import FileScan

        catalog = {"t.parquet": TableStats(1234, {"x": ColumnStats()})}
        node = FileScan("t.parquet", "parquet")
        assert StatsEstimator(catalog=catalog).estimate(node).rows == 1234
        assert StatsEstimator().estimate(node).rows > 0  # assumed default

    def test_estimates_are_memoized_per_node(self, frame):
        plan = LazyFrame.from_frame(frame).filter(col("key") == "a").plan
        estimator = StatsEstimator()
        assert estimator.estimate(plan) is estimator.estimate(plan)


class TestFingerprints:
    def test_identical_subtrees_share_a_key(self, frame):
        a = LazyFrame.from_frame(frame).filter(col("key") == "a").plan
        b = LazyFrame.from_frame(frame).filter(col("key") == "a").plan
        assert plan_key(a) == plan_key(b)

    def test_different_predicates_differ(self, frame):
        a = LazyFrame.from_frame(frame).filter(col("key") == "a").plan
        b = LazyFrame.from_frame(frame).filter(col("key") == "b").plan
        assert plan_key(a) != plan_key(b)

    def test_different_frames_differ(self, frame):
        other = DataFrame({"key": ["a"], "value": [1.0], "nullable": [None]})
        a = LazyFrame.from_frame(frame).plan
        b = LazyFrame.from_frame(other).plan
        assert plan_key(a) != plan_key(b)

    def test_distinct_lambdas_never_collapse(self, frame):
        a = LazyFrame.from_frame(frame).map_frame(lambda f: f, label="m").plan
        b = LazyFrame.from_frame(frame).map_frame(lambda f: f, label="m").plan
        assert plan_key(a) != plan_key(b)

    def test_expression_key_distinguishes_literals(self):
        assert expression_key(col("a") == 1) != expression_key(col("a") == "1")


class TestNodeCostInputs:
    def test_join_weights_build_side(self, frame):
        right = DataFrame({"key": ["a", "b"], "w": [1.0, 2.0]})
        node = Join(Scan(frame), Scan(right), ("key",), ("key",))
        estimator = StatsEstimator()
        _, rows, _, _ = node_cost_inputs(node, estimator)
        assert rows == int(100 + JOIN_BUILD_COST_WEIGHT * 2)
        flipped = Join(Scan(frame), Scan(right), ("key",), ("key",),
                       build_side="left")
        _, rows_flipped, _, _ = node_cost_inputs(flipped, estimator)
        assert rows_flipped == int(2 + JOIN_BUILD_COST_WEIGHT * 100)

    def test_filescan_format_selects_op_class(self):
        from repro.plan.logical import FileScan

        estimator = StatsEstimator()
        assert node_cost_inputs(FileScan("t.parquet", "parquet"), estimator)[0] == "read_parquet"
        assert node_cost_inputs(FileScan("t.csv", "csv"), estimator)[0] == "read_csv"

    def test_scan_is_not_priced(self, frame):
        assert node_cost_inputs(Scan(frame), StatsEstimator())[0] is None


class TestEstimatePlan:
    def _plan(self, frame):
        return (LazyFrame.from_frame(frame)
                .filter(col("key") == "a")
                .group_agg("key", {"value": "sum"})).plan

    def test_plan_cost_is_positive_and_itemized(self, frame):
        cost = CostModel(PAPER_SERVER).estimate_plan(get_profile("polars"),
                                                     self._plan(frame))
        assert cost.seconds > 0 and not cost.oom
        assert len(cost.per_node) == 2  # filter + groupby (scan is free)
        assert cost.out_stats is not None and cost.out_stats.rows <= 2

    def test_row_scale_increases_cost(self, frame):
        model = CostModel(PAPER_SERVER)
        profile = get_profile("polars")
        small = model.estimate_plan(profile, self._plan(frame))
        large = model.estimate_plan(profile, self._plan(frame), row_scale=10_000.0)
        assert large.seconds > small.seconds

    def test_shared_subplans_are_priced_once(self, frame):
        shared = LazyFrame.from_frame(frame).filter(col("key") == "a").plan
        joined = Join(shared, shared, ("key",), ("key",))
        cost = CostModel(PAPER_SERVER).estimate_plan(get_profile("polars"), joined)
        filters = [label for label, _ in cost.per_node if "filter" in label]
        assert len(filters) == 1

    def test_oom_is_flagged_not_raised(self, frame):
        tiny = dataclasses.replace(PAPER_SERVER, name="tiny", ram_gb=1e-6)
        cost = CostModel(tiny).estimate_plan(get_profile("pandas"),
                                             self._plan(frame), row_scale=1e6)
        assert cost.oom

    def test_plan_cost_add_combines(self):
        from repro.simulate import PlanCost

        a = PlanCost(seconds=1.0, peak_bytes=10, per_node=[("x", 1.0)])
        b = PlanCost(seconds=2.0, peak_bytes=5, oom=True, per_node=[("y", 2.0)])
        a.add(b)
        assert a.seconds == 3.0 and a.peak_bytes == 10 and a.oom
        assert len(a.per_node) == 2


class TestCostBasedRewrites:
    def test_build_side_annotated_on_smaller_input(self, frame):
        small = DataFrame({"key": ["a", "b"], "w": [1.0, 2.0]})
        # small side on the left: the optimizer should flip the build there
        plan = LazyFrame.from_frame(small).join(
            LazyFrame.from_frame(frame), on="key").plan
        optimized = Optimizer().optimize(plan)
        assert isinstance(optimized, Join) and optimized.build_side == "left"
        # small side on the right: the default build side is already right
        plan = LazyFrame.from_frame(frame).join(
            LazyFrame.from_frame(small), on="key").plan
        optimized = Optimizer().optimize(plan)
        assert isinstance(optimized, Join) and optimized.build_side == "right"

    def test_build_side_never_changes_results(self, frame):
        small = DataFrame({"key": ["a", "b"], "w": [1.0, 2.0]})
        lazy = LazyFrame.from_frame(small).join(LazyFrame.from_frame(frame), on="key")
        assert lazy.collect().equals(lazy.collect(optimize_plan=False))

    def test_reordering_reduces_estimated_cost(self, frame):
        small = DataFrame({"key": ["a", "b"], "w": [1.0, 2.0]})
        plan = LazyFrame.from_frame(small).join(
            LazyFrame.from_frame(frame), on="key").plan
        pricer = Optimizer()
        with_rule = Optimizer(dataclasses.replace(
            OptimizerSettings(), projection_pushdown=False)).optimize(plan)
        without = Optimizer(dataclasses.replace(
            OptimizerSettings(), projection_pushdown=False,
            join_reordering=False)).optimize(plan)
        assert pricer.plan_seconds(with_rule) < pricer.plan_seconds(without)

    def test_common_subplan_elimination_shares_nodes(self, frame):
        filtered = LazyFrame.from_frame(frame).filter(col("key") == "a")
        lazy = filtered.join(filtered, on="key", suffix="_dup")
        optimized = Optimizer().optimize(lazy.plan)
        assert isinstance(optimized, Join)
        assert optimized.left is optimized.right

    def test_cse_executes_shared_subplan_once(self, frame):
        filtered = LazyFrame.from_frame(frame).filter(col("key") == "a")
        lazy = filtered.join(filtered, on="key", suffix="_dup")
        out, stats = lazy.collect_with_stats()
        filters = [op for op in stats.operators if op.operator == "filter"]
        assert len(filters) == 1  # computed once, reused for both join inputs
        baseline, base_stats = lazy.collect_with_stats(
            OptimizerSettings(common_subplan_elimination=False))
        assert out.equals(baseline)
        assert len([op for op in base_stats.operators
                    if op.operator == "filter"]) == 2

    def test_cse_streaming_matches_eager(self, frame):
        filtered = LazyFrame.from_frame(frame).filter(col("key") == "a")
        lazy = filtered.join(filtered, on="key", suffix="_dup")
        streamed, stats = lazy.collect_streaming(batch_rows=16)
        assert streamed.equals(lazy.collect())
        filters = [op for op in stats.operators if op.operator == "filter"]
        assert len(filters) == 1

    def test_cost_based_and_rule_based_agree_on_results(self, frame):
        lazy = (LazyFrame.from_frame(frame)
                .with_column("doubled", col("value") * 2)
                .filter(col("key") == "a")
                .join(LazyFrame.from_frame(DataFrame({"key": ["a", "b"],
                                                      "w": [1.0, 2.0]})), on="key")
                .group_agg("key", {"doubled": "sum"}))
        rule_based = lazy.collect(dataclasses.replace(OptimizerSettings(),
                                                      cost_based=False))
        cost_based = lazy.collect()
        assert rule_based.equals(cost_based)
        assert cost_based.equals(lazy.collect(optimize_plan=False))


class TestExplainWithStats:
    def test_annotations_render_rows_and_bytes(self, frame):
        lazy = LazyFrame.from_frame(frame).filter(col("key") == "a")
        text = lazy.explain(stats=True)
        assert "~50 rows" in text and "B]" in text or "KiB" in text

    def test_optimized_explain_prices_nodes(self, frame):
        lazy = (LazyFrame.from_frame(frame)
                .filter(col("key") == "a")
                .group_agg("key", {"value": "sum"}))
        text = lazy.explain(optimized=True, stats=True)
        assert "s]" in text  # per-node estimated seconds
        assert "aggregate" in text

    def test_plain_explain_is_unannotated(self, frame):
        text = LazyFrame.from_frame(frame).filter(col("key") == "a").explain()
        assert "~" not in text  # no estimated-rows/bytes annotations
