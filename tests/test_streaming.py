"""Tests of the morsel-driven streaming execution layer.

Covers the :class:`~repro.plan.streaming.StreamingExecutor` (bit-identical
results, batch/spill counters, file scans), the streaming-aware memory model
(breakers spill instead of OOM), the engine wiring (``execute_steps`` /
``measure_full`` with ``streaming=``), the sweep-cell coordinate, the CLI
flags and the fig8 out-of-core scenario.
"""

from __future__ import annotations

import json

import pytest

from repro import ExperimentConfig, LazyFrame, Session
from repro.__main__ import main as cli_main
from repro.core.runner import MatrixRunner
from repro.datasets import generate_dataset
from repro.datasets.pipelines import get_pipelines
from repro.engines import create_engine, create_engines
from repro.engines.base import SimulationContext
from repro.frame import DataFrame, col
from repro.io import scan_columns, write_csv, write_rparquet
from repro.plan import (
    DEFAULT_BATCH_ROWS,
    ExecutionStats,
    SpillAccumulator,
    execute_streaming,
)
from repro.simulate import LAPTOP, PAPER_SERVER, MemoryModel, get_profile
from repro.simulate.memory import STREAM_PIPELINE_BREAKERS, SimulatedOOMError
from repro.sweep import Cell

GB = 1024 ** 3


def _wide_frame(rows: int = 500) -> DataFrame:
    return DataFrame({
        "key": [("abcd")[i % 4] for i in range(rows)],
        "value": [float(i % 97) - 41.5 for i in range(rows)],
        "flag": [i % 5 for i in range(rows)],
        "label": [f"row-{i % 13}" for i in range(rows)],
    })


def _reference_plan(frame: DataFrame) -> LazyFrame:
    right = DataFrame({"key": list("abcd"), "bonus": [1.0, 2.0, 3.0, 4.0]})
    return (LazyFrame.from_frame(frame)
            .with_column("scaled", col("value") * 0.5)
            .filter(col("flag") < 4)
            .join(LazyFrame.from_frame(right), on="key")
            .sort(["key", "value", "flag"])
            .distinct(["key", "flag", "label"])
            .group_agg(["key", "label"], {"scaled": "sum", "value": "count"}))


class TestStreamingExecutor:
    @pytest.mark.parametrize("batch_rows", [3, 17, 64, DEFAULT_BATCH_ROWS])
    def test_bit_identical_to_eager(self, batch_rows):
        frame = _wide_frame()
        lazy = _reference_plan(frame)
        eager = lazy.collect()
        streamed, stats = lazy.collect_streaming(batch_rows=batch_rows)
        assert streamed.equals(eager)
        assert stats.total_batches >= len(stats.operators)

    @pytest.mark.parametrize("how", ["inner", "left", "semi", "anti", "outer", "right"])
    def test_join_types_identical(self, how):
        frame = _wide_frame(200)
        right = DataFrame({"key": list("abx"), "bonus": [1.0, 2.0, 3.0]})
        lazy = LazyFrame.from_frame(frame).join(LazyFrame.from_frame(right),
                                                on="key", how=how)
        eager = lazy.collect()
        streamed, _ = lazy.collect_streaming(batch_rows=7)
        assert streamed.equals(eager)

    def test_limit_streams_and_matches(self):
        frame = _wide_frame(300)
        lazy = LazyFrame.from_frame(frame).filter(col("flag") > 0).limit(42)
        eager = lazy.collect()
        streamed, stats = lazy.collect_streaming(batch_rows=10)
        assert streamed.equals(eager)
        limit_op = next(op for op in stats.operators if op.operator == "limit")
        assert limit_op.rows_out == 42

    def test_barrier_map_runs_whole_frame(self):
        frame = _wide_frame(100)
        seen_rows = []
        lazy = LazyFrame.from_frame(frame).map_frame(
            lambda f: (seen_rows.append(f.num_rows), f)[1], label="probe")
        streamed, _ = lazy.collect_streaming(batch_rows=8)
        assert seen_rows == [frame.num_rows]  # barrier: exactly one whole-frame call
        assert streamed.equals(frame)

    def test_empty_result_keeps_schema(self):
        frame = _wide_frame(50)
        lazy = LazyFrame.from_frame(frame).filter(col("flag") > 99)
        eager = lazy.collect()
        streamed, _ = lazy.collect_streaming(batch_rows=5)
        assert streamed.columns == eager.columns
        assert streamed.num_rows == 0

    def test_spill_accumulator_counts_overflow(self):
        store = SpillAccumulator(budget_rows=10)
        frame = _wide_frame(40)
        for start in range(0, 40, 8):
            store.add(frame.slice(start, 8))
        assert store.rows == 40
        assert store.spilled_rows == 30
        assert store.spilled_partitions >= 1
        assert store.merge().num_rows == 40

    def test_breaker_records_spilled_rows(self):
        frame = _wide_frame(120)
        lazy = LazyFrame.from_frame(frame).sort("value")
        _, stats = lazy.collect_streaming(batch_rows=10, spill_budget_rows=30)
        sort_op = next(op for op in stats.operators if op.operator == "sort")
        assert sort_op.spilled_rows > 0
        assert not sort_op.streamed
        assert stats.spilled_rows == sort_op.spilled_rows

    def test_one_shot_helper(self):
        frame = _wide_frame(60)
        lazy = _reference_plan(frame)
        streamed, stats = execute_streaming(lazy.plan, batch_rows=9)
        assert streamed.equals(lazy.collect())
        assert stats.streamed_operators > 0


class TestFileScanStats:
    @pytest.fixture
    def files(self, tmp_path):
        frame = _wide_frame(90)
        csv_path = tmp_path / "frame.csv"
        rpq_path = tmp_path / "frame.rpq"
        write_csv(frame, csv_path)
        write_rparquet(frame, rpq_path)
        return frame, str(csv_path), str(rpq_path)

    @staticmethod
    def _reader(path, file_format, projected):
        from repro.io import read_any

        return read_any(path, file_format, columns=list(projected) if projected else None)

    def test_scan_columns_reads_header_only(self, files):
        frame, csv_path, rpq_path = files
        assert scan_columns(csv_path, "csv") == frame.columns
        assert scan_columns(rpq_path, "rparquet") == frame.columns

    @pytest.mark.parametrize("file_format", ["csv", "rparquet"])
    def test_projected_read_records_source_width(self, files, file_format):
        frame, csv_path, rpq_path = files
        path = csv_path if file_format == "csv" else rpq_path
        lazy = LazyFrame.from_file(path, file_format).select(["key", "value"])
        for collect in (lambda l: l.collect_with_stats(file_reader=self._reader),
                        lambda l: l.collect_streaming(file_reader=self._reader,
                                                      batch_rows=16)):
            collected, stats = collect(lazy)
            assert collected.columns == ["key", "value"]
            read_op = next(op for op in stats.operators if op.operator == "read")
            assert read_op.file_format == file_format
            assert read_op.columns == 2
            assert read_op.source_columns == frame.num_columns
            assert read_op.cells_scanned > read_op.cells_in

    def test_plan_read_priced_by_format(self):
        """The satellite fix: parquet FileScans price read_parquet, not read_csv."""
        engine = create_engine("polars")
        sim = SimulationContext.for_frame(_wide_frame(100), PAPER_SERVER,
                                          nominal_rows=1_000_000)
        from repro.simulate.clock import RunReport

        stats = ExecutionStats()
        stats.record("read", 100, 100, 2, source_columns=4, file_format="rparquet",
                     column_names=("key", "value"))
        report = RunReport(engine=engine.name, label="test")
        engine._price_plan_stats(stats, sim, 0, report, pipeline_scope=False)
        assert report.records[0].op_class == "read_parquet"

        stats_csv = ExecutionStats()
        stats_csv.record("read", 100, 100, 4, file_format="csv")
        report_csv = RunReport(engine=engine.name, label="test")
        engine._price_plan_stats(stats_csv, sim, 0, report_csv, pipeline_scope=False)
        assert report_csv.records[0].op_class == "read_csv"

    def test_plan_bytes_use_column_widths(self):
        """The satellite fix: pricing uses real per-column bytes, not cols*16."""
        frame = DataFrame({
            "narrow": [1] * 64,
            "wide": ["x" * 400] * 64,
        })
        engine = create_engine("pandas")
        sim = SimulationContext.for_frame(frame, PAPER_SERVER, nominal_rows=64)
        narrow = engine._plan_op_bytes(
            type("Op", (), {"operator": "filter", "column_names": ("narrow",),
                            "columns": 1, "rows_in": 64})(), sim)
        wide = engine._plan_op_bytes(
            type("Op", (), {"operator": "filter", "column_names": ("wide",),
                            "columns": 1, "rows_in": 64})(), sim)
        assert wide > narrow * 10


class TestStreamingMemoryModel:
    def test_breaker_spills_instead_of_oom(self):
        model = MemoryModel(LAPTOP)
        polars = get_profile("polars")
        big = 30 * GB
        with pytest.raises(SimulatedOOMError):
            model.assess(polars, "groupby", big, dataset_bytes=big, pipeline_scope=True)
        assessment = model.assess(polars, "groupby", big, dataset_bytes=big,
                                  pipeline_scope=True, streaming=True)
        assert assessment.spilled
        assert assessment.peak_bytes <= LAPTOP.usable_ram_bytes

    def test_streamable_op_gets_bounded_window(self):
        model = MemoryModel(LAPTOP)
        polars = get_profile("polars")
        mid = 4 * GB
        eager = model.assess(polars, "filter", mid, dataset_bytes=mid)
        streamed = model.assess(polars, "filter", mid, dataset_bytes=mid, streaming=True)
        assert streamed.streamed
        assert streamed.peak_bytes < eager.peak_bytes

    def test_streaming_never_ooms_on_cpu(self):
        model = MemoryModel(LAPTOP)
        pandas = get_profile("pandas")
        huge = 200 * GB
        for op_class in sorted(STREAM_PIPELINE_BREAKERS) + ["filter", "read_csv"]:
            assessment = model.assess(pandas, op_class, huge, dataset_bytes=huge,
                                      pipeline_scope=True, streaming=True)
            assert assessment.peak_bytes <= LAPTOP.usable_ram_bytes

    def test_gpu_engines_still_oom(self):
        model = MemoryModel(PAPER_SERVER)
        cudf = get_profile("cudf")
        with pytest.raises(SimulatedOOMError):
            model.assess(cudf, "join", 60 * GB, dataset_bytes=60 * GB, streaming=True)


#: (dataset, scale) samples small enough that the whole engine × pipeline
#: identity matrix stays fast.
_IDENTITY_DATASETS = (("athlete", 0.1), ("loan", 0.1), ("taxi", 0.1), ("patrol", 0.1))


class TestEngineStreaming:
    @pytest.fixture(scope="class")
    def server_engines(self):
        return create_engines(machine=PAPER_SERVER)

    @pytest.mark.parametrize("dataset_name,scale", _IDENTITY_DATASETS)
    def test_streaming_bit_identical_for_every_engine_and_pipeline(
            self, dataset_name, scale, server_engines):
        """Acceptance: streaming ≡ eager for every registered pipeline/engine."""
        dataset = generate_dataset(dataset_name, scale=scale, seed=5)
        sim = dataset.simulation_context(PAPER_SERVER, runs=1)
        for pipeline in get_pipelines(dataset_name):
            steps = [s for s in pipeline.steps if s.preparator not in ("read", "write")]
            reference = None
            for name, engine in server_engines.items():
                eager_frame, _ = engine.execute_steps(dataset.frame, steps, sim,
                                                      lazy=False)
                streamed_frame, _ = engine.execute_steps(dataset.frame, steps, sim,
                                                         streaming=True)
                assert streamed_frame.equals(eager_frame), (
                    f"{name} streaming diverged on {pipeline.name}")
                if reference is None:
                    reference = eager_frame
                else:
                    assert eager_frame.equals(reference), (
                        f"{name} eager diverged on {pipeline.name}")

    def test_streaming_capability_follows_profile(self):
        assert create_engine("polars").supports_streaming
        assert create_engine("vaex").supports_streaming
        assert not create_engine("pandas").supports_streaming
        engine = create_engine("pandas")
        assert engine.effective_streaming(True) is False
        assert create_engine("polars").effective_streaming(True) is True
        assert create_engine("polars").effective_streaming(None) is False

    def test_streaming_records_streamed_operations(self, taxi_dataset):
        engine = create_engine("polars")
        sim = taxi_dataset.simulation_context(PAPER_SERVER, runs=1)
        pipeline = get_pipelines("taxi")[0]
        steps = [s for s in pipeline.steps if s.preparator not in ("read", "write")]
        _, report = engine.execute_steps(taxi_dataset.frame, steps, sim, streaming=True)
        assert any(r.streamed for r in report.records)

    def test_oom_cell_completes_via_streaming_with_spill(self):
        """Acceptance: an eager-OOM cell completes streaming with spilled=True."""
        dataset = generate_dataset("taxi", scale=0.05, seed=5)
        sim = dataset.simulation_context(LAPTOP, runs=1)
        engine = create_engine("vaex", LAPTOP)
        pipeline = get_pipelines("taxi")[0]
        steps = [s for s in pipeline.steps if s.preparator not in ("read", "write")]
        with pytest.raises(SimulatedOOMError):
            engine.execute_steps(dataset.frame, steps, sim, lazy=False,
                                 pipeline_scope=True)
        _, report = engine.execute_steps(dataset.frame, steps, sim, streaming=True,
                                         pipeline_scope=True)
        assert any(r.spilled for r in report.records)

        runner = MatrixRunner(runs=1)
        eager = runner.measure_full(engine, dataset.frame, pipeline, sim, lazy=False)
        streamed = runner.measure_full(engine, dataset.frame, pipeline, sim,
                                       streaming=True)
        assert eager.failed and "GiB" in eager.failure_reason
        assert not streamed.failed
        assert streamed.streaming and streamed.spilled
        assert streamed.strategy == "streaming"

    def test_vaex_chunked_preparators_share_base_path(self):
        """VaexEngine's chunk streaming now lives in the shared BaseEngine hook."""
        vaex = create_engine("vaex")
        assert "calccol" in vaex.streamable_preparators
        assert "norm" not in vaex.streamable_preparators  # global statistics
        assert vaex.stream_chunk_rows == 2048
        pandas_engine = create_engine("pandas")
        assert pandas_engine.streamable_preparators == frozenset()


class TestSessionStreaming:
    @pytest.fixture(scope="class")
    def session(self):
        return Session(ExperimentConfig(scale=0.05, runs=1, datasets=["taxi"],
                                        engines=["pandas", "polars", "vaex"]))

    def test_plan_adds_streaming_cells_for_capable_engines(self, session):
        plan = session.plan("full", pipelines=[0], streaming="both", lazy=False)
        by_engine: dict[str, list[Cell]] = {}
        for planned in plan:
            by_engine.setdefault(planned.cell.engine, []).append(planned.cell)
        assert [c.streaming for c in by_engine["pandas"]] == [False]
        assert [c.streaming for c in by_engine["polars"]] == [False, True]
        assert [c.streaming for c in by_engine["vaex"]] == [False, True]

    def test_streaming_true_prefers_streaming_where_supported(self, session):
        plan = session.plan("full", pipelines=[0], streaming=True)
        cells = {p.cell.engine: p.cell for p in plan}
        assert cells["polars"].streaming and not cells["pandas"].streaming
        assert cells["polars"].label().endswith("streaming")

    def test_streaming_cells_have_distinct_ids(self, session):
        plan = session.plan("full", pipelines=[0], streaming="both", lazy=True)
        polars = [p.cell for p in plan if p.cell.engine == "polars"]
        assert len({c.cell_id for c in polars}) == len(polars)
        roundtripped = Cell.from_dict(polars[-1].to_dict())
        assert roundtripped == polars[-1]
        assert roundtripped.streaming

    def test_run_streaming_results_cache_roundtrip(self, session, tmp_path):
        from repro.sweep import SweepCache

        cache = SweepCache(tmp_path / "cache")
        first = session.run("full", pipelines=[0], streaming="both", lazy=False,
                            cache=cache)
        again = session.run("full", pipelines=[0], streaming="both", lazy=False,
                            cache=cache)
        assert session.last_sweep.executed == 0
        assert again == first
        streamed = [m for m in again if m.streaming]
        assert streamed and all(m.strategy == "streaming" for m in streamed)

    def test_core_mode_ignores_streaming(self, session):
        plan = session.plan("core", pipelines=[0], streaming="both")
        assert all(not p.cell.streaming for p in plan)


class TestCLIStreaming:
    def test_streaming_flag_and_memory_limit(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        code = cli_main(["--mode", "full", "--engines", "pandas,polars,vaex",
                         "--datasets", "taxi", "--scale", "0.05", "--runs", "1",
                         "--machine", "laptop", "--memory-limit", "8",
                         "--streaming", "both", "--no-cache", "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        records = payload if isinstance(payload, list) else payload["measurements"]
        streamed = [r for r in records if r.get("streaming")]
        eager_failures = [r for r in records if not r.get("streaming") and r.get("failed")]
        assert streamed and all(not r["failed"] for r in streamed)
        assert eager_failures  # the eager cells OOM on the constrained machine
        assert all(r["machine"] == "laptop-8gb" for r in records)
        rendered = capsys.readouterr().out
        assert "streaming" in rendered

    def test_memory_limit_must_be_positive(self):
        with pytest.raises(SystemExit):
            cli_main(["--memory-limit", "0", "--no-cache"])

    @pytest.mark.parametrize("mode", ["tpch", "read", "write"])
    def test_streaming_rejected_for_unsupported_modes(self, mode):
        with pytest.raises(SystemExit):
            cli_main(["--mode", mode, "--streaming", "--no-cache"])

    def test_memory_limit_machine_matches_fig8_helper(self):
        from repro.experiments.fig8_out_of_core import constrained_machine
        from repro.simulate import LAPTOP as laptop

        machine = constrained_machine(laptop, 8.0)
        assert machine.name == "laptop-8gb"
        assert machine.ram_gb == 8.0


class TestFig8OutOfCore:
    def test_streaming_rescues_oom_cells(self):
        from repro.experiments import fig8_out_of_core

        config = ExperimentConfig(scale=0.05, runs=1,
                                  engines=["pandas", "polars", "sparksql", "vaex"])
        result = fig8_out_of_core.run(config)
        assert result.counts("streaming")["oom"] == 0
        rescued = result.rescued_cells()
        assert rescued, "expected at least one eager-OOM cell to complete streaming"
        assert any(result.outcome(e, p, "streaming") == "spill" for e, p in rescued)
        rendered = result.format()
        assert "rescued by streaming" in rendered
        assert "OOM" in rendered
