"""Tests for the simulated engines and the Bento runner."""

import pytest

from repro.core import BentoRunner, Pipeline
from repro.engines import (
    DEFAULT_ENGINES,
    EngineUnavailableError,
    SimulationContext,
    available_engines,
    create_engine,
    create_engines,
)
from repro.frame import DataFrame
from repro.simulate import LAPTOP, PAPER_SERVER, SERVER


@pytest.fixture
def frame():
    return DataFrame({
        "id": list(range(40)),
        "cat": ["a", "b", "c", "d"] * 10,
        "num": [float(i) * 1.5 for i in range(40)],
        "text": [f"row {i}" for i in range(40)],
        "when": ["2015-01-%02d" % (i % 28 + 1) for i in range(40)],
    })


@pytest.fixture
def sim(frame):
    return SimulationContext.for_frame(frame, PAPER_SERVER, nominal_rows=2_000_000, name="tiny")


@pytest.fixture
def pipeline():
    return Pipeline.from_steps("tiny", "tiny", [
        ("read", {}),
        ("getcols", {}),
        ("isna", {}),
        ("query", {"predicate": {"op": ">", "left": {"col": "num"}, "right": {"lit": 10}}}),
        ("calccol", {"target": "scaled",
                     "expression": {"op": "*", "left": {"col": "num"}, "right": {"lit": 2}}}),
        ("catenc", {"columns": ["cat"]}),
        ("group", {"by": ["cat"], "agg": {"num": "mean"}}),
        ("chdate", {"columns": ["when"]}),
        ("dropna", {}),
        ("fillna", {"value": 0}),
        ("dedup", {"subset": ["id"]}),
        ("sort", {"by": ["num"]}),
        ("write", {}),
    ])


class TestRegistry:
    def test_default_engines_all_created_on_paper_server(self):
        engines = create_engines(machine=PAPER_SERVER)
        assert set(engines) == set(DEFAULT_ENGINES)

    def test_cudf_skipped_without_gpu(self):
        engines = create_engines(machine=SERVER)
        assert "cudf" not in engines
        assert "cudf" not in available_engines(LAPTOP)

    def test_cudf_raises_when_not_skipping(self):
        with pytest.raises(EngineUnavailableError):
            create_engines(["cudf"], machine=LAPTOP, skip_unavailable=False)

    def test_unknown_engine(self):
        with pytest.raises(KeyError):
            create_engine("arrowframe")

    def test_engine_metadata(self):
        polars = create_engine("polars")
        assert polars.display_name == "Polars"
        assert polars.supports_lazy and polars.supports_parquet
        datatable = create_engine("datatable")
        assert not datatable.supports_parquet


class TestExecuteStep:
    def test_step_returns_record_with_nominal_rows(self, frame, sim):
        engine = create_engine("pandas")
        result, record = engine.execute_step(frame, "sort", sim, params={"by": ["num"]})
        assert record.rows == 2_000_000
        assert record.seconds > 0
        assert result.frame.num_rows == frame.num_rows

    def test_results_identical_across_engines(self, frame, sim, pipeline, engines):
        """Every simulated engine must produce the same physical result."""
        reference = None
        runner = BentoRunner(runs=1)
        for name, engine in engines.items():
            current = frame
            for step in pipeline.steps:
                if step.preparator in ("read", "write"):
                    continue
                outcome, _ = engine.execute_step(current, step, sim)
                if outcome.chained:
                    current = outcome.frame
            if reference is None:
                reference = current
            else:
                assert current.equals(reference), f"{name} diverged from the reference result"

    def test_lazy_and_eager_results_match(self, frame, sim, pipeline):
        engine = create_engine("polars")
        steps = [s for s in pipeline.steps if s.preparator not in ("read", "write")]
        eager_frame, _ = engine.execute_steps(frame, steps, sim, lazy=False)
        lazy_frame, _ = engine.execute_steps(frame, steps, sim, lazy=True)
        assert eager_frame.equals(lazy_frame)

    def test_fallback_penalty_applied_for_missing_api(self, frame, sim):
        vaex = create_engine("vaex")
        # dedup is missing from Vaex's API (Table 3), pivot from DataTable's.
        _, record = vaex.execute_step(frame, "dedup", sim, params={"subset": ["id"]})
        _, native = vaex.execute_step(frame, "sort", sim, params={"by": ["num"]})
        assert record.seconds > 0 and native.seconds > 0

    def test_gpu_engine_requires_gpu_machine(self):
        with pytest.raises(EngineUnavailableError):
            create_engine("cudf", machine=LAPTOP)

    def test_read_write_pricing(self, frame, sim, tmp_path):
        engine = create_engine("polars")
        loaded, record = engine.read_dataset(frame, sim, "csv")
        assert loaded.num_rows == frame.num_rows and record.seconds > 0
        write_record = engine.write_dataset(frame, sim, "parquet", path=tmp_path / "out.rpq")
        assert (tmp_path / "out.rpq").exists() and write_record.seconds > 0

    def test_datatable_rejects_parquet(self, frame, sim):
        engine = create_engine("datatable")
        with pytest.raises(EngineUnavailableError):
            engine.read_dataset(frame, sim, "parquet")

    def test_datatable_sentinel_isna_matches_reference(self, frame, sim):
        datatable = create_engine("datatable")
        pandas = create_engine("pandas")
        dt_out, _ = datatable.execute_step(frame, "isna", sim)
        pd_out, _ = pandas.execute_step(frame, "isna", sim)
        assert dt_out.output.equals(pd_out.output)

    def test_spark_metadata_slower_than_pandas(self, frame, sim):
        spark = create_engine("sparksql")
        pandas = create_engine("pandas")
        _, spark_record = spark.execute_step(frame, "getcols", sim)
        _, pandas_record = pandas.execute_step(frame, "getcols", sim)
        assert spark_record.seconds > pandas_record.seconds


class TestRunner:
    def test_function_core_reports_every_step(self, frame, sim, pipeline):
        runner = BentoRunner(runs=2)
        timing = runner.run_function_core(create_engine("pandas"), frame, pipeline, sim)
        assert not timing.failed
        assert len(timing.seconds_by_call) == len(pipeline)
        assert set(timing.seconds_by_preparator()) == set(pipeline.preparators_used())
        assert timing.total_seconds > 0

    def test_stage_timings_cover_all_stages(self, frame, sim, pipeline):
        runner = BentoRunner(runs=1)
        stages = runner.run_all_stages(create_engine("polars"), frame, pipeline, sim)
        assert set(stages) == {"I/O", "EDA", "DT", "DC"}
        assert all(t.seconds >= 0 for t in stages.values())

    def test_full_pipeline_lazy_faster_for_spark(self, frame, sim, pipeline):
        runner = BentoRunner(runs=1)
        spark = create_engine("sparkpd")
        eager = runner.run_full(spark, frame, pipeline, sim, lazy=False)
        lazy = runner.run_full(spark, frame, pipeline, sim, lazy=True)
        assert lazy.seconds < eager.seconds

    def test_full_matrix(self, frame, sim, pipeline, engines):
        runner = BentoRunner(runs=1)
        timings = runner.run_full_matrix(engines, frame, pipeline, sim)
        assert set(timings) == set(engines)
        assert timings["cudf"].seconds < timings["pandas"].seconds

    def test_oom_is_reported_not_raised(self, frame, pipeline):
        runner = BentoRunner(runs=1)
        laptop_sim = SimulationContext.for_frame(frame, LAPTOP, nominal_rows=80_000_000,
                                                 name="huge")
        timing = runner.run_full(create_engine("pandas", LAPTOP), frame, pipeline, laptop_sim)
        assert timing.failed and "GiB" in timing.failure_reason

    def test_runs_must_be_positive(self):
        with pytest.raises(ValueError):
            BentoRunner(runs=0)

    def test_run_stage_missing_stage_returns_zero(self, frame, sim):
        pipeline = Pipeline.from_steps("noio", "tiny", [("sort", {"by": ["num"]})])
        runner = BentoRunner(runs=1)
        timing = runner.run_stage(create_engine("pandas"), frame, pipeline, "DC", sim)
        assert timing.seconds == 0.0 and not timing.failed
