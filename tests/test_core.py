"""Tests for Bento core: preparators, pipelines, metrics, compatibility."""

import json

import pytest

from repro.core import (
    Compatibility,
    PREPARATOR_NAMES,
    PREPARATORS,
    Pipeline,
    PipelineStep,
    Stage,
    compatibility,
    compatibility_table,
    coverage_fraction,
    format_speedup,
    geometric_mean_speedup,
    get_preparator,
    impact_percentages,
    parse_expression,
    speedup,
)
from repro.frame import DataFrame
from repro.frame.errors import ExpressionError


@pytest.fixture
def frame():
    return DataFrame({
        "id": [1, 2, 2, 4, 5],
        "cat": ["a", "b", "a", None, "b"],
        "num": [10.0, None, 30.0, 40.0, 500.0],
        "when": ["2015-01-01", "2015-02-01", None, "2016-03-01", "2016-04-01"],
        "text": ["Hello World", "FOO", "bar", "Baz", None],
    })


class TestStages:
    def test_parse_aliases(self):
        assert Stage.parse("I/O") is Stage.IO
        assert Stage.parse("eda") is Stage.EDA
        assert Stage.parse(Stage.DC) is Stage.DC

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            Stage.parse("ML")

    def test_ordering(self):
        assert Stage.ordered() == (Stage.IO, Stage.EDA, Stage.DT, Stage.DC)


class TestPreparatorRegistry:
    def test_27_preparators_registered(self):
        assert len(PREPARATOR_NAMES) == 27

    def test_every_table3_stage_present(self):
        stages = {p.stage for p in PREPARATORS.values()}
        assert stages == set(Stage.ordered())

    def test_unknown_preparator(self):
        with pytest.raises(KeyError):
            get_preparator("explode")

    @pytest.mark.parametrize("name", PREPARATOR_NAMES)
    def test_touched_columns_subset_of_frame(self, frame, name):
        preparator = get_preparator(name)
        params = _default_params(name)
        touched = preparator.touched_columns(frame, params)
        assert set(touched) <= set(frame.columns)


def _default_params(name):
    return {
        "query": {"predicate": {"op": ">", "left": {"col": "num"}, "right": {"lit": 5}}},
        "calccol": {"target": "t", "expression": {"op": "+", "left": {"col": "num"},
                                                  "right": {"lit": 1}}},
        "outlier": {"column": "num"},
        "srchptn": {"column": "text", "pattern": "o"},
        "sort": {"by": ["num"]},
        "cast": {"columns": {"id": "float64"}},
        "drop": {"columns": ["text"]},
        "rename": {"mapping": {"id": "identifier"}},
        "pivot": {"index": "cat", "columns": "id", "values": "num"},
        "join": {"with": {"by": ["cat"], "agg": {"num": "mean"}}},
        "onehot": {"column": "cat"},
        "catenc": {"columns": ["cat"]},
        "group": {"by": ["cat"], "agg": {"num": "mean"}},
        "chdate": {"columns": ["when"]},
        "dropna": {"subset": ["num"]},
        "setcase": {"columns": ["text"], "mode": "lower"},
        "norm": {"columns": ["num"]},
        "dedup": {"subset": ["id"]},
        "fillna": {"value": {"num": 0.0}},
        "replace": {"column": "cat", "mapping": {"a": "alpha"}},
        "edit": {"column": "text", "function": "strip"},
    }.get(name, {})


class TestPreparatorBehaviour:
    @pytest.mark.parametrize("name", [n for n in PREPARATOR_NAMES if n not in ("read", "write")])
    def test_apply_returns_result(self, frame, name):
        preparator = get_preparator(name)
        result = preparator.apply(frame, _default_params(name))
        assert result.frame is not None
        assert isinstance(result.chained, bool)

    def test_query_filters_rows(self, frame):
        result = get_preparator("query").apply(frame, _default_params("query"))
        assert result.chained and result.frame.num_rows == 4

    def test_isna_returns_boolean_frame(self, frame):
        result = get_preparator("isna").apply(frame, {})
        assert not result.chained
        assert result.output["num"].to_list()[1] is True

    def test_outlier_detects_extreme_value(self, frame):
        result = get_preparator("outlier").apply(frame, {"column": "num"})
        assert result.output.to_list()[-1] is True

    def test_calccol_adds_column(self, frame):
        result = get_preparator("calccol").apply(frame, _default_params("calccol"))
        assert "t" in result.frame.columns

    def test_group_side_output(self, frame):
        result = get_preparator("group").apply(frame, _default_params("group"))
        assert not result.chained and result.output.num_rows == 3

    def test_group_replace_mode(self, frame):
        result = get_preparator("group").apply(frame, {"by": ["cat"], "agg": {"num": "mean"},
                                                       "replace": True})
        assert result.chained and result.frame.num_rows == 3

    def test_join_adds_aggregate_column(self, frame):
        result = get_preparator("join").apply(frame, _default_params("join"))
        assert any(c.startswith("num_mean_by_cat") for c in result.frame.columns)
        assert result.frame.num_rows == frame.num_rows

    def test_dedup_removes_duplicate_ids(self, frame):
        result = get_preparator("dedup").apply(frame, {"subset": ["id"]})
        assert result.frame.num_rows == 4

    def test_chdate_parses(self, frame):
        result = get_preparator("chdate").apply(frame, {"columns": ["when"]})
        assert result.frame["when"].dtype.value == "datetime"

    def test_edit_strips_strings(self, frame):
        result = get_preparator("edit").apply(frame, {"column": "text", "function": "lower"})
        assert result.frame["text"].to_list()[1] == "foo"

    def test_onehot_expands(self, frame):
        result = get_preparator("onehot").apply(frame, {"column": "cat"})
        assert "cat_a" in result.frame.columns

    def test_missing_columns_are_tolerated(self, frame):
        result = get_preparator("drop").apply(frame, {"columns": ["not_there"]})
        assert result.frame.columns == frame.columns

    def test_lazy_builders_exist_where_expected(self):
        assert get_preparator("query").supports_lazy
        assert get_preparator("fillna").supports_lazy
        assert not get_preparator("stats").supports_lazy


class TestExpressionSpec:
    def test_parse_column_shorthand(self, frame):
        assert parse_expression("num").evaluate(frame).to_list()[0] == 10.0

    def test_parse_operator_tree(self, frame):
        spec = {"op": "&", "left": {"op": ">", "left": {"col": "num"}, "right": {"lit": 15}},
                "right": {"fn": "not_null", "arg": {"col": "cat"}}}
        out = parse_expression(spec).evaluate(frame)
        # null & true evaluates to False under the substrate's mask semantics
        assert out.to_list() == [False, False, True, False, True]

    def test_parse_functions(self, frame):
        assert parse_expression({"fn": "year", "arg": {"col": "when"}}) is not None
        assert parse_expression({"fn": "contains", "arg": {"col": "text"},
                                 "pattern": "o"}) is not None
        assert parse_expression({"fn": "isin", "arg": {"col": "cat"},
                                 "values": ["a"]}) is not None
        assert parse_expression({"fn": "between", "arg": {"col": "num"},
                                 "low": 1, "high": 50}) is not None

    @pytest.mark.parametrize("bad", [
        {"op": "**", "left": {"col": "a"}, "right": {"lit": 1}},
        {"op": ">", "left": {"col": "a"}},
        {"fn": "contains", "arg": {"col": "a"}},
        {"fn": "nope", "arg": {"col": "a"}},
        {"weird": 1},
        object(),
    ])
    def test_parse_rejects_malformed_specs(self, bad):
        with pytest.raises(ExpressionError):
            parse_expression(bad)


class TestPipeline:
    def _pipeline(self):
        return Pipeline.from_steps("p", "athlete", [
            ("read", {}),
            ("isna", {}),
            ("query", {"predicate": {"op": ">", "left": {"col": "num"}, "right": {"lit": 1}}}),
            ("group", {"by": ["cat"], "agg": {"num": "mean"}}),
            ("fillna", {"value": 0}),
            ("write", {}),
        ])

    def test_step_validation(self):
        with pytest.raises(KeyError):
            PipelineStep("not_a_preparator")

    def test_stage_partitioning(self):
        pipeline = self._pipeline()
        assert [s.value for s in pipeline.stages()] == ["I/O", "EDA", "DT", "DC"]
        assert len(pipeline.steps_for_stage("EDA")) == 2
        assert pipeline.restricted_to(["EDA"]).preparators_used() == ["isna", "query"]

    def test_call_counts(self):
        assert self._pipeline().call_counts()["read"] == 1

    def test_json_roundtrip(self, tmp_path):
        pipeline = self._pipeline()
        path = tmp_path / "p.json"
        pipeline.to_json(path)
        loaded = Pipeline.from_json(path)
        assert loaded.name == pipeline.name
        assert [s.preparator for s in loaded.steps] == [s.preparator for s in pipeline.steps]

    def test_from_json_string(self):
        text = json.dumps(self._pipeline().to_dict())
        assert len(Pipeline.from_json(text)) == 6

    def test_from_json_missing_file_raises_clearly(self, tmp_path):
        missing = tmp_path / "no_such_pipeline.json"
        with pytest.raises(FileNotFoundError, match="no_such_pipeline.json"):
            Pipeline.from_json(str(missing))
        with pytest.raises(FileNotFoundError, match="pipeline JSON file not found"):
            Pipeline.from_json(missing)

    def test_append_fluent(self):
        pipeline = Pipeline("x", "taxi").append("read").append("sort", by=["a"])
        assert len(pipeline) == 2


class TestMetricsAndCompat:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(10.0, 0.0) == float("inf")
        assert speedup(0.0, 1.0) == 0.0

    def test_impact_sums_to_100(self):
        impact = impact_percentages({"a": 1.0, "b": 3.0})
        assert sum(impact.values()) == pytest.approx(100.0)
        assert impact["b"] == pytest.approx(75.0)

    def test_geometric_mean(self):
        assert geometric_mean_speedup([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean_speedup({}) == 0.0

    def test_format_speedup(self):
        assert format_speedup(12345.0).endswith("x")
        assert format_speedup(0.5) == "0.50x"

    def test_compatibility_lookup(self):
        assert compatibility("pandas", "join") is Compatibility.FULL
        assert compatibility("vaex", "dedup") is Compatibility.MISSING
        assert compatibility("modin_ray", "sort") is Compatibility.FULL
        assert compatibility("datatable", "fillna") is Compatibility.MISSING

    def test_compatibility_unknowns(self):
        with pytest.raises(KeyError):
            compatibility("pandas", "explode")
        with pytest.raises(KeyError):
            compatibility("arrowframe", "join")

    def test_compatibility_table_covers_all_preparators(self):
        table = compatibility_table()
        assert len(table) == 27
        assert set(table[0]) == {"preparator", "sparkpd", "sparksql", "modin", "polars",
                                 "cudf", "vaex", "datatable"}

    def test_coverage_fraction_modin_above_datatable(self):
        assert coverage_fraction("modin_ray") > coverage_fraction("datatable")
        assert coverage_fraction("pandas") == 1.0
