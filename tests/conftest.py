"""Shared fixtures for the test suite.

Everything here is intentionally tiny: the substrate is exercised on frames of
a few dozen to a few thousand rows, and the simulation layer extrapolates to
paper scale, so the whole suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_dataset
from repro.engines import SimulationContext, create_engines
from repro.frame import DataFrame
from repro.simulate import PAPER_SERVER
from repro.tpch import generate_tpch


@pytest.fixture
def small_frame() -> DataFrame:
    """A small mixed-type frame with nulls, used across the substrate tests."""
    return DataFrame({
        "id": [1, 2, 3, 4, 5, 6],
        "group": ["a", "b", "a", "c", "b", None],
        "value": [10.0, None, 30.0, 40.0, 50.0, 60.0],
        "count": [1, 2, 3, 4, None, 6],
        "flag": [True, False, True, None, True, False],
        "when": ["2015-01-01", "2015-02-15", None, "2016-07-04", "2014-12-31", "2015-06-30"],
    })


@pytest.fixture(scope="session")
def athlete_dataset():
    """A tiny physical Athlete sample (session-scoped: generated once)."""
    return generate_dataset("athlete", scale=0.2, seed=11)


@pytest.fixture(scope="session")
def taxi_dataset():
    """A tiny physical Taxi sample (session-scoped)."""
    return generate_dataset("taxi", scale=0.2, seed=11)


@pytest.fixture(scope="session")
def engines():
    """All simulated engines on the paper's evaluation server."""
    return create_engines(machine=PAPER_SERVER)


@pytest.fixture
def adhoc_sim(small_frame) -> SimulationContext:
    """Simulation context for the small ad-hoc frame, scaled to 1M rows."""
    return SimulationContext.for_frame(small_frame, PAPER_SERVER,
                                       nominal_rows=1_000_000, name="adhoc")


@pytest.fixture(scope="session")
def tpch_data():
    """A tiny TPC-H database shared by the TPC-H tests."""
    return generate_tpch(physical_scale_factor=0.001, seed=3)
