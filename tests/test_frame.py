"""Unit tests for the DataFrame substrate."""

import numpy as np
import pytest

from repro.frame import DataFrame, FLOAT64, INT64, STRING, concat_rows
from repro.frame.errors import (
    ColumnNotFoundError,
    DuplicateColumnError,
    JoinError,
    LengthMismatchError,
)


class TestBasics:
    def test_shape_and_columns(self, small_frame):
        assert small_frame.shape == (6, 6)
        assert small_frame.columns[0] == "id"
        assert "value" in small_frame

    def test_dtypes(self, small_frame):
        dtypes = small_frame.dtypes
        assert dtypes["id"] is INT64
        assert dtypes["group"] is STRING
        assert dtypes["value"] is FLOAT64

    def test_length_mismatch_rejected(self):
        with pytest.raises(LengthMismatchError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_unknown_column_raises(self, small_frame):
        with pytest.raises(ColumnNotFoundError):
            small_frame["nope"]

    def test_row_and_to_dict(self, small_frame):
        assert small_frame.row(0)["id"] == 1
        assert small_frame.to_dict()["group"][1] == "b"

    def test_from_rows(self):
        frame = DataFrame.from_rows([{"a": 1, "b": "x"}, {"a": 2}])
        assert frame.shape == (2, 2)
        assert frame["b"].to_list() == ["x", None]

    def test_equals_and_copy(self, small_frame):
        assert small_frame.equals(small_frame.copy())
        assert not small_frame.equals(small_frame.drop("id"))

    def test_memory_usage_positive(self, small_frame):
        assert small_frame.memory_usage() > 0

    def test_empty_frame(self):
        frame = DataFrame()
        assert frame.shape == (0, 0)
        assert frame.null_fraction() == 0.0


class TestColumnManipulation:
    def test_select_order(self, small_frame):
        out = small_frame.select(["value", "id"])
        assert out.columns == ["value", "id"]

    def test_select_missing(self, small_frame):
        with pytest.raises(ColumnNotFoundError):
            small_frame.select(["id", "nope"])

    def test_drop(self, small_frame):
        out = small_frame.drop(["flag", "when"])
        assert "flag" not in out.columns and out.num_columns == 4

    def test_rename(self, small_frame):
        out = small_frame.rename({"id": "identifier"})
        assert "identifier" in out.columns and "id" not in out.columns

    def test_rename_duplicate_rejected(self, small_frame):
        with pytest.raises(DuplicateColumnError):
            small_frame.rename({"id": "value"})

    def test_with_column_add_and_replace(self, small_frame):
        out = small_frame.with_column("double_id", small_frame["id"].mul(2))
        assert out["double_id"].to_list() == [2, 4, 6, 8, 10, 12]
        replaced = out.with_column("id", out["id"].mul(0))
        assert replaced["id"].to_list() == [0] * 6

    def test_with_column_length_mismatch(self, small_frame):
        with pytest.raises(LengthMismatchError):
            small_frame.with_column("bad", [1, 2])

    def test_cast(self, small_frame):
        out = small_frame.cast({"id": "float64"})
        assert out.dtypes["id"] is FLOAT64


class TestRowSelection:
    def test_filter(self, small_frame):
        mask = small_frame["value"].gt(25.0)
        out = small_frame.filter(mask)
        assert out.num_rows == 4

    def test_head_slice_take(self, small_frame):
        assert small_frame.head(2).num_rows == 2
        assert small_frame.slice(4).num_rows == 2
        assert small_frame.take(np.array([5, 0]))["id"].to_list() == [6, 1]

    def test_sample_deterministic(self, small_frame):
        a = small_frame.sample(0.5, seed=3)
        b = small_frame.sample(0.5, seed=3)
        assert a.equals(b)
        assert a.num_rows == 3

    def test_sort_single_key(self, small_frame):
        out = small_frame.sort_values("value")
        values = [v for v in out["value"].to_list() if v is not None]
        assert values == sorted(values)

    def test_sort_multi_key_descending(self, small_frame):
        out = small_frame.sort_values(["group", "value"], ascending=[True, False])
        groups = [g for g in out["group"].to_list() if g is not None]
        assert groups == sorted(groups)

    def test_sort_is_stable_on_ties(self):
        frame = DataFrame({"k": [1, 1, 1], "v": ["a", "b", "c"]})
        assert frame.sort_values("k")["v"].to_list() == ["a", "b", "c"]

    def test_drop_duplicates(self):
        frame = DataFrame({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert frame.drop_duplicates().num_rows == 2

    def test_drop_duplicates_subset_keep_last(self):
        frame = DataFrame({"a": [1, 1, 2], "b": ["first", "last", "only"]})
        out = frame.drop_duplicates(subset=["a"], keep="last")
        assert out["b"].to_list() == ["last", "only"]

    def test_dropna_any_and_all(self, small_frame):
        # only the first row is fully populated (each other row has one null)
        assert small_frame.dropna().num_rows == 1
        assert small_frame.dropna(how="all").num_rows == 6

    def test_dropna_subset(self, small_frame):
        assert small_frame.dropna(subset=["value"]).num_rows == 5


class TestMissingValues:
    def test_isna_counts(self, small_frame):
        counts = small_frame.null_counts()
        assert counts["value"] == 1 and counts["id"] == 0

    def test_null_fraction(self, small_frame):
        assert small_frame.null_fraction() == pytest.approx(5 / 36)

    def test_fillna_scalar(self, small_frame):
        out = small_frame.fillna(0)
        assert out["value"].null_count() == 0

    def test_fillna_mapping(self, small_frame):
        out = small_frame.fillna({"group": "unknown"})
        assert out["group"].null_count() == 0
        assert out["value"].null_count() == 1

    def test_fillna_unknown_column(self, small_frame):
        with pytest.raises(ColumnNotFoundError):
            small_frame.fillna({"nope": 0})


class TestStatistics:
    def test_describe_contains_numeric_columns(self, small_frame):
        stats = small_frame.describe()
        assert "value" in stats.columns and "group" not in stats.columns
        assert stats["statistic"].to_list()[0] == "count"

    def test_quantile(self, small_frame):
        out = small_frame.quantile(0.5, columns=["id"])
        assert out["id"] == pytest.approx(3.5)

    def test_locate_outliers(self):
        frame = DataFrame({"x": [1.0, 2.0, 2.5, 3.0, 100.0]})
        mask = frame.locate_outliers("x")
        assert mask.to_list() == [False, False, False, False, True]


class TestTransforms:
    def test_search_pattern(self, small_frame):
        out = small_frame.search_pattern("group", "a")
        assert out.num_rows == 2

    def test_set_case(self, small_frame):
        out = small_frame.set_case(["group"], "upper")
        assert out["group"].to_list()[0] == "A"

    def test_replace_values(self, small_frame):
        out = small_frame.replace_values("group", {"a": "alpha"})
        assert out["group"].to_list().count("alpha") == 2

    def test_edit_values(self, small_frame):
        out = small_frame.edit_values("id", lambda v: v * 10)
        assert out["id"].to_list()[0] == 10

    def test_normalize(self, small_frame):
        out = small_frame.normalize(["id"])
        assert out["id"].max() == pytest.approx(1.0)

    def test_parse_and_format_dates(self, small_frame):
        parsed = small_frame.parse_dates(["when"])
        assert parsed["when"].dtype.value == "datetime"
        formatted = parsed.format_dates(["when"], "%Y")
        assert formatted["when"].to_list()[0] == "2015"

    def test_extract_date_component(self, small_frame):
        out = small_frame.extract_date_component("when", "year")
        assert out["when_year"].to_list()[0] == 2015

    def test_categorical_encode(self, small_frame):
        out = small_frame.categorical_encode(["group"])
        values = out["group"].to_list()
        assert set(v for v in values if v is not None) <= {0, 1, 2}

    def test_one_hot_encode(self, small_frame):
        out = small_frame.one_hot_encode("group")
        assert "group_a" in out.columns and "group" not in out.columns
        assert sum(out["group_a"].to_list()) == 2


class TestRelationalOps:
    def test_group_agg_mean(self, small_frame):
        out = small_frame.group_agg("group", {"value": "mean"})
        lookup = dict(zip(out["group"].to_list(), out["value"].to_list()))
        assert lookup["a"] == pytest.approx(20.0)

    def test_group_agg_multiple_functions(self, small_frame):
        out = small_frame.group_agg("group", {"id": ["count", "max"]})
        assert "id_count" in out.columns and "id_max" in out.columns

    def test_groupby_size(self, small_frame):
        out = small_frame.groupby("group").size()
        lookup = dict(zip(out["group"].to_list(), out["count"].to_list()))
        assert lookup["a"] == 2 and lookup[None] == 1

    def test_group_by_unknown_column(self, small_frame):
        with pytest.raises(ColumnNotFoundError):
            small_frame.group_agg("nope", {"value": "mean"})

    def test_inner_join(self):
        left = DataFrame({"k": [1, 2, 3], "v": ["a", "b", "c"]})
        right = DataFrame({"k": [2, 3, 4], "w": [20, 30, 40]})
        out = left.join(right, on="k")
        assert out["k"].to_list() == [2, 3]
        assert out["w"].to_list() == [20, 30]

    def test_left_join_produces_nulls(self):
        left = DataFrame({"k": [1, 2], "v": ["a", "b"]})
        right = DataFrame({"k": [2], "w": [20]})
        out = left.join(right, on="k", how="left")
        assert out["w"].to_list() == [None, 20]

    def test_outer_join(self):
        left = DataFrame({"k": [1, 2], "v": ["a", "b"]})
        right = DataFrame({"k": [2, 3], "w": [20, 30]})
        out = left.join(right, on="k", how="outer")
        assert out.num_rows == 3

    def test_semi_and_anti_join(self):
        left = DataFrame({"k": [1, 2, 3]})
        right = DataFrame({"k": [2]})
        assert left.join(right, on="k", how="semi")["k"].to_list() == [2]
        assert left.join(right, on="k", how="anti")["k"].to_list() == [1, 3]

    def test_join_suffix_on_collision(self):
        left = DataFrame({"k": [1], "v": [1]})
        right = DataFrame({"k": [1], "v": [2]})
        out = left.join(right, on="k")
        assert "v_right" in out.columns

    def test_join_requires_keys(self):
        with pytest.raises(ValueError):
            DataFrame({"a": [1]}).join(DataFrame({"b": [1]}))

    def test_join_missing_key_column(self):
        with pytest.raises(JoinError):
            DataFrame({"a": [1]}).join(DataFrame({"b": [1]}), on="a")

    def test_multi_key_join(self):
        left = DataFrame({"a": [1, 1, 2], "b": ["x", "y", "x"], "v": [1, 2, 3]})
        right = DataFrame({"a": [1, 2], "b": ["y", "x"], "w": [10, 20]})
        out = left.join(right, on=["a", "b"])
        assert sorted(out["w"].to_list()) == [10, 20]

    def test_pivot_table(self, small_frame):
        out = small_frame.pivot_table("group", "flag", "value", aggfunc="sum")
        assert "group" in out.columns
        assert any(c.startswith("flag_") for c in out.columns)

    def test_concat_rows(self, small_frame):
        out = concat_rows([small_frame.head(2), small_frame.slice(2, 2)])
        assert out.num_rows == 4
        assert out.columns == small_frame.columns

    def test_concat_schema_mismatch(self, small_frame):
        with pytest.raises(LengthMismatchError):
            concat_rows([small_frame, small_frame.drop("id")])

    def test_to_string_renders(self, small_frame):
        text = small_frame.to_string(max_rows=3)
        assert "id" in text and "..." in text
