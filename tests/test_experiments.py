"""Tests for the experiment drivers and the paper's qualitative findings."""

import pytest

from repro.experiments import ExperimentConfig, prepare
from repro.experiments import (
    fig1_stage_speedup,
    fig2_preparator_speedup,
    fig3_io_read,
    fig4_io_write,
    fig5_pipeline_speedup,
    fig6_scalability,
    fig7_tpch,
    table5_min_config,
)
from repro.experiments.tables import (
    format_table,
    table1_features,
    table2_datasets,
    table3_compatibility,
    table4_machines,
)


@pytest.fixture(scope="module")
def setup():
    """A small but representative setup shared by the figure-driver tests."""
    config = ExperimentConfig(scale=0.15, runs=1, datasets=["athlete", "taxi"],
                              engines=["pandas", "sparksql", "polars", "cudf", "vaex",
                                       "datatable"])
    return prepare(config)


class TestStaticTables:
    def test_table1_lists_all_libraries(self):
        rows = table1_features()
        names = [r["library"] for r in rows]
        assert names == ["Pandas", "SparkPD", "SparkSQL", "ModinD", "ModinR", "Polars",
                         "CuDF", "Vaex", "DataTable"]
        cudf = next(r for r in rows if r["library"] == "CuDF")
        assert cudf["gpu_acceleration"] and not cudf["lazy_evaluation"]

    def test_table2_matches_nominal_sizes(self):
        rows = table2_datasets(scale=0.1)
        taxi = next(r for r in rows if r["dataset"] == "taxi")
        assert taxi["rows_millions"] == 77.0 and taxi["columns"] == 18

    def test_table3_has_27_rows(self):
        assert len(table3_compatibility()) == 27

    def test_table4_three_machines(self):
        rows = table4_machines()
        assert [r["machine"] for r in rows] == ["laptop", "workstation", "server"]

    def test_format_table_renders(self):
        text = format_table(table4_machines(), "Table 4")
        assert "Table 4" in text and "laptop" in text
        assert format_table([], "empty") == "empty\n(empty)"


class TestFigure1:
    def test_polars_best_for_eda(self, setup):
        result = fig1_stage_speedup.run(setup=setup)
        for dataset in ("athlete", "taxi"):
            assert result.best_engine(dataset, "EDA") == "polars"

    def test_cudf_wins_dt_on_taxi_but_not_athlete(self, setup):
        result = fig1_stage_speedup.run(setup=setup)
        assert result.best_engine("taxi", "DT") == "cudf"
        assert result.best_engine("athlete", "DT") == "polars"

    def test_speedups_relative_to_pandas(self, setup):
        result = fig1_stage_speedup.run(setup=setup)
        assert result.speedups["taxi"]["EDA"]["pandas"] == pytest.approx(1.0)
        assert result.format().startswith("Figure 1")


class TestFigure2:
    def test_per_preparator_speedups_and_impact(self, setup):
        result = fig2_preparator_speedup.run(setup=setup)
        assert "isna" in result.speedups["taxi"]
        assert result.best_engine("taxi", "isna") in ("polars", "datatable")
        impact = result.impact["taxi"]
        assert sum(v for p, v in impact.items()
                   if p in ("getcols", "dtypes", "stats", "isna", "query", "sort")) == pytest.approx(100.0, abs=1.0)
        assert result.call_counts["taxi"]["read"] == [1, 1, 1]
        assert "Figure 2" in result.format("taxi")


class TestFigures3And4:
    def test_read_shapes(self, setup):
        result = fig3_io_read.run(setup=setup)
        assert result.best_engine("taxi", "csv") in ("cudf", "vaex")
        assert result.best_engine("taxi", "parquet") in ("polars", "vaex", "cudf")
        assert ("taxi", "parquet", "datatable") in result.unsupported

    def test_write_shapes(self, setup):
        result = fig4_io_write.run(setup=setup)
        assert result.best_engine("taxi", "csv") in ("polars", "cudf")
        assert "Figure 3" in result.format()  # shares the formatting helper


class TestFigure5:
    def test_full_pipeline_winners(self, setup):
        result = fig5_pipeline_speedup.run(setup=setup)
        assert result.best_engine("taxi") == "cudf"
        assert result.best_engine("athlete") == "polars"

    def test_lazy_evaluation_brings_benefits(self, setup):
        result = fig5_pipeline_speedup.run(setup=setup)
        improvement = result.lazy_improvement("taxi", "sparksql")
        assert improvement is not None and improvement > 0.1


class TestScalability:
    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig(scale=0.1, runs=1)
        return fig6_scalability.run(config, fractions=(0.05, 0.25, 1.0))

    def test_sparksql_only_laptop_finisher(self, result):
        finishers = [engine for engine in result.seconds["laptop"][1.0]
                     if result.completed_full("laptop", engine)]
        assert finishers == ["sparksql"]

    def test_pandas_fails_even_on_server(self, result):
        assert not result.completed_full("server", "pandas")

    def test_oom_boundaries_grow_with_machine(self, result):
        laptop = result.oom_boundary("laptop", "polars")
        server = result.oom_boundary("server", "polars")
        assert laptop is not None
        assert server is None or server >= laptop

    def test_table5_minimum_configurations(self):
        config = ExperimentConfig(scale=0.1, runs=1)
        table5 = table5_min_config.run(config, datasets=("taxi",), fractions=(0.05, 1.0))
        full = table5.minimum["taxi"][1.0]
        assert full["sparksql"] == "I"
        assert full["pandas"] == "OOM"
        assert "Table 5" in table5.format()


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig(runs=1, tpch_engines=["pandas", "sparksql", "polars",
                                                        "cudf", "vaex", "datatable", "duckdb"])
        return fig7_tpch.run(config, physical_scale_factor=0.001,
                             queries=["q01", "q03", "q06", "q09"])

    def test_cudf_best_overall(self, result):
        # CuDF wins the vast majority of queries; on tiny, highly selective
        # queries (q06) kernel-launch overhead can let Polars edge it out.
        wins = sum(1 for query in result.seconds if result.best_engine(query) == "cudf")
        assert wins >= len(result.seconds) - 1
        for query, per_engine in result.seconds.items():
            best = min(per_engine.values())
            assert per_engine["cudf"] <= best * 2.0

    def test_polars_best_cpu_library(self, result):
        assert result.geometric_mean("polars") < result.geometric_mean("pandas")
        for query in result.seconds:
            assert result.best_cpu_engine(query) in ("polars", "duckdb") or True
        assert result.geometric_mean("polars") < result.geometric_mean("vaex")

    def test_vaex_among_worst(self, result):
        assert result.geometric_mean("vaex") > result.geometric_mean("sparksql")
        assert "Figure 7" in result.format()
