"""Tests for the batched execution tier: shared-memory frame transport,
substrate memoization, persistent workers, scheduling hints and the profiler.

The invariant everything here defends: any worker count and either executor
produces a ``ResultSet`` bit-identical to the sequential reference run — the
batch tier may *reorganize* and *deduplicate* physical substrate work, but
never change a measurement.
"""

import glob
import json

import numpy as np
import pytest

from repro import ExperimentConfig, Session, SweepCache
from repro.core.memo import SubstrateMemo
from repro.frame.frame import DataFrame
from repro.frame.sharing import (SEGMENT_PREFIX, SharedFrameStore, attach_frame,
                                 export_frame)
from repro.sweep import Cell, SweepScheduler
from repro.sweep.scheduler import PlannedCell
from repro.sweep.workers import (DEFAULT_SECONDS_HINT, HintMemory, assign_shards,
                                 build_batches)

_CONFIG = ExperimentConfig(scale=0.1, runs=2, datasets=["athlete", "taxi"],
                           engines=["pandas", "polars", "sparksql", "vaex",
                                    "modin_ray", "datatable"])


@pytest.fixture(scope="module")
def session() -> Session:
    return Session(_CONFIG)


@pytest.fixture(scope="module")
def sequential(session) -> "list[dict]":
    return [m.to_dict() for m in session.run("full", lazy="both", workers=1)]


def _leaked_segments() -> "list[str]":
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


def _fresh_session() -> Session:
    return Session(_CONFIG)


# --------------------------------------------------------------------------- #
# shared-memory frame transport
# --------------------------------------------------------------------------- #
class TestFrameSharing:
    def _frames(self, session):
        return [generated.frame
                for generated in session._select_datasets(None).values()]

    def test_roundtrip_is_exact_for_every_dtype(self, session):
        for frame in self._frames(session):
            shm, manifest = export_frame(frame)
            try:
                rebuilt, attached = attach_frame(manifest)
                assert rebuilt.columns == frame.columns
                for name in frame.columns:
                    original, copy = frame[name], rebuilt[name]
                    assert copy.dtype is original.dtype
                    np.testing.assert_array_equal(
                        np.asarray(copy.validity), np.asarray(original.validity))
                    if original.values.dtype == object:
                        assert copy.values.tolist() == original.values.tolist()
                    else:
                        np.testing.assert_array_equal(
                            np.asarray(copy.values), np.asarray(original.values))
                attached.close()
            finally:
                shm.close()
                shm.unlink()
        assert not _leaked_segments()

    def test_numeric_views_are_zero_copy_and_read_only(self, session):
        frame = self._frames(session)[0]
        shm, manifest = export_frame(frame)
        try:
            rebuilt, attached = attach_frame(manifest)
            numeric = [name for name in rebuilt.columns
                       if rebuilt[name].values.dtype != object]
            assert numeric, "expected at least one numeric column"
            for name in numeric:
                values = rebuilt[name].values
                assert not values.flags.owndata  # a view over the segment
                with pytest.raises((ValueError, RuntimeError)):
                    values[0] = values[0]
            attached.close()
        finally:
            shm.close()
            shm.unlink()

    def test_store_refcounts_and_unlinks_at_zero(self, session):
        frame = self._frames(session)[0]
        store = SharedFrameStore()
        manifest = store.export(frame)
        assert store.export(frame) is manifest  # one segment per frame
        store.retain(manifest.segment)
        store.retain(manifest.segment)
        store.release(manifest.segment)
        assert store.segment_names == [manifest.segment]  # still referenced
        store.release(manifest.segment)
        assert store.segment_names == []
        assert not _leaked_segments()
        store.close()  # idempotent

    def test_store_close_unlinks_everything_even_with_refs(self, session):
        store = SharedFrameStore()
        for frame in self._frames(session):
            store.retain(store.export(frame).segment)
        assert store.segment_names
        store.close()  # the scheduler's finally-path: refs do not keep segments
        assert store.segment_names == []
        assert not _leaked_segments()

    def test_store_is_a_context_manager(self, session):
        with pytest.raises(RuntimeError):
            with SharedFrameStore() as store:
                store.export(self._frames(session)[0])
                raise RuntimeError("mid-sweep failure")
        assert not _leaked_segments()


# --------------------------------------------------------------------------- #
# substrate memoization
# --------------------------------------------------------------------------- #
class TestSubstrateMemo:
    def test_memoized_engine_results_are_bit_identical(self, session):
        from repro.engines.registry import create_engine

        generated = session._select_datasets(["athlete"])["athlete"]
        sim = session.context_for("athlete")
        pipeline = session.pipelines_for("athlete")[0]
        machine = session.config.machine

        def run(engine):
            from repro.core.runner import MatrixRunner

            return MatrixRunner(runs=2).measure_full(
                engine, generated.frame, pipeline, sim, lazy=False).to_dict()

        memo = SubstrateMemo()
        for name in _CONFIG.engines:
            plain = run(create_engine(name, machine))
            memoized_engine = create_engine(name, machine)
            memoized_engine.substrate_memo = memo
            assert run(memoized_engine) == plain, name
        assert memo.hits > 0  # runs=2 alone guarantees repetition

    def test_memo_shares_across_engines_on_the_same_path(self, session):
        # pandas and polars share the whole-frame eager path; the second
        # engine's steps should be all hits.
        from repro.core.runner import MatrixRunner
        from repro.engines.registry import create_engine

        generated = session._select_datasets(["athlete"])["athlete"]
        sim = session.context_for("athlete")
        pipeline = session.pipelines_for("athlete")[0]
        memo = SubstrateMemo()
        for name in ("pandas", "polars"):
            engine = create_engine(name, session.config.machine)
            engine.substrate_memo = memo
            MatrixRunner(runs=1).measure_full(engine, generated.frame, pipeline,
                                              sim, lazy=False)
        misses_after_two_engines = memo.misses
        engine = create_engine("duckdb", session.config.machine)
        engine.substrate_memo = memo
        MatrixRunner(runs=1).measure_full(engine, generated.frame, pipeline,
                                          sim, lazy=False)
        assert memo.misses == misses_after_two_engines  # third engine: all hits

    def test_modin_partitioned_path_is_not_shared(self, session):
        from repro.engines.registry import create_engine

        machine = session.config.machine
        generated = session._select_datasets(["athlete"])["athlete"]
        modin = create_engine("modin_ray", machine)
        pandas = create_engine("pandas", machine)
        fillna = None
        for step in session.pipelines_for("athlete")[0].steps:
            if step.preparator == "fillna":
                fillna = step.spec
                break
        assert fillna is not None
        assert modin._preparator_path_tag(fillna, generated.frame) \
            != pandas._preparator_path_tag(fillna, generated.frame)


# --------------------------------------------------------------------------- #
# batched parallel equality (the tentpole invariant)
# --------------------------------------------------------------------------- #
class TestBatchedEquality:
    def test_thread_equals_sequential(self, sequential):
        session = _fresh_session()
        results = session.run("full", lazy="both", workers=4)
        assert [m.to_dict() for m in results] == sequential
        assert session.last_sweep.batches > 0  # really took the batched path
        assert not _leaked_segments()

    def test_process_equals_sequential(self, sequential):
        session = _fresh_session()
        results = session.run("full", lazy="both", workers=4, executor="process")
        assert [m.to_dict() for m in results] == sequential
        assert session.last_sweep.batches > 0
        assert not _leaked_segments()

    def test_unbatched_fallback_equals_sequential(self, sequential):
        session = _fresh_session()
        plan = session.plan("full", lazy="both")
        scheduler = SweepScheduler(workers=4, batched=False)
        results = scheduler.run(plan)
        assert [m.to_dict() for m in results] == sequential
        assert scheduler.last_stats.batches == 0

    def test_tpch_thread_and_process_equal_sequential(self):
        queries = ["q01", "q06"]
        reference = [m.to_dict() for m in
                     _fresh_session().run_tpch(queries=queries, workers=1)]
        for executor in ("thread", "process"):
            session = _fresh_session()
            results = session.run_tpch(queries=queries, workers=3,
                                       executor=executor)
            assert [m.to_dict() for m in results] == reference, executor
        assert not _leaked_segments()

    def test_io_modes_through_the_batched_path(self):
        reference = [m.to_dict() for m in _fresh_session().run("read", workers=1)]
        session = _fresh_session()
        results = session.run("read", workers=4, executor="process")
        assert [m.to_dict() for m in results] == reference
        assert not _leaked_segments()


# --------------------------------------------------------------------------- #
# failure semantics: per-cell commits, resume, no leaked segments
# --------------------------------------------------------------------------- #
class _Boom(RuntimeError):
    pass


def _failing_plan(session, cache, fail_engine="polars"):
    """A real plan where every cell of one engine raises."""
    plan = session.plan("full", lazy="both")
    out = []
    for planned in plan:
        if planned.cell.engine == fail_engine:
            payload = dict(planned.payload)
            payload["sim"] = None  # poison: execute_cell will raise in worker
            out.append(PlannedCell(cell=planned.cell,
                                   execute=_raise_boom, payload=payload))
        else:
            out.append(planned)
    return out


def _raise_boom():
    raise _Boom("injected failure")


class TestBatchedFailures:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_failure_commits_finished_cells_and_cleans_segments(
            self, tmp_path, executor):
        session = _fresh_session()
        cache = SweepCache(tmp_path)
        plan = _failing_plan(session, cache)
        scheduler = SweepScheduler(workers=2, cache=cache, executor=executor)
        with pytest.raises(Exception):
            scheduler.run(plan)
        stats = scheduler.last_stats
        assert stats.failed >= 1
        assert stats.executed == cache.stores  # every executed cell committed
        assert not _leaked_segments()  # exception path unlinked everything

        # resume: cached cells are served, only the rest execute
        session2 = _fresh_session()
        results = session2.run("full", lazy="both", workers=2, cache=cache)
        assert session2.last_sweep.cached >= stats.executed
        reference = [m.to_dict() for m in _fresh_session().run("full", lazy="both")]
        assert [m.to_dict() for m in results] == reference

    def test_setup_failure_before_workers_attach_unlinks_segments(
            self, tmp_path, monkeypatch):
        # Satellite fix: frames are exported to /dev/shm *before* the worker
        # pool exists; a pool that dies during construction (or a Ctrl-C in
        # the setup window) must still unlink every exported segment.
        from repro.sweep import workers as workers_mod

        def refuse_to_start(*_args, **_kwargs):
            raise RuntimeError("worker pool failed to start")

        monkeypatch.setattr(workers_mod, "ProcessWorkerPool", refuse_to_start)
        session = _fresh_session()
        plan = session.plan("full")
        scheduler = SweepScheduler(workers=2, cache=SweepCache(tmp_path),
                                   executor="process")
        with pytest.raises(RuntimeError, match="failed to start"):
            scheduler.run(plan)
        assert not _leaked_segments()

    def test_pool_interrupt_drains_done_futures(self, tmp_path, monkeypatch):
        # Satellite fix: a BaseException (Ctrl-C) in the scheduling thread
        # must not discard cells whose futures already completed.
        from concurrent import futures as futures_mod

        from repro.sweep import scheduler as scheduler_mod

        session = _fresh_session()
        plan = session.plan("full")
        cache = SweepCache(tmp_path)

        def interrupted_as_completed(fs, timeout=None):
            done, _ = futures_mod.wait(list(fs))
            assert done  # all work finished before the "interrupt"
            raise KeyboardInterrupt

        monkeypatch.setattr(scheduler_mod, "as_completed",
                            interrupted_as_completed)
        scheduler = SweepScheduler(workers=2, cache=cache, batched=False)
        with pytest.raises(KeyboardInterrupt):
            scheduler.run(plan)
        stats = scheduler.last_stats
        assert stats.executed == len(plan)  # drained, counted ...
        assert cache.stores == len(plan)  # ... and committed to the cache


# --------------------------------------------------------------------------- #
# scheduling hints and batch construction
# --------------------------------------------------------------------------- #
class TestHintsAndBatches:
    def test_cache_records_and_reads_seconds(self, tmp_path):
        cache = SweepCache(tmp_path)
        cell = Cell(mode="full", engine="pandas", dataset="athlete", runs=1)
        session = _fresh_session()
        plan = [p for p in session.plan("full", engines=["pandas"],
                                        datasets=["athlete"], lazy=False)]
        measurements = plan[0].execute()
        cache.store(plan[0].cell, measurements, seconds=1.25)
        payload = json.loads(cache.path_for(plan[0].cell).read_text())
        assert payload["seconds"] == 1.25
        assert cache.load(plan[0].cell) is not None  # extra key: still a hit
        # a sibling cell (different runs → different hash) inherits the hint
        sibling = Cell.from_dict({**plan[0].cell.to_dict(), "runs": 5})
        assert cache.seconds_hint(sibling) == 1.25
        assert cache.seconds_hint(cell) is None  # different label: no hint

    def test_old_entries_without_seconds_still_load(self, tmp_path):
        cache = SweepCache(tmp_path)
        session = _fresh_session()
        plan = session.plan("full", engines=["pandas"], datasets=["athlete"],
                            lazy=False)
        cache.store(plan[0].cell, plan[0].execute())  # no seconds (old layout)
        assert cache.load(plan[0].cell) is not None
        assert cache.seconds_hint(plan[0].cell) is None

    def test_batches_group_by_dataset_scale_engine(self):
        session = _fresh_session()
        plan = session.plan("full", lazy="both")
        batches = build_batches(plan, range(len(plan)))
        for batch in batches:
            coords = {(t.cell.dataset, t.cell.scale, t.cell.engine)
                      for t in batch.tasks}
            assert coords == {batch.key}
        covered = sorted(t.index for b in batches for t in b.tasks)
        assert covered == list(range(len(plan)))

    def test_affinity_keeps_each_dataset_on_one_worker(self):
        session = _fresh_session()
        plan = session.plan("full", lazy="both")
        assignments = assign_shards(build_batches(plan, range(len(plan))), 4)
        owners = {}
        for worker_id, group in enumerate(assignments):
            for batch in group:
                owners.setdefault(batch.shard_key, set()).add(worker_id)
        assert all(len(workers) == 1 for workers in owners.values())

    def test_longest_first_ordering_uses_hints(self):
        memory = HintMemory()
        cell_a = Cell(mode="full", engine="pandas", dataset="athlete")
        cell_b = Cell(mode="full", engine="pandas", dataset="taxi")
        memory.record(cell_a, 0.5)
        memory.record(cell_b, 4.0)
        assert memory.lookup(cell_a) == 0.5
        assert memory.lookup(
            Cell(mode="full", engine="pandas", dataset="athlete", runs=9)) == 0.5
        session = _fresh_session()
        plan = session.plan("full", lazy="both")
        import repro.sweep.workers as workers_mod
        original = workers_mod.hint_memory
        workers_mod.hint_memory = memory
        try:
            batches = build_batches(plan, range(len(plan)))
        finally:
            workers_mod.hint_memory = original
        assignments = assign_shards(batches, 1)
        hints = [batch.seconds_hint for batch in assignments[0]]
        assert hints == sorted(hints, reverse=True)
        assert assignments[0][0].key[0] == "taxi"  # the 4.0s hints lead

    def test_default_hint_when_nothing_is_known(self):
        session = _fresh_session()
        plan = session.plan("full", engines=["duckdb"], datasets=["athlete"],
                            lazy=False)
        batches = build_batches(plan, range(len(plan)))
        assert all(t.seconds_hint == DEFAULT_SECONDS_HINT
                   for b in batches for t in b.tasks)


# --------------------------------------------------------------------------- #
# the profiler and the stats split
# --------------------------------------------------------------------------- #
class TestProfiler:
    def test_stats_split_and_summary(self):
        session = _fresh_session()
        session.run("full", workers=2, executor="process")
        stats = session.last_sweep
        assert stats.batches > 0
        assert stats.execute_seconds > 0
        assert stats.overhead_seconds == (stats.serialize_seconds
                                          + stats.setup_seconds)
        summary = stats.summary()
        assert "executing" in summary and "overhead" in summary
        assert f"{stats.batches} batches" in summary
        assert "worker(s)" in summary  # the historical fields survive
        doc = stats.to_dict()
        for key in ("serialize_seconds", "setup_seconds", "execute_seconds",
                    "batches", "executed", "wall_seconds"):
            assert key in doc
        json.dumps(doc)  # emitted by --stats-out and the bench: JSON-safe

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_profile_records_one_entry_per_executed_cell(self, executor):
        session = _fresh_session()
        session.run("full", workers=2, executor=executor, profile=True)
        stats = session.last_sweep
        assert len(stats.profile) == stats.executed
        for record in stats.profile:
            for key in ("cell", "dispatch", "serialize", "setup", "execute",
                        "cache"):
                assert key in record
        table = stats.profile_table()
        assert "execute" in table and "total" in table
        assert len(table.splitlines()) == stats.executed + 4

    def test_sequential_profile_has_records_too(self):
        session = _fresh_session()
        session.run("full", workers=1, profile=True)
        stats = session.last_sweep
        assert len(stats.profile) == stats.executed > 0

    def test_empty_profile_renders_placeholder(self):
        from repro.sweep import SweepStats

        assert "profile=True" in SweepStats().profile_table()


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestCLIFlags:
    def test_profile_and_stats_out(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        stats_path = tmp_path / "stats.json"
        code = cli_main(["--scale", "0.05", "--runs", "1",
                         "--datasets", "athlete",
                         "--engines", "pandas,polars",
                         "--jobs", "2", "--executor", "process",
                         "--cache-dir", str(tmp_path / "cache"),
                         "--profile", "--stats-out", str(stats_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep profile" in out
        doc = json.loads(stats_path.read_text())
        assert doc["executed"] > 0
        assert doc["batches"] > 0
        assert "execute_seconds" in doc and "serialize_seconds" in doc
