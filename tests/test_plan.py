"""Tests for the lazy plan layer: builder, optimizer rules, executor."""

import pytest

from repro.frame import DataFrame, col, lit
from repro.plan import (
    FileScan,
    Filter,
    LazyFrame,
    Optimizer,
    OptimizerSettings,
    Project,
    Scan,
    explain,
)
from repro.plan.optimizer import _plan_columns
from repro.frame.errors import PlanError


@pytest.fixture
def frame():
    return DataFrame({
        "a": list(range(20)),
        "b": ["x", "y"] * 10,
        "c": [float(i) * 0.5 for i in range(20)],
        "unused": ["junk"] * 20,
    })


class TestLazyFrameBuilder:
    def test_collect_identity(self, frame):
        assert LazyFrame.from_frame(frame).collect().equals(frame)

    def test_filter_and_select(self, frame):
        out = (LazyFrame.from_frame(frame)
               .filter(col("a") >= 10)
               .select(["a", "b"])
               .collect())
        assert out.num_rows == 10 and out.columns == ["a", "b"]

    def test_with_column_and_sort(self, frame):
        out = (LazyFrame.from_frame(frame)
               .with_column("a2", col("a") * 2)
               .sort("a", ascending=False)
               .collect())
        assert out["a2"].to_list()[0] == 38

    def test_group_agg(self, frame):
        out = LazyFrame.from_frame(frame).group_agg("b", {"c": "sum"}).collect()
        assert out.num_rows == 2

    def test_join(self, frame):
        right = DataFrame({"b": ["x", "y"], "w": [1, 2]})
        out = LazyFrame.from_frame(frame).join(right, on="b").collect()
        assert "w" in out.columns and out.num_rows == 20

    def test_distinct_dropnulls_fillnulls_limit(self, frame):
        out = (LazyFrame.from_frame(frame)
               .distinct(subset=["b"])
               .fill_nulls(0)
               .drop_nulls()
               .limit(1)
               .collect())
        assert out.num_rows == 1

    def test_drop_and_map_frame(self, frame):
        out = (LazyFrame.from_frame(frame)
               .drop("unused")
               .map_frame(lambda f: f.head(3), label="head")
               .collect())
        assert out.num_rows == 3 and "unused" not in out.columns

    def test_join_requires_keys(self, frame):
        with pytest.raises(ValueError):
            LazyFrame.from_frame(frame).join(frame)

    def test_explain_lists_operators(self, frame):
        text = LazyFrame.from_frame(frame).filter(col("a") > 3).explain()
        assert "filter" in text and "scan" in text


class TestOptimizerRules:
    def _plan(self, frame):
        return (LazyFrame.from_frame(frame)
                .with_column("derived", col("a") + 1)
                .filter(col("a") > 5)
                .filter(col("b") == "x")
                .group_agg("b", {"c": "mean"}))

    def test_filter_fusion_merges_adjacent_filters(self, frame):
        optimized = Optimizer(OptimizerSettings(projection_pushdown=False,
                                                predicate_pushdown=False)).optimize(
            self._plan(frame).plan)
        text = explain(optimized)
        assert text.count("filter") == 1 and "&" in text

    def test_predicate_pushdown_moves_filter_below_with_column(self, frame):
        optimized = Optimizer(OptimizerSettings(projection_pushdown=False)).optimize(
            self._plan(frame).plan)
        text = explain(optimized).splitlines()
        filter_depth = next(i for i, line in enumerate(text) if "filter" in line)
        derived_depth = next(i for i, line in enumerate(text) if "with_column" in line)
        assert filter_depth > derived_depth  # filter sits *below* the projection of derived

    def test_projection_pushdown_prunes_unused_columns(self, frame):
        optimized = Optimizer().optimize(self._plan(frame).plan)
        text = explain(optimized)
        assert "unused" not in text

    def test_filter_not_pushed_when_depending_on_derived_column(self, frame):
        plan = (LazyFrame.from_frame(frame)
                .with_column("derived", col("a") + 1)
                .filter(col("derived") > 3).plan)
        optimized = Optimizer().optimize(plan)
        lines = explain(optimized).splitlines()
        assert "filter" in lines[0]

    def test_filter_pushdown_into_join_left_side(self, frame):
        right = DataFrame({"b": ["x", "y"], "w": [1, 2]})
        plan = (LazyFrame.from_frame(frame)
                .join(right, on="b")
                .filter(col("a") > 10).plan)
        optimized = Optimizer().optimize(plan)
        text = explain(optimized).splitlines()
        join_line = next(i for i, line in enumerate(text) if "join" in line)
        filter_line = next(i for i, line in enumerate(text) if "filter" in line)
        assert filter_line > join_line

    def test_all_disabled_is_identity(self, frame):
        plan = self._plan(frame).plan
        optimized = Optimizer(OptimizerSettings.all_disabled()).optimize(plan)
        assert explain(optimized) == explain(plan)

    def test_all_disabled_covers_every_flag(self):
        import dataclasses

        settings = OptimizerSettings.all_disabled()
        # constructed by keyword: every flag — including ones added after the
        # method was written — must come out False
        assert all(not getattr(settings, f.name)
                   for f in dataclasses.fields(OptimizerSettings))

    @pytest.mark.parametrize("settings", [
        OptimizerSettings(),
        OptimizerSettings(projection_pushdown=False),
        OptimizerSettings(predicate_pushdown=False),
        OptimizerSettings(filter_fusion=False),
        OptimizerSettings.all_disabled(),
    ])
    def test_optimization_preserves_results(self, frame, settings):
        lazy = self._plan(frame)
        optimized = lazy.collect(settings)
        baseline = lazy.collect(optimize_plan=False)
        assert optimized.equals(baseline)

    def test_optimized_plan_touches_fewer_cells(self, frame):
        lazy = self._plan(frame)
        _, optimized_stats = lazy.collect_with_stats()
        _, raw_stats = lazy.collect_with_stats(optimize_plan=False)
        assert optimized_stats.total_cells < raw_stats.total_cells

    def test_plan_columns_helper(self, frame):
        plan = self._plan(frame).plan
        assert _plan_columns(plan) == {"b", "c"}
        assert _plan_columns(FileScan("x.csv")) is None


class TestExecutor:
    def test_execution_stats_record_operators(self, frame):
        _, stats = (LazyFrame.from_frame(frame)
                    .filter(col("a") > 5)
                    .group_agg("b", {"c": "sum"})
                    .collect_with_stats())
        operators = {op.operator for op in stats.operators}
        assert {"scan", "filter", "groupby"} <= operators
        assert stats.total_rows > 0
        assert stats.by_operator()["filter"] > 0

    def test_filescan_requires_reader(self):
        with pytest.raises(PlanError):
            LazyFrame(FileScan("missing.csv")).collect()

    def test_filescan_uses_injected_reader(self, frame, tmp_path):
        from repro.io import write_csv

        path = tmp_path / "t.csv"
        write_csv(frame, path)
        out = LazyFrame.from_file(str(path)).collect(
            file_reader=lambda p, fmt, cols: __import__("repro.io", fromlist=["read_csv"]).read_csv(p, columns=cols))
        assert out.num_rows == frame.num_rows

    def test_scan_projection_applied(self, frame):
        plan = Project(Scan(frame), ("a",))
        out, _ = LazyFrame(plan).collect_with_stats()
        assert out.columns == ["a"]

    def test_unknown_node_rejected(self):
        class Bogus:
            def children(self):
                return []

        with pytest.raises(PlanError):
            from repro.plan.executor import Executor

            Executor(optimize_plan=False).execute(Bogus())  # type: ignore[arg-type]

    def test_filter_on_scan_with_projection(self, frame):
        plan = Filter(Scan(frame, projected=("a", "b")), col("a") > 3)
        out, _ = LazyFrame(plan).collect_with_stats()
        assert set(out.columns) == {"a", "b"}
