"""Tests for string kernels, datetime helpers and the expression AST."""

import pytest

from repro.frame import Column, DataFrame, col, lit
from repro.frame import strings as string_ops
from repro.frame.datetimes import (
    NS_PER_DAY,
    date_to_ns,
    extract_component,
    format_datetime_column,
    ns_to_datetime,
    parse_datetime_column,
    parse_datetime_scalar,
)
from repro.frame.errors import DTypeError, ExpressionError
from repro.frame.expressions import ensure_boolean


class TestStringKernels:
    def test_contains_regex(self):
        out = string_ops.contains(Column.from_values(["apple", "banana", None]), "an")
        assert out.to_list() == [False, True, None]

    def test_contains_literal_case_insensitive(self):
        out = string_ops.contains(Column.from_values(["Apple"]), "APP", regex=False, case=False)
        assert out.to_list() == [True]

    def test_match_like(self):
        out = string_ops.match_like(Column.from_values(["PROMO BRUSHED", "STANDARD"]), "PROMO%")
        assert out.to_list() == [True, False]

    def test_startswith_endswith(self):
        col_ = Column.from_values(["abc", "xbc"])
        assert string_ops.startswith(col_, "a").to_list() == [True, False]
        assert string_ops.endswith(col_, "bc").to_list() == [True, True]

    def test_set_case_modes(self):
        col_ = Column.from_values(["Hello World"])
        assert string_ops.set_case(col_, "upper").to_list() == ["HELLO WORLD"]
        assert string_ops.set_case(col_, "lower").to_list() == ["hello world"]
        assert string_ops.set_case(col_, "title").to_list() == ["Hello World"]

    def test_set_case_unknown_mode(self):
        with pytest.raises(ValueError):
            string_ops.set_case(Column.from_values(["a"]), "shouty")

    def test_strip_and_replace_substring(self):
        col_ = Column.from_values(["  pad  ", "a-b"])
        assert string_ops.strip(col_).to_list()[0] == "pad"
        assert string_ops.replace_substring(col_, "-", "_").to_list()[1] == "a_b"

    def test_str_length(self):
        assert string_ops.str_length(Column.from_values(["ab", None])).to_list() == [2, None]

    def test_extract_regex(self):
        out = string_ops.extract_regex(Column.from_values(["x=12", "y=?"]), r"\d+")
        assert out.to_list() == ["12", None]

    def test_concat_strings(self):
        out = string_ops.concat_strings(Column.from_values(["a", None]),
                                        Column.from_values(["b", "c"]), separator="-")
        assert out.to_list() == ["a-b", None]

    def test_requires_string_column(self):
        with pytest.raises(DTypeError):
            string_ops.contains(Column.from_values([1, 2]), "x")


class TestDatetimes:
    def test_parse_scalar_formats(self):
        assert parse_datetime_scalar("2015-03-01") == date_to_ns(2015, 3, 1)
        assert parse_datetime_scalar("2015-03-01 12:00:00") is not None
        assert parse_datetime_scalar("03/01/2015") is not None
        assert parse_datetime_scalar("not a date") is None

    def test_roundtrip_ns(self):
        ns = date_to_ns(2016, 7, 4, 13, 30)
        assert ns_to_datetime(ns).year == 2016

    def test_parse_column_marks_bad_values_null(self):
        out = parse_datetime_column(Column.from_values(["2015-01-01", "garbage", None]))
        assert out.null_count() == 2

    def test_format_column(self):
        parsed = parse_datetime_column(Column.from_values(["2015-01-31"]))
        assert format_datetime_column(parsed, "%d/%m/%Y").to_list() == ["31/01/2015"]

    def test_extract_components(self):
        parsed = parse_datetime_column(Column.from_values(["2015-06-15"]))
        assert extract_component(parsed, "year").to_list() == [2015]
        assert extract_component(parsed, "month").to_list() == [6]
        assert extract_component(parsed, "day").to_list() == [15]

    def test_extract_unknown_component(self):
        with pytest.raises(ValueError):
            extract_component(Column.from_values(["2015-06-15"]), "fortnight")

    def test_ns_per_day_consistency(self):
        assert date_to_ns(2015, 1, 2) - date_to_ns(2015, 1, 1) == NS_PER_DAY


class TestExpressions:
    @pytest.fixture
    def frame(self):
        return DataFrame({"a": [1, 2, 3, 4], "b": [10.0, 20.0, 30.0, None],
                          "s": ["foo", "bar", "foobar", None],
                          "d": ["2015-01-01", "2016-01-01", "2017-06-01", "2018-01-01"]})

    def test_arithmetic(self, frame):
        out = (col("a") * 2 + col("b")).evaluate(frame)
        assert out.to_list() == [12.0, 24.0, 36.0, None]

    def test_comparison_and_boolean(self, frame):
        expr = (col("a") > 1) & (col("b") < 30.0)
        assert expr.evaluate(frame).to_list() == [False, True, False, False]

    def test_or_and_not(self, frame):
        expr = (col("a") == 1) | ~(col("a") < 4)
        assert expr.evaluate(frame).to_list() == [True, False, False, True]

    def test_null_checks(self, frame):
        assert col("b").is_null().evaluate(frame).to_list() == [False, False, False, True]
        assert col("b").not_null().evaluate(frame).to_list() == [True, True, True, False]

    def test_is_in_and_between(self, frame):
        assert col("a").is_in([2, 4]).evaluate(frame).to_list() == [False, True, False, True]
        assert col("a").between(2, 3).evaluate(frame).to_list() == [False, True, True, False]

    def test_string_predicates(self, frame):
        assert col("s").str_contains("^foo").evaluate(frame).to_list() == [True, False, True, None]
        assert col("s").str_startswith("foo").evaluate(frame).to_list() == [True, False, True, None]
        assert col("s").str_like("%bar").evaluate(frame).to_list() == [False, True, True, None]

    def test_date_component(self, frame):
        out = col("d").dt_component("year").evaluate(frame)
        assert out.to_list() == [2015, 2016, 2017, 2018]

    def test_apply_and_alias(self, frame):
        expr = col("a").apply(lambda v: v * 100).alias("scaled")
        assert expr.name == "scaled"
        assert expr.evaluate(frame).to_list() == [100, 200, 300, 400]

    def test_columns_tracking(self):
        expr = (col("x") + col("y")) > lit(3)
        assert expr.columns() == {"x", "y"}

    def test_describe_renders(self):
        assert "col(x)" in ((col("x") > 3).describe())

    def test_literal_broadcast(self, frame):
        assert lit(7).evaluate(frame).to_list() == [7, 7, 7, 7]

    def test_ensure_boolean_rejects_numeric(self, frame):
        with pytest.raises(ExpressionError):
            ensure_boolean((col("a") + 1).evaluate(frame))

    def test_unknown_operator_rejected(self):
        from repro.frame.expressions import BinaryOp

        with pytest.raises(ExpressionError):
            BinaryOp("%%", col("a"), lit(1))
