"""Distributed sweeps: framing, sharding, the coordinator/worker protocol.

Covers the PR's acceptance criteria: ``Session.run(hosts=2)`` produces a
``ResultSet`` bit-identical to the sequential run; an idle host steals cells
from the slowest shard; a severed coordinator↔host link (the ``drop`` fault)
reassigns the lost host's cells and still completes bit-identically with
zero quarantines; and the shared ``SweepCache`` stays consistent when two
*processes* hammer the same cell concurrently.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import struct
import threading

import pytest

from repro import ExperimentConfig, Session, SweepCache
from repro.results import Measurement
from repro.sweep import Cell
from repro.sweep.distributed import (
    ConnectionClosed,
    HostWorker,
    ProtocolError,
    RunSpec,
    SweepCoordinator,
    assign_host_shards,
    recv_frame,
    send_frame,
)
from repro.testing.faults import FaultPlan, clear_fault_plan, install_fault_plan

_CONFIG = ExperimentConfig(scale=0.02, runs=1, datasets=["athlete"],
                           engines=["pandas", "polars"])


@pytest.fixture(scope="module")
def session() -> Session:
    return Session(_CONFIG).warm()


@pytest.fixture(scope="module")
def sequential(session) -> "list[dict]":
    return [m.to_dict() for m in session.run(mode="full", cache=False)]


# --------------------------------------------------------------------------- #
# wire framing
# --------------------------------------------------------------------------- #
class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            payload = {"type": "result", "cell_id": "ab" * 12,
                       "measurements": [{"seconds": 0.25}], "nested": {"x": [1, 2]}}
            send_frame(a, payload)
            send_frame(a, {"type": "heartbeat"})
            assert recv_frame(b) == payload
            assert recv_frame(b) == {"type": "heartbeat"}
        finally:
            a.close()
            b.close()

    def test_eof_raises_connection_closed(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(ConnectionClosed):
                recv_frame(b)
        finally:
            b.close()

    def test_eof_mid_frame_raises_connection_closed(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 100) + b'{"type":')  # truncated
            a.close()
            with pytest.raises(ConnectionClosed):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 2 ** 31))  # claims a 2 GiB frame
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_untyped_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            data = json.dumps([1, 2, 3]).encode()
            a.sendall(struct.pack(">I", len(data)) + data)
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()


# --------------------------------------------------------------------------- #
# content-hash sharding
# --------------------------------------------------------------------------- #
class TestHostSharding:
    def test_backlogs_partition_pending_exactly(self, session):
        plan = session.plan("full")
        pending = list(range(len(plan)))
        backlogs = assign_host_shards(plan, pending, hosts=3)
        flat = sorted(index for backlog in backlogs for index in backlog)
        assert flat == pending
        assert assign_host_shards(plan, pending, hosts=3) == backlogs

    def test_placement_is_content_hash_stable(self, session):
        # a cell's host does not depend on which other cells are pending —
        # that is what makes shards stable under resume
        plan = session.plan("full")
        full = assign_host_shards(plan, range(len(plan)), hosts=2)
        owner = {index: host for host, backlog in enumerate(full)
                 for index in backlog}
        subset = [i for i in range(len(plan)) if i % 2 == 0]
        for host, backlog in enumerate(assign_host_shards(plan, subset, hosts=2)):
            for index in backlog:
                assert owner[index] == host

    def test_backlogs_are_longest_first(self, session, tmp_path):
        plan = session.plan("full")
        cache = SweepCache(tmp_path)
        session.run(mode="full", cache=cache)  # record per-cell hints
        backlogs = assign_host_shards(plan, range(len(plan)), hosts=2,
                                      cache=cache)
        for backlog in backlogs:
            hints = [cache.seconds_hint(plan[i].cell) for i in backlog]
            assert hints == sorted(hints, reverse=True)

    def test_zero_hosts_rejected(self, session):
        with pytest.raises(ValueError):
            assign_host_shards(session.plan("full"), [], hosts=0)


# --------------------------------------------------------------------------- #
# the wire spec rebuilds identical plans
# --------------------------------------------------------------------------- #
class TestRunSpec:
    def test_config_wire_round_trip(self):
        wire = RunSpec.config_to_wire(_CONFIG)
        assert RunSpec.config_from_wire(json.loads(json.dumps(wire))) == _CONFIG

    def test_host_rebuilds_identical_cell_ids(self, session):
        spec = RunSpec(config=RunSpec.config_to_wire(_CONFIG),
                       plan_kwargs={"mode": "full", "engines": ["pandas"],
                                    "lazy": "both"})
        spec = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        rebuilt = spec.build_plan(spec.build_session())
        local = session.plan("full", engines=["pandas"], lazy="both")
        assert [p.cell.cell_id for p in rebuilt] == [p.cell.cell_id for p in local]

    def test_fault_plan_round_trip(self):
        plan = FaultPlan.from_spec("kill:1,drop:2", seed=9)
        spec = RunSpec(config={}, plan_kwargs={},
                       faults=RunSpec.faults_to_wire(plan))
        rebuilt = spec.fault_plan()
        rebuilt.bind(["a" * 24, "b" * 24, "c" * 24, "d" * 24])
        plan.bind(["a" * 24, "b" * 24, "c" * 24, "d" * 24])
        assert rebuilt.targets == plan.targets


# --------------------------------------------------------------------------- #
# end-to-end: coordinator + worker-host agents
# --------------------------------------------------------------------------- #
class TestDistributedRun:
    def test_hosts2_bit_identical_to_sequential(self, sequential):
        session = Session(_CONFIG)
        results = session.run(mode="full", cache=False, hosts=2)
        assert [m.to_dict() for m in results] == sequential
        stats = session.last_sweep
        assert stats.hosts == 2
        assert stats.executor == "distributed"
        assert stats.executed == stats.total and stats.total > 0
        assert len(stats.distributed) == 2
        assert sum(record["executed"] for record in stats.distributed) == stats.total

    def test_shared_cache_resumes_across_fleets(self, sequential, tmp_path):
        cache = SweepCache(tmp_path)
        first = Session(_CONFIG)
        first.run(mode="full", cache=cache, hosts=2)
        assert first.last_sweep.executed > 0
        second = Session(_CONFIG)
        results = second.run(mode="full", cache=cache, hosts=2)
        assert [m.to_dict() for m in results] == sequential
        assert second.last_sweep.executed == 0
        assert second.last_sweep.cached == second.last_sweep.total

    def test_idle_host_steals_from_slowest_shard(self, session, sequential):
        # two shards, one connected host: it must drain its own backlog and
        # then steal the other shard's cells instead of idling
        plan = session.plan("full")
        spec = RunSpec(config=RunSpec.config_to_wire(_CONFIG),
                       plan_kwargs={"mode": "full"})
        coordinator = SweepCoordinator(plan, spec=spec, hosts=2)
        host, port = coordinator.start()
        worker = HostWorker(host, port, jobs=1, name="solo")
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        results = coordinator.run()
        thread.join(timeout=30)
        assert [m.to_dict() for m in results] == sequential
        assert coordinator.stats.stolen >= 1
        assert coordinator.stats.hosts == 1
        record = coordinator.stats.distributed[0]
        assert record["host"] == "solo" and record["stolen"] >= 1

    def test_profile_records_carry_host_names(self, session):
        fresh = Session(_CONFIG)
        fresh.run(mode="full", cache=False, hosts=2, profile=True)
        stats = fresh.last_sweep
        assert stats.profile and all("host" in record for record in stats.profile)
        assert stats.distributed_table()

    def test_tpch_mode_rejects_hosts(self, session):
        with pytest.raises(ValueError, match="hosts"):
            session.run(mode="tpch", hosts=2)


# --------------------------------------------------------------------------- #
# chaos: a severed link mid-sweep heals bit-identically
# --------------------------------------------------------------------------- #
class TestConnectionDrop:
    def test_dropped_host_reassigns_and_heals(self, sequential):
        plan = FaultPlan.from_spec("drop:1", seed=7)
        install_fault_plan(plan)
        try:
            session = Session(_CONFIG)
            results = session.run(mode="full", cache=False, hosts=2, retry=2)
        finally:
            clear_fault_plan()
        assert [m.to_dict() for m in results] == sequential
        stats = session.last_sweep
        assert stats.hosts_lost == 1
        assert stats.reassigned >= 1
        assert stats.quarantined == 0
        assert any(record["lost"] for record in stats.distributed)

    def test_host_loss_without_retry_fails_fast(self):
        plan = FaultPlan.from_spec("drop:1", seed=7)
        install_fault_plan(plan)
        try:
            with pytest.raises(Exception, match="lost"):
                Session(_CONFIG).run(mode="full", cache=False, hosts=2)
        finally:
            clear_fault_plan()


# --------------------------------------------------------------------------- #
# multi-process cache contention (the substrate stealing relies on)
# --------------------------------------------------------------------------- #
def _hammer_cache_process(root: str, cell_wire: dict, measurement_wires: list,
                          rounds: int, barrier, failures) -> None:
    cache = SweepCache(root)
    cell = Cell.from_dict(cell_wire)
    measurements = [Measurement.from_dict(m) for m in measurement_wires]
    barrier.wait()
    for _ in range(rounds):
        cache.store(cell, measurements)
        hit = cache.load(cell)
        if hit is None:
            continue  # lost the race to a concurrent rename: a clean miss
        if [m.to_dict() for m in hit] != measurement_wires:
            failures.put("torn read: loaded entry differs from what was stored")
    if cache.stores != rounds:
        failures.put(f"stores counter drifted: {cache.stores} != {rounds}")


class TestMultiProcessCacheContention:
    def test_two_processes_one_cell_exactly_one_entry(self, session, tmp_path):
        planned = session.plan("full", engines=["pandas"])[0]
        measurements = planned.execute()
        wires = [m.to_dict() for m in measurements]
        rounds = 25
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        failures = ctx.Queue()
        procs = [ctx.Process(target=_hammer_cache_process,
                             args=(str(tmp_path), planned.cell.to_dict(),
                                   wires, rounds, barrier, failures))
                 for _ in range(2)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        assert failures.empty(), failures.get()

        # exactly one committed entry, no quarantined or leftover files
        cache = SweepCache(tmp_path)
        assert len(cache) == 1
        assert not list(tmp_path.rglob("*.corrupt"))
        assert not list(tmp_path.rglob("*.tmp"))
        hit = cache.load(planned.cell)
        assert hit is not None
        assert [m.to_dict() for m in hit] == wires
        stats = cache.stats()
        assert stats["corrupt"] == 0
        assert stats["hits"] == 1 and stats["misses"] == 0
