"""Fault tolerance: injection harness, retry policy, crash recovery, cache
integrity.

The contract everything here defends: under injected worker kills, transient
engine errors, hangs and cache corruption, a sweep with a retry policy still
terminates with exit-clean state — every *successful* measurement bit-identical
to a fault-free sequential run, every exhausted cell quarantined as a
deterministic error-status measurement, and zero leaked shared-memory
segments.
"""

import dataclasses
import glob
import time

import pytest

from repro import ExperimentConfig, Session
from repro.frame.sharing import SEGMENT_PREFIX
from repro.results import Measurement
from repro.sweep import RetryPolicy, SweepCache, entry_checksum
from repro.sweep.cells import Cell
from repro.sweep.resilience import (CellTimeoutError, execute_with_retry,
                                    quarantine_measurement)
from repro.testing.faults import (FAULT_KINDS, FaultPlan, TransientFaultError,
                                  clear_fault_plan, install_fault_plan,
                                  parse_fault_spec)

_CONFIG = ExperimentConfig(scale=0.05, runs=1, datasets=["athlete", "taxi"],
                           engines=["pandas", "polars", "duckdb", "vaex"])


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """Every test leaves the process-wide fault plan cleared."""
    clear_fault_plan()
    yield
    clear_fault_plan()


@pytest.fixture(autouse=True, scope="module")
def _restore_hint_memory():
    """Sweeps here must not leak wall-clock hints into later test modules."""
    from repro.sweep.workers import hint_memory

    before = dict(hint_memory._seconds)
    yield
    with hint_memory._lock:
        hint_memory._seconds.clear()
        hint_memory._seconds.update(before)


@pytest.fixture(scope="module")
def baseline() -> "list[dict]":
    """Fault-free sequential reference run (bit-identity oracle)."""
    session = Session(_CONFIG)
    return [m.to_dict() for m in session.run("full", workers=1, cache=False)]


def _leaked_segments() -> "list[str]":
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


def _cell(suffix: str = "a") -> Cell:
    return Cell(mode="full", engine="pandas", dataset=f"athlete-{suffix}",
                pipeline="p1", machine="paper-server", scale=0.05, runs=1,
                seed=7, fingerprint="test")


# --------------------------------------------------------------------------- #
# the injection harness itself
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_parse_spec(self):
        assert parse_fault_spec("kill:1,flaky:2,corrupt:1") == {
            "kill": 1, "flaky": 2, "hang": 0, "corrupt": 1, "drop": 0}
        # bare kind means one; aliases normalize
        assert parse_fault_spec("sigkill,transient:3,disconnect") == {
            "kill": 1, "flaky": 3, "hang": 0, "corrupt": 0, "drop": 1}
        assert parse_fault_spec("") == dict.fromkeys(FAULT_KINDS, 0)

    @pytest.mark.parametrize("bad", ["meteor:1", "kill:x", "flaky:-1"])
    def test_parse_spec_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_bind_is_deterministic_and_disjoint(self):
        ids = [f"cell-{i:03d}" for i in range(40)]
        plan_a = FaultPlan(seed=13, kills=2, flaky=3, hangs=1, corrupt=2).bind(ids)
        plan_b = FaultPlan(seed=13, kills=2, flaky=3, hangs=1, corrupt=2).bind(
            list(reversed(ids)))  # input order must not matter
        assert plan_a.targets == plan_b.targets
        all_targets = [cid for kind in FAULT_KINDS for cid in plan_a.targets[kind]]
        assert len(all_targets) == len(set(all_targets)) == 8
        different = FaultPlan(seed=14, kills=2, flaky=3, hangs=1, corrupt=2).bind(ids)
        assert different.targets != plan_a.targets

    def test_no_plan_installed_is_a_no_op(self):
        from repro.testing.faults import fault_point

        fault_point("execute_cell", cell_id="whatever", attempt=1)  # no raise

    def test_flaky_fires_only_on_leading_attempts(self):
        plan = FaultPlan(seed=1, flaky=1).bind(["only-cell"])
        with pytest.raises(TransientFaultError):
            plan.fire("execute_cell", cell_id="only-cell", attempt=1)
        plan.fire("execute_cell", cell_id="only-cell", attempt=2)  # recovered


# --------------------------------------------------------------------------- #
# retry policy and quarantine records
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_backoff_is_deterministic_bounded_and_jittered(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_multiplier=2.0,
                             backoff_max=1.0, jitter=0.25)
        a1 = policy.backoff_seconds("cell-a", 1)
        assert a1 == policy.backoff_seconds("cell-a", 1)  # pure function
        assert a1 != policy.backoff_seconds("cell-b", 1)  # per-cell jitter
        assert 0.075 <= a1 <= 0.1  # base minus up to 25% jitter
        assert policy.backoff_seconds("cell-a", 10) <= 1.0  # capped

    def test_from_retries(self):
        assert RetryPolicy.from_retries(2).max_attempts == 3
        assert RetryPolicy.from_retries(0).max_attempts == 1

    def test_execute_with_retry_recovers(self):
        calls = []

        def thunk(attempt=1):
            calls.append(attempt)
            if attempt < 3:
                raise TransientFaultError(f"attempt {attempt}")
            return ["done"]

        result, attempts, seconds, error = execute_with_retry(
            thunk, _cell(), RetryPolicy.from_retries(3), sleep=lambda _s: None)
        assert (result, attempts, error) == (["done"], 3, None)
        assert calls == [1, 2, 3]

    def test_execute_with_retry_exhausts_to_quarantine(self):
        def thunk(attempt=1):
            raise TransientFaultError("always")

        cell = _cell()
        result, attempts, _seconds, error = execute_with_retry(
            thunk, cell, RetryPolicy.from_retries(1), sleep=lambda _s: None)
        assert attempts == 2 and isinstance(error, TransientFaultError)
        (record,) = result
        assert record.failed and record.status == "error"
        assert record.attempts == 2
        assert "quarantined after 2 attempt(s)" in record.failure_reason

    def test_cell_timeout_counts_as_failed_attempt(self):
        def slow(attempt=1):
            if attempt == 1:
                time.sleep(5)
            return ["fast enough"]

        policy = dataclasses.replace(RetryPolicy.from_retries(1),
                                     cell_timeout=0.1)
        result, attempts, _seconds, error = execute_with_retry(
            slow, _cell(), policy, sleep=lambda _s: None)
        assert (result, attempts, error) == (["fast enough"], 2, None)

        policy = dataclasses.replace(RetryPolicy.from_retries(0),
                                     cell_timeout=0.05)
        result, attempts, _seconds, error = execute_with_retry(
            lambda attempt=1: time.sleep(5), _cell(), policy,
            sleep=lambda _s: None)
        assert isinstance(error, CellTimeoutError)
        assert result[0].status == "error"

    def test_quarantine_measurement_shape(self):
        cell = _cell()
        record = quarantine_measurement(cell, ValueError("boom"), 3)
        assert isinstance(record, Measurement)
        assert (record.engine, record.dataset) == (cell.engine, cell.dataset)
        assert record.failed and record.status == "error" and record.attempts == 3
        assert record.error == "boom"
        # round-trips through the serialization layer like any measurement
        assert Measurement.from_dict(record.to_dict()) == record


# --------------------------------------------------------------------------- #
# cache integrity: checksums and corrupt-entry quarantine
# --------------------------------------------------------------------------- #
class TestCacheIntegrity:
    def test_checksum_survives_write_parse_round_trip(self, tmp_path):
        import json

        cache = SweepCache(tmp_path)
        cell = _cell()
        path = cache.store(cell, [quarantine_measurement(cell, ValueError("x"), 1)])
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["checksum"] == entry_checksum(payload)

    def test_corrupt_entry_is_miss_and_quarantined(self, tmp_path):
        from repro.testing.faults import _corrupt_file

        cache = SweepCache(tmp_path)
        cell = _cell()
        stored = [Measurement(engine="pandas", dataset=cell.dataset,
                              pipeline="p1", mode="full", seconds=1.25)]
        path = cache.store(cell, stored)
        assert cache.load(cell) == stored  # sanity: intact entry hits

        _corrupt_file(path)
        assert cache.load(cell) is None
        assert not path.exists()  # moved aside, never consulted again
        assert path.with_suffix(".corrupt").exists()
        assert cache.stats()["corrupt"] == 1
        # the slot is now a plain miss: a re-store heals it
        cache.store(cell, stored)
        assert cache.load(cell) == stored

    def test_checksum_mismatch_with_valid_json_is_quarantined(self, tmp_path):
        import json

        cache = SweepCache(tmp_path)
        cell = _cell()
        path = cache.store(cell, [Measurement(engine="pandas",
                                              dataset=cell.dataset,
                                              pipeline="p1", mode="full",
                                              seconds=1.0)])
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["measurements"][0]["seconds"] = 99.0  # tampered, checksum stale
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load(cell) is None
        assert path.with_suffix(".corrupt").exists()

    def test_corrupt_injection_during_sweep_self_heals(self, tmp_path):
        session = Session(_CONFIG)
        cache = SweepCache(tmp_path)
        install_fault_plan(FaultPlan(seed=7, corrupt=2))
        try:
            faulted = session.run("full", workers=1, cache=cache)
        finally:
            clear_fault_plan()
        # the corrupted entries are found (and healed) on the resume pass
        session2 = Session(_CONFIG)
        resumed = session2.run("full", workers=1, cache=cache)
        assert cache.stats()["corrupt"] == 2
        assert [m.to_dict() for m in resumed] == [m.to_dict() for m in faulted]


# --------------------------------------------------------------------------- #
# end-to-end: sweeps under injected faults
# --------------------------------------------------------------------------- #
class TestChaosSweeps:
    def test_sequential_flaky_run_matches_fault_free(self, baseline):
        install_fault_plan(FaultPlan(seed=7, flaky=3))
        session = Session(_CONFIG)
        results = session.run("full", workers=1, cache=False,
                              retry=RetryPolicy.from_retries(2))
        stats = session.last_sweep
        assert [m.to_dict() for m in results] == baseline
        assert stats.retries == 3 and stats.recovered == 3
        assert stats.quarantined == 0

    def test_exhausted_cells_quarantine_deterministically(self, baseline, tmp_path):
        # flaky targets that never stop failing exhaust the retry budget
        plan = FaultPlan(seed=7, flaky=2, flaky_attempts=99)
        install_fault_plan(plan)
        cache = SweepCache(tmp_path)
        session = Session(_CONFIG)
        results = session.run("full", workers=1, cache=cache,
                              retry=RetryPolicy.from_retries(1))
        stats = session.last_sweep
        assert stats.quarantined == 2
        bad = [m for m in results if m.status == "error"]
        assert all(m.failed and m.attempts == 2 for m in bad)
        # exactly the plan's flaky targets, predicted up front
        by_id = {planned.cell.cell_id: planned.cell
                 for planned in Session(_CONFIG).plan("full")}
        quarantined_keys = {(m.engine, m.dataset, m.pipeline) for m in bad}
        target_keys = {(by_id[cid].engine, by_id[cid].dataset, by_id[cid].pipeline)
                       for cid in plan.targets["flaky"]}
        assert quarantined_keys == target_keys
        # successful cells stayed bit-identical; quarantined ones are not cached
        good = [m.to_dict() for m in results if m.status == "ok"]
        assert all(record in baseline for record in good)
        assert cache.stores == len(Session(_CONFIG).plan("full")) - 2
        # a fault-free resume over the same cache heals the quarantined cells
        clear_fault_plan()
        healed = Session(_CONFIG).run("full", workers=1, cache=cache,
                                      retry=RetryPolicy.from_retries(1))
        assert [m.to_dict() for m in healed] == baseline

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_chaos_property_bit_identical_and_leak_free(self, baseline, executor):
        """The headline property: kills + transient errors + corruption in a
        parallel sweep leave every successful measurement bit-identical to
        the fault-free sequential run, with zero leaked segments."""
        install_fault_plan(FaultPlan(seed=7, kills=1, flaky=2, corrupt=1))
        session = Session(_CONFIG)
        results = session.run("full", workers=2, executor=executor,
                              cache=False, retry=RetryPolicy.from_retries(2))
        stats = session.last_sweep
        assert [m.to_dict() for m in results] == baseline  # all recovered
        assert stats.quarantined == 0
        assert stats.retries >= 2  # both flaky targets retried at least once
        if executor == "process":
            assert stats.respawns == 1  # exactly one injected kill
            assert stats.recovered >= 1
        assert not _leaked_segments()

    def test_legacy_fail_fast_without_retry_is_preserved(self):
        install_fault_plan(FaultPlan(seed=7, flaky=1, flaky_attempts=99))
        session = Session(_CONFIG)
        with pytest.raises(Exception):
            session.run("full", workers=1, cache=False)  # retry=None
