"""Property-based tests (hypothesis) on the core data structures and invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.metrics import impact_percentages, speedup
from repro.frame import Column, DataFrame, col
from repro.io import read_rparquet, write_rparquet
from repro.plan import LazyFrame, OptimizerSettings
from repro.simulate import CostModel, PAPER_SERVER, get_profile, trimmed_mean

_SETTINGS = settings(max_examples=40, deadline=None,
                     suppress_health_check=[HealthCheck.function_scoped_fixture])

numeric_lists = st.lists(
    st.one_of(st.none(), st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
    min_size=1, max_size=60,
)
int_lists = st.lists(st.one_of(st.none(), st.integers(min_value=-10_000, max_value=10_000)),
                     min_size=1, max_size=60)
string_lists = st.lists(st.one_of(st.none(), st.text(min_size=0, max_size=8)),
                        min_size=1, max_size=60)


@st.composite
def frames(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    keys = draw(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=n, max_size=n))
    values = draw(st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                           min_size=n, max_size=n))
    flags = draw(st.lists(st.integers(min_value=0, max_value=3), min_size=n, max_size=n))
    return DataFrame({"key": keys, "value": values, "flag": flags})


@st.composite
def random_plans(draw):
    """A random logical plan over a random frame: filters, projections,
    with-columns, sorts, distincts, group-bys and joins in random order."""
    lazy = LazyFrame.from_frame(draw(frames()))
    derived = 0
    joins = 0
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        op = draw(st.sampled_from(
            ["filter", "with_column", "select", "sort", "distinct", "join", "agg"]))
        if op == "filter":
            threshold = draw(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False))
            lazy = lazy.filter(col("value") > threshold)
        elif op == "with_column":
            factor = draw(st.floats(min_value=-4, max_value=4, allow_nan=False))
            derived += 1
            lazy = lazy.with_column(f"derived{derived}", col("value") * factor)
        elif op == "select":
            lazy = lazy.select(["key", "value", "flag"])
            derived = 0
        elif op == "sort":
            lazy = lazy.sort(draw(st.sampled_from(["key", "value", "flag"])),
                             ascending=draw(st.booleans()))
        elif op == "distinct":
            lazy = lazy.distinct(["key", "flag"])
        elif op == "join":
            # unique payload column per join so repeated joins never clash
            joins += 1
            right = DataFrame({"key": list("abcd"),
                               f"bonus{joins}": [1.0, 2.0, 3.0, 4.0]})
            how = draw(st.sampled_from(["inner", "left", "semi", "anti", "outer"]))
            lazy = lazy.join(LazyFrame.from_frame(right), on="key", how=how)
        elif op == "agg":
            lazy = lazy.group_agg("key", {"value": "sum", "flag": "count"})
            return lazy  # aggregation collapses the schema; stop here
    return lazy


class TestColumnProperties:
    @_SETTINGS
    @given(numeric_lists)
    def test_fill_null_removes_all_nulls(self, values):
        column = Column.from_values(values)
        assert column.fill_null(0.0).null_count() == 0

    @_SETTINGS
    @given(int_lists)
    def test_sort_indices_orders_valid_values(self, values):
        column = Column.from_values(values)
        ordered = column.take(column.sort_indices())
        valid = [v for v in ordered.to_list() if v is not None]
        assert valid == sorted(valid)
        assert len(ordered) == len(column)

    @_SETTINGS
    @given(int_lists)
    def test_sentinel_roundtrip_is_lossless(self, values):
        column = Column.from_values(values, "int64")
        restored = Column.from_sentinel(column.to_sentinel(), "int64")
        assert restored.to_list() == column.to_list()

    @_SETTINGS
    @given(numeric_lists)
    def test_normalize_minmax_bounded(self, values):
        column = Column.from_values(values)
        normalized = column.normalize("minmax")
        valid = [v for v in normalized.to_list() if v is not None]
        assert all(-1e-9 <= v <= 1 + 1e-9 for v in valid)

    @_SETTINGS
    @given(string_lists)
    def test_cast_to_string_preserves_null_positions(self, values):
        column = Column.from_values(values, "string")
        assert column.cast("categorical").null_count() == column.null_count()


class TestFrameProperties:
    @_SETTINGS
    @given(frames())
    def test_filter_never_grows(self, frame):
        mask = frame["value"].gt(0.0)
        filtered = frame.filter(mask)
        assert filtered.num_rows <= frame.num_rows
        assert filtered.columns == frame.columns

    @_SETTINGS
    @given(frames())
    def test_groupby_count_preserves_total(self, frame):
        grouped = frame.groupby("key").size()
        assert sum(grouped["count"].to_list()) == frame.num_rows

    @_SETTINGS
    @given(frames())
    def test_drop_duplicates_idempotent(self, frame):
        once = frame.drop_duplicates(subset=["key", "flag"])
        twice = once.drop_duplicates(subset=["key", "flag"])
        assert once.equals(twice)

    @_SETTINGS
    @given(frames())
    def test_sort_preserves_multiset_of_values(self, frame):
        out = frame.sort_values(["key", "value"])
        assert sorted(map(str, out["value"].to_list())) == sorted(map(str, frame["value"].to_list()))

    @_SETTINGS
    @given(frames())
    def test_rparquet_roundtrip(self, frame):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "frame.rpq"
            write_rparquet(frame, path)
            assert read_rparquet(path).equals(frame)

    @_SETTINGS
    @given(frames())
    def test_optimizer_never_changes_results(self, frame):
        lazy = (LazyFrame.from_frame(frame)
                .with_column("doubled", col("value") * 2)
                .filter(col("flag") < 3)
                .group_agg("key", {"doubled": "sum", "value": "count"}))
        assert lazy.collect().equals(lazy.collect(optimize_plan=False))
        assert lazy.collect(OptimizerSettings.all_disabled()).equals(lazy.collect())

    @_SETTINGS
    @given(random_plans(), st.integers(min_value=1, max_value=50))
    def test_streaming_equals_eager_equals_unoptimized(self, lazy, batch_rows):
        """Cost-based ≡ rule-based ≡ unoptimized ≡ streamed results, for any
        random plan (the optimizer's statistics-driven decisions may pick
        different physical plans, never different results)."""
        import dataclasses

        cost_based = lazy.collect()
        rule_based = lazy.collect(dataclasses.replace(OptimizerSettings(),
                                                      cost_based=False))
        unoptimized = lazy.collect(optimize_plan=False)
        streamed, stats = lazy.collect_streaming(batch_rows=batch_rows)
        streamed_unopt, _ = lazy.collect_streaming(batch_rows=batch_rows,
                                                   optimize_plan=False)
        assert cost_based.equals(unoptimized)
        assert rule_based.equals(unoptimized)
        assert streamed.equals(cost_based)
        assert streamed_unopt.equals(cost_based)
        assert stats.total_batches >= len(stats.operators)


class TestSimulationProperties:
    @_SETTINGS
    @given(st.integers(min_value=1, max_value=2 * 10 ** 7), st.integers(min_value=1, max_value=30))
    def test_cost_is_positive_and_monotone_in_rows(self, rows, cols):
        model = CostModel(PAPER_SERVER)
        profile = get_profile("polars")
        small = model.estimate(profile, "groupby", rows, cols)
        large = model.estimate(profile, "groupby", rows * 2, cols)
        assert small.seconds > 0
        assert large.seconds >= small.seconds * 0.9  # jitter-tolerant monotonicity

    @_SETTINGS
    @given(st.lists(st.floats(min_value=0.001, max_value=1000, allow_nan=False), min_size=1,
                    max_size=30))
    def test_trimmed_mean_within_range(self, values):
        mean = trimmed_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @_SETTINGS
    @given(st.floats(min_value=0.001, max_value=1e5), st.floats(min_value=0.001, max_value=1e5))
    def test_speedup_antisymmetry(self, a, b):
        assert speedup(a, b) == pytest.approx(1.0 / speedup(b, a), rel=1e-6)

    @_SETTINGS
    @given(st.dictionaries(st.sampled_from(["p1", "p2", "p3", "p4"]),
                           st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                           min_size=1, max_size=4))
    def test_impact_percentages_sum_to_100(self, timings):
        impact = impact_percentages(timings)
        total = sum(impact.values())
        assert total == pytest.approx(100.0) or total == 0.0
