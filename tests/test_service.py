"""The benchmark service: HTTP API, single-flight, tenancy, scheduling, CLI.

The service tests run a real :class:`~repro.service.app.BenchmarkService` on
an ephemeral port in a daemon thread (via :func:`~repro.service.app.
launch_in_thread`) and talk to it through the stdlib
:class:`~repro.service.client.ServiceClient` — the same path CI's smoke job
and external users take.  One warm session is shared by every service
instance in the module, so the suite pays for dataset generation once.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.__main__ import build_serve_parser, main as cli_main
from repro.config import ExperimentConfig
from repro.service import (
    JobScheduler,
    MemoryBudgetExceeded,
    ServiceError,
    SingleFlight,
    launch_in_thread,
)
from repro.service.jobs import JobStore
from repro.session import Session

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")

_CONFIG = ExperimentConfig(scale=0.05, runs=1, datasets=("athlete",),
                           engines=("pandas", "polars"))


@pytest.fixture(scope="module")
def warm_session():
    """One warm session shared by every service instance in this module."""
    return Session(_CONFIG).warm()


@pytest.fixture(scope="module")
def svc(warm_session, tmp_path_factory):
    """A long-lived service for the plain API tests (own cache directory)."""
    cache_dir = tmp_path_factory.mktemp("svc-cache")
    with launch_in_thread(session=warm_session, cache=str(cache_dir), workers=4,
                          tenants=["cramped=0.000000001"]) as handle:
        yield handle


@pytest.fixture
def fresh_svc(warm_session, tmp_path):
    """A service with an empty cache, for tests that count executions."""
    with launch_in_thread(session=warm_session, cache=str(tmp_path / "cache"),
                          workers=8) as handle:
        yield handle


# --------------------------------------------------------------------------- #
# liveness and the plain endpoints
# --------------------------------------------------------------------------- #
class TestEndpoints:
    def test_healthz(self, svc):
        from repro import __version__

        doc = svc.client.healthz()
        assert doc["ok"] is True
        assert doc["version"] == __version__

    def test_run_waits_and_matches_sequential_session(self, svc, warm_session):
        doc = svc.client.run(mode="full", wait=True)
        assert doc["job"]["state"] == "done"
        cells = doc["result"]["cells"]
        assert cells["total"] == cells["executed"] + cells["cached"] + cells["shared"]
        baseline = warm_session.run(mode="full")
        assert doc["result"]["measurements"] == [m.to_dict() for m in baseline]

    def test_advise_reports_ranked(self, svc, warm_session):
        doc = svc.client.advise()
        reports = doc["result"]["reports"]
        assert len(reports) == len(warm_session.pipelines_for("athlete"))
        for report in reports:
            assert report["machine"] == _CONFIG.machine.name
            assert report["best"] is not None
            feasible = [c for c in report["candidates"] if c["feasible"]]
            seconds = [c["seconds"] for c in feasible]
            assert seconds == sorted(seconds)  # ranked fastest-first
            assert list(report["best"]) == [feasible[0]["engine"],
                                            feasible[0]["strategy"]]

    def test_explain_returns_both_plans(self, svc):
        doc = svc.client.explain("athlete")
        plans = doc["result"]["plans"]
        assert plans, "athlete has registered pipelines"
        for plan in plans:
            assert plan["dataset"] == "athlete"
            assert plan["unoptimized"] and plan["optimized"]

    def test_async_job_and_ndjson_stream(self, svc):
        doc = svc.client.run(mode="read", wait=False)
        job_id = doc["job"]["id"]
        assert doc["job"]["state"] in ("queued", "running")
        events = list(svc.client.stream(job_id))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "planned"
        assert kinds[-1] == "end"
        cell_events = [e for e in events if e["event"] == "cell"]
        assert len(cell_events) == events[0]["cells"]
        assert all(e["measurements"] for e in cell_events)
        summary = events[-1]["summary"]
        assert summary["state"] == "done"
        # the job endpoint serves the same summary after the fact
        followed = svc.client.job(job_id)
        assert followed["job"]["state"] == "done"
        assert len(followed["result"]["measurements"]) >= len(cell_events)

    def test_stats_counters(self, svc):
        stats = svc.client.stats()
        assert stats["requests"] >= 1
        assert stats["session"]["datasets"] == ["athlete"]
        assert stats["scheduler"]["workers"] == 4
        assert "public" in stats["scheduler"]["tenants"]
        assert stats["cache"] is not None


class TestErrors:
    def test_unknown_path_404(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.request("GET", "/nope")
        assert err.value.status == 404

    def test_wrong_method_405(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.request("GET", "/run")
        assert err.value.status == 405

    def test_bad_mode_400(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.run(mode="frobnicate")
        assert err.value.status == 400
        assert "unknown run mode" in err.value.message

    def test_tpch_mode_rejected(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.run(mode="tpch")
        assert err.value.status == 400

    def test_explain_needs_dataset_400(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.request("POST", "/explain", {})
        assert err.value.status == 400

    def test_unknown_job_404(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.job("job-999999")
        assert err.value.status == 404

    def test_failed_job_is_500_with_error(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.run(mode="full", pipelines=["no-such-pipeline"])
        assert err.value.status == 500
        assert "no-such-pipeline" in err.value.message


# --------------------------------------------------------------------------- #
# the acceptance criterion: a stampede executes each unique cell exactly once
# --------------------------------------------------------------------------- #
class TestSingleFlightStampede:
    def test_16_concurrent_identical_sweeps_execute_each_cell_once(
            self, fresh_svc, warm_session):
        clients = 16
        results: "list[dict | None]" = [None] * clients
        errors: list[BaseException] = []

        def submit(slot: int) -> None:
            try:
                results[slot] = fresh_svc.client.run(mode="full", wait=True)
            except BaseException as err:  # noqa: BLE001 — re-raised below
                errors.append(err)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors

        plan = warm_session.plan("full")
        unique_cells = len({planned.cell.cell_id for planned in plan})
        service = fresh_svc.service
        assert service.cell_executions == unique_cells

        # every client saw the full result, bit-identical to a sequential run
        baseline = [m.to_dict() for m in warm_session.run(mode="full")]
        for doc in results:
            assert doc is not None and doc["job"]["state"] == "done"
            assert doc["result"]["measurements"] == baseline

        # the single-flight layer and cache absorbed the other 15 clients
        stats = service.stats()
        flight = stats["single_flight"]
        assert flight["leaders"] == unique_cells
        total_cells = sum(doc["result"]["cells"]["total"] for doc in results)
        assert total_cells == clients * unique_cells
        executed = sum(doc["result"]["cells"]["executed"] for doc in results)
        assert executed == unique_cells


# --------------------------------------------------------------------------- #
# tenancy: memory budgets reject without degrading other tenants
# --------------------------------------------------------------------------- #
class TestTenancy:
    def test_over_budget_tenant_gets_429_others_unaffected(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.run(tenant="cramped", mode="full", wait=True)
        assert err.value.status == 429
        assert "over memory budget" in err.value.message
        rejected = err.value.payload["error"]["job"]
        assert rejected["state"] == "rejected"
        assert rejected["estimated_bytes"] > 0

        # the default tenant still runs fine, before and after the rejection
        doc = svc.client.run(mode="full", wait=True)
        assert doc["job"]["state"] == "done"

        tenants = svc.client.stats()["scheduler"]["tenants"]
        assert tenants["cramped"]["rejected"] >= 1
        assert tenants["cramped"]["committed_bytes"] == 0
        assert tenants["public"]["rejected"] == 0

    def test_advise_is_never_budget_limited(self, svc):
        # advise jobs estimate nothing and execute nothing: always admitted
        doc = svc.client.advise(tenant="cramped")
        assert doc["job"]["state"] == "done"


# --------------------------------------------------------------------------- #
# scheduler and single-flight units (no HTTP)
# --------------------------------------------------------------------------- #
class TestJobScheduler:
    def test_round_robin_interleaves_tenants(self):
        order: list[str] = []

        async def scenario() -> None:
            async def runner(job):
                order.append(job.tenant)

            scheduler = JobScheduler(runner, workers=1)
            store = JobStore()
            jobs = [store.create(tenant=tenant, kind="advise")
                    for tenant in ["a", "a", "a", "b", "b", "b"]]
            for job in jobs:
                scheduler.submit(job)
            await scheduler.start()
            await asyncio.gather(*(job.wait() for job in jobs))
            await scheduler.stop()

        asyncio.run(scenario())
        # tenant b queued last but is served every other slot, not after a
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_budget_rejection_accounting(self):
        async def scenario() -> None:
            async def runner(job):
                return None

            scheduler = JobScheduler(runner, workers=1,
                                     default_budget_bytes=100)
            store = JobStore()
            ok = store.create(tenant="t", kind="run")
            ok.estimated_bytes = 80
            scheduler.submit(ok)
            too_big = store.create(tenant="t", kind="run")
            too_big.estimated_bytes = 30
            with pytest.raises(MemoryBudgetExceeded):
                scheduler.submit(too_big)  # 80 committed + 30 > 100
            assert too_big.state == "rejected"
            await scheduler.start()
            await ok.wait()
            await scheduler.stop()
            assert ok.state == "done"
            assert scheduler.tenants["t"].committed_bytes == 0

        asyncio.run(scenario())


class TestSingleFlightUnit:
    def test_concurrent_callers_share_one_execution(self):
        calls: list[int] = []

        def thunk() -> str:
            calls.append(1)
            time.sleep(0.05)
            return "value"

        async def scenario():
            flight = SingleFlight()
            return await asyncio.gather(*(flight.run("key", thunk)
                                          for _ in range(8)))

        outcomes = asyncio.run(scenario())
        assert len(calls) == 1
        assert all(value == "value" for value, _ in outcomes)
        assert sum(1 for _, shared in outcomes if shared) == 7

    def test_leader_exception_propagates_then_clears(self):
        async def scenario():
            flight = SingleFlight()

            def boom() -> None:
                raise ValueError("boom")

            with pytest.raises(ValueError):
                await flight.run("key", boom)
            # the failed flight does not poison the key
            value, shared = await flight.run("key", lambda: 42)
            assert (value, shared) == (42, False)
            assert flight.in_flight == 0

        asyncio.run(scenario())


# --------------------------------------------------------------------------- #
# CLI: --version, serve parser, exit codes
# --------------------------------------------------------------------------- #
class TestCLI:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as err:
            cli_main(["--version"])
        assert err.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_unknown_subcommand_exits_2(self, capsys):
        assert cli_main(["frobnicate"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    def test_serve_parser_defaults(self):
        from repro.service import DEFAULT_PORT

        args = build_serve_parser().parse_args([])
        assert args.port == DEFAULT_PORT
        assert args.workers == 4
        assert args.scale == 0.05

    def test_failed_run_exits_1(self, monkeypatch, capsys):
        def explode(self, *args, **kwargs):
            raise RuntimeError("simulated mid-sweep failure")

        monkeypatch.setattr(Session, "run", explode)
        code = cli_main(["--mode", "full", "--datasets", "athlete",
                         "--scale", "0.05", "--runs", "1", "--no-cache"])
        assert code == 1
        assert "run failed" in capsys.readouterr().err

    def test_empty_result_exits_1(self, monkeypatch, capsys):
        from repro.results import ResultSet

        monkeypatch.setattr(Session, "run",
                            lambda self, *args, **kwargs: ResultSet())
        code = cli_main(["--mode", "full", "--datasets", "athlete",
                         "--scale", "0.05", "--runs", "1", "--no-cache"])
        assert code == 1
        assert "no measurements" in capsys.readouterr().err

    def test_unknown_engine_exits_2(self, capsys):
        code = cli_main(["--mode", "full", "--engines", "no-such-engine",
                         "--datasets", "athlete", "--scale", "0.05",
                         "--runs", "1", "--no-cache"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
