"""The benchmark service: HTTP API, single-flight, tenancy, scheduling, CLI.

The service tests run a real :class:`~repro.service.app.BenchmarkService` on
an ephemeral port in a daemon thread (via :func:`~repro.service.app.
launch_in_thread`) and talk to it through the stdlib
:class:`~repro.service.client.ServiceClient` — the same path CI's smoke job
and external users take.  One warm session is shared by every service
instance in the module, so the suite pays for dataset generation once.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.__main__ import build_serve_parser, main as cli_main
from repro.config import ExperimentConfig
from repro.service import (
    JobScheduler,
    MemoryBudgetExceeded,
    RateLimitExceeded,
    ServiceClient,
    ServiceError,
    SingleFlight,
    Tenant,
    launch_in_thread,
)
from repro.service.jobs import JobStore
from repro.session import Session

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")

_CONFIG = ExperimentConfig(scale=0.05, runs=1, datasets=("athlete",),
                           engines=("pandas", "polars"))


@pytest.fixture(scope="module")
def warm_session():
    """One warm session shared by every service instance in this module."""
    return Session(_CONFIG).warm()


@pytest.fixture(scope="module")
def svc(warm_session, tmp_path_factory):
    """A long-lived service for the plain API tests (own cache directory)."""
    cache_dir = tmp_path_factory.mktemp("svc-cache")
    with launch_in_thread(session=warm_session, cache=str(cache_dir), workers=4,
                          tenants=["cramped=0.000000001", "limited=:2"]) as handle:
        yield handle


@pytest.fixture
def fresh_svc(warm_session, tmp_path):
    """A service with an empty cache, for tests that count executions."""
    with launch_in_thread(session=warm_session, cache=str(tmp_path / "cache"),
                          workers=8) as handle:
        yield handle


# --------------------------------------------------------------------------- #
# liveness and the plain endpoints
# --------------------------------------------------------------------------- #
class TestEndpoints:
    def test_healthz(self, svc):
        from repro import __version__

        doc = svc.client.healthz()
        assert doc["ok"] is True
        assert doc["version"] == __version__

    def test_run_waits_and_matches_sequential_session(self, svc, warm_session):
        doc = svc.client.run(mode="full", wait=True)
        assert doc["job"]["state"] == "done"
        cells = doc["result"]["cells"]
        assert cells["total"] == cells["executed"] + cells["cached"] + cells["shared"]
        baseline = warm_session.run(mode="full")
        assert doc["result"]["measurements"] == [m.to_dict() for m in baseline]

    def test_advise_reports_ranked(self, svc, warm_session):
        doc = svc.client.advise()
        reports = doc["result"]["reports"]
        assert len(reports) == len(warm_session.pipelines_for("athlete"))
        for report in reports:
            assert report["machine"] == _CONFIG.machine.name
            assert report["best"] is not None
            feasible = [c for c in report["candidates"] if c["feasible"]]
            seconds = [c["seconds"] for c in feasible]
            assert seconds == sorted(seconds)  # ranked fastest-first
            assert list(report["best"]) == [feasible[0]["engine"],
                                            feasible[0]["strategy"]]

    def test_explain_returns_both_plans(self, svc):
        doc = svc.client.explain("athlete")
        plans = doc["result"]["plans"]
        assert plans, "athlete has registered pipelines"
        for plan in plans:
            assert plan["dataset"] == "athlete"
            assert plan["unoptimized"] and plan["optimized"]

    def test_async_job_and_ndjson_stream(self, svc):
        doc = svc.client.run(mode="read", wait=False)
        job_id = doc["job"]["id"]
        assert doc["job"]["state"] in ("queued", "running")
        events = list(svc.client.stream(job_id))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "planned"
        assert kinds[-1] == "end"
        cell_events = [e for e in events if e["event"] == "cell"]
        assert len(cell_events) == events[0]["cells"]
        assert all(e["measurements"] for e in cell_events)
        summary = events[-1]["summary"]
        assert summary["state"] == "done"
        # the job endpoint serves the same summary after the fact
        followed = svc.client.job(job_id)
        assert followed["job"]["state"] == "done"
        assert len(followed["result"]["measurements"]) >= len(cell_events)

    def test_stats_counters(self, svc):
        stats = svc.client.stats()
        assert stats["requests"] >= 1
        assert stats["session"]["datasets"] == ["athlete"]
        assert stats["scheduler"]["workers"] == 4
        assert "public" in stats["scheduler"]["tenants"]
        assert stats["cache"] is not None


class TestErrors:
    def test_unknown_path_404(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.request("GET", "/nope")
        assert err.value.status == 404

    def test_wrong_method_405(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.request("GET", "/run")
        assert err.value.status == 405

    def test_bad_mode_400(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.run(mode="frobnicate")
        assert err.value.status == 400
        assert "unknown run mode" in err.value.message

    def test_tpch_mode_rejected(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.run(mode="tpch")
        assert err.value.status == 400

    def test_explain_needs_dataset_400(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.request("POST", "/explain", {})
        assert err.value.status == 400

    def test_unknown_job_404(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.job("job-999999")
        assert err.value.status == 404

    def test_failed_job_is_500_with_error(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.run(mode="full", pipelines=["no-such-pipeline"])
        assert err.value.status == 500
        assert "no-such-pipeline" in err.value.message


# --------------------------------------------------------------------------- #
# job cancellation: DELETE /jobs/<id> for queued and running jobs
# --------------------------------------------------------------------------- #
class TestCancellation:
    def test_scheduler_cancels_queued_job_and_releases_budget(self):
        async def scenario() -> None:
            release = asyncio.Event()

            async def runner(job):
                await release.wait()

            scheduler = JobScheduler(runner, workers=1,
                                     default_budget_bytes=100)
            store = JobStore()
            blocker = store.create(tenant="t", kind="run")
            blocker.estimated_bytes = 50
            queued = store.create(tenant="t", kind="run")
            queued.estimated_bytes = 50
            scheduler.submit(blocker)
            scheduler.submit(queued)
            await scheduler.start()
            while blocker.state != "running":
                await asyncio.sleep(0.01)
            assert scheduler.cancel(queued) is True
            assert queued.state == "cancelled" and queued.done
            # the queued job's memory estimate is released immediately
            assert scheduler.tenants["t"].committed_bytes == 50
            assert scheduler.cancel(queued) is False  # idempotent
            release.set()
            await blocker.wait()
            await scheduler.stop()
            assert blocker.state == "done"

        asyncio.run(scenario())

    def test_scheduler_cancels_running_job_and_frees_the_slot(self):
        async def scenario() -> None:
            async def runner(job):
                if job.params.get("slow"):
                    await asyncio.sleep(60)

            scheduler = JobScheduler(runner, workers=1)
            store = JobStore()
            running = store.create(tenant="t", kind="run", params={"slow": True})
            follower = store.create(tenant="t", kind="run")
            scheduler.submit(running)
            scheduler.submit(follower)
            await scheduler.start()
            while running.state != "running":
                await asyncio.sleep(0.01)
            assert scheduler.cancel(running) is True
            await running.wait()
            assert running.state == "cancelled"
            assert running.error == "cancelled by client"
            # cancellation released the worker slot: the follower completes
            await asyncio.wait_for(follower.wait(), timeout=10)
            assert follower.state == "done"
            await scheduler.stop()

        asyncio.run(scenario())

    def test_delete_cancels_queued_job_over_http(self, warm_session, tmp_path):
        with launch_in_thread(session=warm_session,
                              cache=str(tmp_path / "cache"),
                              workers=1) as handle:
            client = handle.client
            # one worker: the fillers occupy the slot and the queue ahead
            for _ in range(2):
                client.run(mode="full", wait=False)
            target = client.run(mode="full", datasets=["athlete"], wait=False)
            job_id = target["job"]["id"]
            doc = client.cancel(job_id)
            assert doc["cancelled"] is True
            assert client.job(job_id)["job"]["state"] == "cancelled"
            # idempotent: a second DELETE reports nothing left to cancel
            assert client.cancel(job_id)["cancelled"] is False
            # unknown ids are still a 404
            with pytest.raises(ServiceError) as err:
                client.cancel("job-999999")
            assert err.value.status == 404

    def test_delete_finished_job_is_idempotent_no_op(self, svc):
        doc = svc.client.run(mode="full", wait=True)
        # a waited run response carries no job id field loss: fetch it back
        finished = doc["job"]["id"]
        result = svc.client.cancel(finished)
        assert result["cancelled"] is False
        assert result["job"]["state"] == "done"


# --------------------------------------------------------------------------- #
# client transport resilience: timeout plus one retry with backoff
# --------------------------------------------------------------------------- #
class TestClientRetry:
    def test_transport_error_is_retried_once(self, monkeypatch):
        from repro.service.client import ServiceClient

        client = ServiceClient(port=1, retries=1, retry_backoff=0.0)
        calls: list[int] = []

        def flaky_once(method, path, payload=None):
            calls.append(1)
            if len(calls) == 1:
                raise ConnectionResetError("peer reset")
            return {"ok": True}

        monkeypatch.setattr(client, "_request_once", flaky_once)
        assert client.request("GET", "/healthz") == {"ok": True}
        assert len(calls) == 2

    def test_transport_error_exhausts_after_retries(self, monkeypatch):
        from repro.service.client import ServiceClient

        client = ServiceClient(port=1, retries=1, retry_backoff=0.0)

        def always_reset(method, path, payload=None):
            raise ConnectionResetError("peer reset")

        monkeypatch.setattr(client, "_request_once", always_reset)
        with pytest.raises(ConnectionResetError):
            client.request("GET", "/healthz")

    def test_service_error_is_never_retried(self, monkeypatch):
        from repro.service.client import ServiceClient

        client = ServiceClient(port=1, retries=5, retry_backoff=0.0)
        calls: list[int] = []

        def http_error(method, path, payload=None):
            calls.append(1)
            raise ServiceError(429, "over budget")

        monkeypatch.setattr(client, "_request_once", http_error)
        with pytest.raises(ServiceError):
            client.request("POST", "/run", {})
        assert len(calls) == 1  # the server answered; retrying would resubmit


# --------------------------------------------------------------------------- #
# the acceptance criterion: a stampede executes each unique cell exactly once
# --------------------------------------------------------------------------- #
class TestSingleFlightStampede:
    def test_16_concurrent_identical_sweeps_execute_each_cell_once(
            self, fresh_svc, warm_session):
        clients = 16
        results: "list[dict | None]" = [None] * clients
        errors: list[BaseException] = []

        def submit(slot: int) -> None:
            try:
                results[slot] = fresh_svc.client.run(mode="full", wait=True)
            except BaseException as err:  # noqa: BLE001 — re-raised below
                errors.append(err)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors

        plan = warm_session.plan("full")
        unique_cells = len({planned.cell.cell_id for planned in plan})
        service = fresh_svc.service
        assert service.cell_executions == unique_cells

        # every client saw the full result, bit-identical to a sequential run
        baseline = [m.to_dict() for m in warm_session.run(mode="full")]
        for doc in results:
            assert doc is not None and doc["job"]["state"] == "done"
            assert doc["result"]["measurements"] == baseline

        # the single-flight layer and cache absorbed the other 15 clients
        stats = service.stats()
        flight = stats["single_flight"]
        assert flight["leaders"] == unique_cells
        total_cells = sum(doc["result"]["cells"]["total"] for doc in results)
        assert total_cells == clients * unique_cells
        executed = sum(doc["result"]["cells"]["executed"] for doc in results)
        assert executed == unique_cells


# --------------------------------------------------------------------------- #
# tenancy: memory budgets reject without degrading other tenants
# --------------------------------------------------------------------------- #
class TestTenancy:
    def test_over_budget_tenant_gets_429_others_unaffected(self, svc):
        with pytest.raises(ServiceError) as err:
            svc.client.run(tenant="cramped", mode="full", wait=True)
        assert err.value.status == 429
        assert "over memory budget" in err.value.message
        rejected = err.value.payload["error"]["job"]
        assert rejected["state"] == "rejected"
        assert rejected["estimated_bytes"] > 0

        # the default tenant still runs fine, before and after the rejection
        doc = svc.client.run(mode="full", wait=True)
        assert doc["job"]["state"] == "done"

        tenants = svc.client.stats()["scheduler"]["tenants"]
        assert tenants["cramped"]["rejected"] >= 1
        assert tenants["cramped"]["committed_bytes"] == 0
        assert tenants["public"]["rejected"] == 0

    def test_advise_is_never_budget_limited(self, svc):
        # advise jobs estimate nothing and execute nothing: always admitted
        doc = svc.client.advise(tenant="cramped")
        assert doc["job"]["state"] == "done"


# --------------------------------------------------------------------------- #
# per-tenant rate limits: token buckets answer 429 + Retry-After
# --------------------------------------------------------------------------- #
class TestRateLimits:
    def test_token_bucket_refills_at_the_configured_rate(self):
        tenant = Tenant(name="t", rate_per_second=2.0)
        # a fresh bucket holds burst = max(1, rate) = 2 tokens
        assert tenant.take_token(now=100.0) == 0.0
        assert tenant.take_token(now=100.0) == 0.0
        wait = tenant.take_token(now=100.0)
        assert wait == pytest.approx(0.5)  # one token refills in 1/rate s
        # after the advertised wait a token is available again
        assert tenant.take_token(now=100.0 + wait) == 0.0
        # and an idle tenant refills back up to the burst cap, no further
        tenant2 = Tenant(name="t2", rate_per_second=2.0)
        tenant2.take_token(now=0.0)
        tenant2.take_token(now=0.0)
        assert tenant2.take_token(now=1000.0) == 0.0
        assert tenant2.take_token(now=1000.0) == 0.0
        assert tenant2.take_token(now=1000.0) > 0.0

    def test_unlimited_tenant_never_throttles(self):
        tenant = Tenant(name="free")
        assert all(tenant.take_token(now=0.0) == 0.0 for _ in range(100))

    def test_scheduler_rejects_past_the_bucket(self):
        async def scenario() -> None:
            async def runner(job):
                return None

            scheduler = JobScheduler(runner, workers=1)
            scheduler.tenant("t", rate_per_second=1.0)
            store = JobStore()
            scheduler.submit(store.create(tenant="t", kind="advise"))
            throttled = store.create(tenant="t", kind="advise")
            with pytest.raises(RateLimitExceeded) as err:
                scheduler.submit(throttled)
            assert err.value.retry_after > 0
            assert throttled.state == "rejected"
            # other tenants are unaffected by t's empty bucket
            scheduler.submit(store.create(tenant="other", kind="advise"))
            state = scheduler.tenants["t"]
            assert state.throttled == 1 and state.rejected == 1

        asyncio.run(scenario())

    def test_throttled_tenant_gets_429_with_retry_after(self, svc):
        statuses = []
        retry_after = None
        for _ in range(4):  # burst 2 → the rapid-fire tail must hit 429
            try:
                svc.client.explain("athlete", tenant="limited")
                statuses.append(200)
            except ServiceError as err:
                statuses.append(err.status)
                retry_after = err.payload["error"].get("retry_after")
        assert 429 in statuses
        assert retry_after is not None and retry_after > 0
        # the unthrottled default tenant is unaffected
        assert svc.client.explain("athlete")["job"]["state"] == "done"
        limited = svc.client.stats()["scheduler"]["tenants"]["limited"]
        assert limited["throttled"] >= 1
        assert limited["rate_per_second"] == 2.0


# --------------------------------------------------------------------------- #
# HTTP keep-alive: persistent connections on both sides
# --------------------------------------------------------------------------- #
class TestKeepAlive:
    def test_client_reuses_one_connection_across_requests(self, svc):
        client = ServiceClient(port=svc.port, timeout=30.0)
        client.wait_until_ready()
        for _ in range(5):
            client.healthz()
        client.stats()
        assert client.connections_opened == 1
        client.close()

    def test_server_honors_connection_close(self, svc):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", svc.port, timeout=30.0)
        try:
            connection.request("GET", "/healthz", headers={"Connection": "close"})
            response = connection.getresponse()
            response.read()
            assert (response.getheader("Connection") or "").lower() == "close"
        finally:
            connection.close()

    def test_parse_error_closes_but_answers(self, svc):
        import socket as socket_mod

        with socket_mod.create_connection(("127.0.0.1", svc.port), timeout=30.0) as sock:
            sock.sendall(b"NOT-HTTP\r\n\r\n")
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break  # server closed after the error document
                raw += chunk
        assert raw.startswith(b"HTTP/1.1 400")
        assert b"Connection: close" in raw

    def test_client_survives_server_side_retirement(self, svc):
        # A keep-alive socket the server already dropped (idle timeout,
        # max-requests cap) must reconnect transparently — even with the
        # retry budget disabled, since churn is not a request failure.
        client = ServiceClient(port=svc.port, timeout=30.0, retries=0)
        client.wait_until_ready()
        opened = client.connections_opened
        import socket as socket_mod

        connection, fresh = client._connection()
        assert not fresh
        # dead socket the client still believes in: sends now raise EPIPE
        connection.sock.shutdown(socket_mod.SHUT_RDWR)
        assert client.healthz()["ok"] is True
        assert client.connections_opened == opened + 1


# --------------------------------------------------------------------------- #
# scheduler and single-flight units (no HTTP)
# --------------------------------------------------------------------------- #
class TestJobScheduler:
    def test_round_robin_interleaves_tenants(self):
        order: list[str] = []

        async def scenario() -> None:
            async def runner(job):
                order.append(job.tenant)

            scheduler = JobScheduler(runner, workers=1)
            store = JobStore()
            jobs = [store.create(tenant=tenant, kind="advise")
                    for tenant in ["a", "a", "a", "b", "b", "b"]]
            for job in jobs:
                scheduler.submit(job)
            await scheduler.start()
            await asyncio.gather(*(job.wait() for job in jobs))
            await scheduler.stop()

        asyncio.run(scenario())
        # tenant b queued last but is served every other slot, not after a
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_budget_rejection_accounting(self):
        async def scenario() -> None:
            async def runner(job):
                return None

            scheduler = JobScheduler(runner, workers=1,
                                     default_budget_bytes=100)
            store = JobStore()
            ok = store.create(tenant="t", kind="run")
            ok.estimated_bytes = 80
            scheduler.submit(ok)
            too_big = store.create(tenant="t", kind="run")
            too_big.estimated_bytes = 30
            with pytest.raises(MemoryBudgetExceeded):
                scheduler.submit(too_big)  # 80 committed + 30 > 100
            assert too_big.state == "rejected"
            await scheduler.start()
            await ok.wait()
            await scheduler.stop()
            assert ok.state == "done"
            assert scheduler.tenants["t"].committed_bytes == 0

        asyncio.run(scenario())


class TestSingleFlightUnit:
    def test_concurrent_callers_share_one_execution(self):
        calls: list[int] = []

        def thunk() -> str:
            calls.append(1)
            time.sleep(0.05)
            return "value"

        async def scenario():
            flight = SingleFlight()
            return await asyncio.gather(*(flight.run("key", thunk)
                                          for _ in range(8)))

        outcomes = asyncio.run(scenario())
        assert len(calls) == 1
        assert all(value == "value" for value, _ in outcomes)
        assert sum(1 for _, shared in outcomes if shared) == 7

    def test_leader_exception_propagates_then_clears(self):
        async def scenario():
            flight = SingleFlight()

            def boom() -> None:
                raise ValueError("boom")

            with pytest.raises(ValueError):
                await flight.run("key", boom)
            # the failed flight does not poison the key
            value, shared = await flight.run("key", lambda: 42)
            assert (value, shared) == (42, False)
            assert flight.in_flight == 0

        asyncio.run(scenario())


# --------------------------------------------------------------------------- #
# CLI: --version, serve parser, exit codes
# --------------------------------------------------------------------------- #
class TestCLI:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as err:
            cli_main(["--version"])
        assert err.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_unknown_subcommand_exits_2(self, capsys):
        assert cli_main(["frobnicate"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    def test_serve_parser_defaults(self):
        from repro.service import DEFAULT_PORT

        args = build_serve_parser().parse_args([])
        assert args.port == DEFAULT_PORT
        assert args.workers == 4
        assert args.scale == 0.05

    def test_failed_run_exits_1(self, monkeypatch, capsys):
        def explode(self, *args, **kwargs):
            raise RuntimeError("simulated mid-sweep failure")

        monkeypatch.setattr(Session, "run", explode)
        code = cli_main(["--mode", "full", "--datasets", "athlete",
                         "--scale", "0.05", "--runs", "1", "--no-cache"])
        assert code == 1
        assert "run failed" in capsys.readouterr().err

    def test_empty_result_exits_1(self, monkeypatch, capsys):
        from repro.results import ResultSet

        monkeypatch.setattr(Session, "run",
                            lambda self, *args, **kwargs: ResultSet())
        code = cli_main(["--mode", "full", "--datasets", "athlete",
                         "--scale", "0.05", "--runs", "1", "--no-cache"])
        assert code == 1
        assert "no measurements" in capsys.readouterr().err

    def test_unknown_engine_exits_2(self, capsys):
        code = cli_main(["--mode", "full", "--engines", "no-such-engine",
                         "--datasets", "athlete", "--scale", "0.05",
                         "--runs", "1", "--no-cache"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
