"""Tests for the sweep scheduler subsystem: cells, cache, parallel dispatch.

Covers the PR's acceptance criteria: ``Session.run(workers=4)`` produces a
``ResultSet`` equal (same ``Measurement`` records, same order) to
``workers=1``; a second identical run against a warm cache executes zero
engine work; cache entries are invalidated when seed, scale, machine or
optimizer settings change; and interrupted sweeps resume from the cells that
already completed.
"""

import json

import pytest

from repro import ExperimentConfig, LAPTOP, Session, SweepCache
from repro.__main__ import main as cli_main
from repro.core.runner import MatrixRunner
from repro.plan.optimizer import OptimizerSettings
from repro.sweep import Cell, SweepScheduler
from repro.sweep.scheduler import PlannedCell

_CONFIG = ExperimentConfig(scale=0.1, runs=1, datasets=["athlete"],
                           engines=["pandas", "polars", "sparksql", "vaex"])


@pytest.fixture(scope="module")
def session() -> Session:
    return Session(_CONFIG)


# --------------------------------------------------------------------------- #
# cells and planning
# --------------------------------------------------------------------------- #
class TestCells:
    def test_cell_roundtrip_and_id_stability(self):
        cell = Cell(mode="full", engine="polars", dataset="taxi", pipeline="taxi-1",
                    lazy=True, machine="laptop", runs=2, seed=7, scale=0.5,
                    fingerprint="abc")
        assert Cell.from_dict(cell.to_dict()) == cell
        assert cell.cell_id == Cell.from_dict(cell.to_dict()).cell_id
        assert cell.cell_id != cell.to_dict() and len(cell.cell_id) == 24

    def test_cell_id_changes_with_each_coordinate(self):
        base = Cell(mode="full", engine="polars", dataset="taxi")
        for change in ({"mode": "stage"}, {"engine": "pandas"}, {"dataset": "loan"},
                       {"pipeline": "p"}, {"lazy": True}, {"stages": ("EDA",)},
                       {"file_format": "csv"}, {"machine": "laptop"}, {"runs": 3},
                       {"seed": 8}, {"scale": 0.2}, {"fingerprint": "x"}):
            changed = Cell.from_dict({**base.to_dict(), **change})
            assert changed.cell_id != base.cell_id, change

    def test_plan_order_matches_sequential_results(self, session):
        plan = session.plan(mode="full", lazy="both")
        results = session.run(mode="full", lazy="both")
        planned = [(c.cell.engine, c.cell.pipeline, c.cell.lazy) for c in plan]
        measured = [(m.engine, m.pipeline, m.lazy) for m in results]
        assert planned == measured

    def test_plan_resolves_lazy_to_effective_flags(self, session):
        plan = session.plan(mode="full")  # lazy=None: each engine's default
        by_engine = {c.cell.engine: c.cell.lazy for c in plan}
        assert by_engine["pandas"] is False        # eager-only engine
        assert by_engine["polars"] is True         # lazy by default
        assert all(c.payload is not None for c in plan)

    def test_plan_rejects_unknown_mode_and_tpch(self, session):
        with pytest.raises(ValueError, match="unknown mode"):
            session.plan(mode="warp")
        with pytest.raises(ValueError, match="run_tpch"):
            session.plan(mode="tpch")

    def test_explicit_empty_stage_selection_measures_nothing(self, session):
        assert session.plan(mode="stage", stages=[]) == []
        assert len(session.run(mode="stage", stages=[])) == 0
        # while the default (None) measures every present stage
        assert len(session.run(mode="stage")) > 0


# --------------------------------------------------------------------------- #
# parallel dispatch == sequential dispatch (the acceptance criterion)
# --------------------------------------------------------------------------- #
class TestParallelEquality:
    def test_workers4_equals_workers1_full(self, session):
        sequential = session.run(mode="full", lazy="both")
        parallel = session.run(mode="full", lazy="both", workers=4)
        assert parallel == sequential
        assert session.last_sweep.workers == 4
        assert session.last_sweep.executed == len(session.plan(mode="full", lazy="both"))

    @pytest.mark.parametrize("mode", ["stage", "core", "read", "write"])
    def test_workers_equality_other_modes(self, session, mode):
        assert session.run(mode=mode, workers=3) == session.run(mode=mode)

    def test_workers_equality_tpch(self, session):
        parallel = session.run_tpch(engines=["pandas", "polars"],
                                    queries=["q01", "q06"], workers=2)
        sequential = session.run_tpch(engines=["pandas", "polars"],
                                      queries=["q01", "q06"])
        assert parallel == sequential

    def test_process_executor_equality(self, session):
        parallel = session.run(mode="full", engines=["pandas", "polars"],
                               workers=2, executor="process")
        assert parallel == session.run(mode="full", engines=["pandas", "polars"])

    def test_process_executor_equality_tpch(self, session):
        # worker processes regenerate the TPC-H data from (scale, seed)
        parallel = session.run_tpch(engines=["pandas", "polars"],
                                    queries=["q01", "q06"], workers=2,
                                    executor="process")
        assert parallel == session.run_tpch(engines=["pandas", "polars"],
                                            queries=["q01", "q06"])

    def test_invalid_scheduler_arguments(self):
        with pytest.raises(ValueError, match="workers"):
            SweepScheduler(workers=0)
        with pytest.raises(ValueError, match="executor"):
            SweepScheduler(executor="rocket")


# --------------------------------------------------------------------------- #
# cache correctness
# --------------------------------------------------------------------------- #
class TestCache:
    def test_warm_cache_executes_zero_engine_work(self, session, tmp_path, monkeypatch):
        cache = SweepCache(tmp_path / "cache")
        cold = session.run(mode="full", lazy="both", workers=4, cache=cache)
        assert cache.stores == len(session.plan(mode="full", lazy="both"))

        def forbidden(*args, **kwargs):  # any engine work now fails the test
            raise AssertionError("engine work executed despite a warm cache")

        for name in ("measure_full", "measure_stages", "measure_function_core",
                     "measure_io"):
            monkeypatch.setattr(MatrixRunner, name, forbidden)
        warm = session.run(mode="full", lazy="both", workers=4, cache=cache)
        assert warm == cold and warm
        assert session.last_sweep.executed == 0
        assert session.last_sweep.cached == session.last_sweep.total == cache.stores

    def test_cache_roundtrip_preserves_records_exactly(self, session, tmp_path):
        cache = SweepCache(tmp_path)
        cold = session.run(mode="stage", cache=cache)
        warm = session.run(mode="stage", cache=cache)
        assert warm.measurements == cold.measurements

    @pytest.mark.parametrize("override", [{"seed": 8}, {"scale": 0.2},
                                          {"machine": LAPTOP}, {"runs": 2}])
    def test_config_changes_invalidate(self, tmp_path, override):
        cache = SweepCache(tmp_path)
        small = ExperimentConfig(scale=0.1, runs=1, datasets=["athlete"],
                                 engines=["pandas", "polars"])
        Session(small).run(mode="full", cache=cache)
        baseline_stores = cache.stores
        Session(small.but(**override)).run(mode="full", cache=cache)
        assert cache.hits == 0, override
        assert cache.stores == 2 * baseline_stores

    def test_optimizer_settings_invalidate(self, tmp_path):
        small = ExperimentConfig(scale=0.1, runs=1, datasets=["athlete"],
                                 engines=["polars"])
        cache = SweepCache(tmp_path)
        Session(small).run(mode="full", cache=cache)
        ablated = Session(small)
        ablated.engines["polars"].optimizer_settings = OptimizerSettings.all_disabled()
        ablated.run(mode="full", cache=cache)
        assert cache.hits == 0 and cache.stores == 6  # 3 pipelines, stored twice

    def test_corrupt_and_mismatching_entries_are_misses(self, session, tmp_path):
        cache = SweepCache(tmp_path)
        cold = session.run(mode="read", cache=cache)
        for path in cache.entries():
            path.write_text("{ not json", encoding="utf-8")
        again = session.run(mode="read", cache=cache)
        assert again == cold
        assert cache.hits == 0 and cache.misses >= len(cold.values("engine"))

    def test_cache_administration(self, session, tmp_path):
        import repro

        cache = SweepCache(tmp_path)
        session.run(mode="read", cache=cache)
        assert len(cache) == cache.stores > 0
        entry = next(cache.entries())
        # entries are namespaced by package version: a repro upgrade (new cost
        # model) can never serve entries priced by the old code
        from repro.sweep.cache import CACHE_VERSION

        assert entry.parent.parent.name == f"v{CACHE_VERSION}-{repro.__version__}"
        payload = json.loads(entry.read_text())
        assert (payload["version"] == CACHE_VERSION
                and "cell" in payload and "measurements" in payload)
        assert cache.clear() == cache.stores
        assert len(cache) == 0

    def test_cache_true_uses_default_dir(self, monkeypatch, tmp_path, session):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        session.run(mode="read", engines=["pandas"], cache=True)
        assert (tmp_path / "env-cache").is_dir()

    def test_concurrent_same_cell_writers_are_safe(self, session, tmp_path):
        """N threads hammering one cell: no torn reads, no counter drift.

        This is the contention the service's worker pool produces when a
        stampede of identical jobs lands on one cache: every writer renames
        its own temp file over the same path, every reader must observe a
        complete entry (or a miss), and the counters must add up exactly.
        """
        import threading

        cache = SweepCache(tmp_path)
        planned = session.plan("full", engines=["pandas"])[0]
        measurements = planned.execute()
        expected = [m.to_dict() for m in measurements]
        writers, rounds = 12, 5
        loaded: list = []
        errors: list = []
        barrier = threading.Barrier(writers)

        def hammer() -> None:
            try:
                barrier.wait()
                for _ in range(rounds):
                    cache.store(planned.cell, measurements)
                    hit = cache.load(planned.cell)
                    if hit is not None:
                        loaded.append(hit)
            except BaseException as err:  # noqa: BLE001 — surfaced below
                errors.append(err)

        threads = [threading.Thread(target=hammer) for _ in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors

        # every successful load saw a complete entry, never a torn one
        for hit in loaded:
            assert [m.to_dict() for m in hit] == expected
        final = cache.load(planned.cell)
        assert final is not None
        assert [m.to_dict() for m in final] == expected
        # counters are exact under contention (they sit behind a lock)
        assert cache.stores == writers * rounds
        assert cache.hits == len(loaded) + 1
        # no orphaned temp files survive the races
        assert not list(tmp_path.rglob("*.tmp"))
        assert len(cache) == 1


# --------------------------------------------------------------------------- #
# resumability: a killed sweep picks up where it left off
# --------------------------------------------------------------------------- #
class TestResume:
    def test_interrupted_sweep_resumes_from_completed_cells(self, tmp_path, monkeypatch):
        config = ExperimentConfig(scale=0.1, runs=1, datasets=["athlete"],
                                  engines=["pandas", "polars"])
        cache = SweepCache(tmp_path)
        session = Session(config)
        pipeline = session.pipelines_for("athlete")[0]

        real = MatrixRunner.measure_full

        def dies_on_polars(self, engine, frame, pipe, sim, lazy=None, **kwargs):
            if engine.name == "polars":
                raise KeyboardInterrupt("killed mid-sweep")
            return real(self, engine, frame, pipe, sim, lazy, **kwargs)

        monkeypatch.setattr(MatrixRunner, "measure_full", dies_on_polars)
        with pytest.raises(KeyboardInterrupt):
            session.run(mode="full", pipelines=[pipeline], cache=cache)
        assert cache.stores == 1  # pandas completed before the "kill"

        monkeypatch.setattr(MatrixRunner, "measure_full", real)
        resumed = Session(config).run(mode="full", pipelines=[pipeline], cache=cache)
        assert cache.hits == 1  # the pandas cell was not recomputed
        assert [m.engine for m in resumed] == ["pandas", "polars"]
        assert resumed == Session(config).run(mode="full", pipelines=[pipeline])

    def test_parallel_failure_still_caches_completed_cells(self, tmp_path, monkeypatch):
        config = ExperimentConfig(scale=0.1, runs=1, datasets=["athlete"],
                                  engines=["pandas", "polars", "vaex"])
        cache = SweepCache(tmp_path)
        real = MatrixRunner.measure_full

        def dies_on_vaex(self, engine, frame, pipe, sim, lazy=None, **kwargs):
            if engine.name == "vaex":
                raise RuntimeError("boom")
            return real(self, engine, frame, pipe, sim, lazy, **kwargs)

        monkeypatch.setattr(MatrixRunner, "measure_full", dies_on_vaex)
        interrupted = Session(config)
        with pytest.raises(RuntimeError, match="boom"):
            interrupted.run(mode="full", workers=3, cache=cache)
        # the failure cancels queued cells, but every cell that completed
        # before/alongside it is in the cache — and the stats survive the
        # failure so callers can see how far the sweep got
        completed = cache.stores
        assert completed >= 1
        assert interrupted.last_sweep is not None
        assert interrupted.last_sweep.executed == completed
        assert interrupted.last_sweep.failed >= 1

        monkeypatch.setattr(MatrixRunner, "measure_full", real)
        resumed = Session(config).run(mode="full", workers=3, cache=cache)
        assert cache.hits == completed  # nothing completed was recomputed
        assert resumed == Session(config).run(mode="full")


# --------------------------------------------------------------------------- #
# the deprecated runner property and the primary MatrixRunner
# --------------------------------------------------------------------------- #
class TestRunnerProperty:
    def test_matrix_runner_is_primary(self, session):
        assert type(session.matrix_runner) is MatrixRunner
        assert session.matrix_runner is session.matrix_runner
        assert session.matrix_runner.runs == session.config.runs

    def test_legacy_runner_warns(self, session):
        from repro.core.runner import BentoRunner

        with pytest.warns(DeprecationWarning, match="Session.runner is deprecated"):
            legacy = session.runner
        assert isinstance(legacy, BentoRunner)


# --------------------------------------------------------------------------- #
# ResultSet.summary / to_markdown
# --------------------------------------------------------------------------- #
class TestSummaries:
    def test_summary_mentions_counts_and_failures(self, session):
        results = session.run(mode="full", engines=["pandas", "polars"])
        text = results.summary()
        assert f"{len(results)} measurements" in text
        assert "pandas, polars" in text and "athlete" in text
        assert "simulated seconds" in text

    def test_summary_empty(self):
        from repro import ResultSet

        assert ResultSet().summary() == "ResultSet: empty"

    def test_to_markdown_pivot(self, session):
        results = session.run(mode="full", engines=["pandas", "polars"])
        table = results.to_markdown(rows=("dataset", "pipeline"))
        lines = table.splitlines()
        assert lines[0].startswith("| dataset") and "polars" in lines[0]
        assert set(lines[1]) <= {"|", "-"}
        assert len(lines) == 2 + len(session.pipelines_for("athlete"))


# --------------------------------------------------------------------------- #
# CLI: --jobs / --cache-dir / --no-cache / --resume
# --------------------------------------------------------------------------- #
class TestCLI:
    _ARGS = ["--mode", "full", "--engines", "pandas,polars", "--datasets", "athlete",
             "--scale", "0.1", "--runs", "1"]

    def test_jobs_and_cache_dir(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        out = tmp_path / "r.json"
        assert cli_main([*self._ARGS, "--jobs", "2", "--cache-dir", str(cache_dir),
                         "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "0 from cache" in printed and "2 worker(s)" in printed
        assert cache_dir.is_dir() and out.exists()

    def test_resume_serves_from_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert cli_main([*self._ARGS, "--cache-dir", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert cli_main([*self._ARGS, "--jobs", "2", "--cache-dir", str(cache_dir),
                         "--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 executed" in second
        # identical rendered tables, independent of workers and cache state
        assert first.split("[sweep]")[0] == second.split("[sweep]")[0]

    def test_resume_conflicts_with_no_cache(self, capsys):
        with pytest.raises(SystemExit) as err:
            cli_main([*self._ARGS, "--resume", "--no-cache"])
        assert err.value.code == 2
        assert "--resume needs the result cache" in capsys.readouterr().err

    def test_no_cache_prints_no_sweep_line(self, capsys):
        assert cli_main([*self._ARGS, "--no-cache"]) == 0
        assert "[sweep]" not in capsys.readouterr().out
