"""Synthetic Loan dataset (LendingClub loan applications).

Table 2: 1.6 GB CSV, 2 M rows, 151 columns (113 numeric, 38 string), 31 % null
cells, string lengths between 1 and 3988 characters.  The real dataset has a
handful of semantically rich columns (loan amount, interest rate, grade,
purpose, employment) followed by a long tail of sparsely populated numeric
attributes — which is exactly what produces the 31 % null fraction.  The
synthetic version reproduces that structure: a set of named core columns plus
programmatically generated filler columns with high null rates.
"""

from __future__ import annotations

from ..frame.column import Column
from ..frame.frame import DataFrame
from .generator import ColumnFactory

__all__ = ["build_loan"]

_GRADES = ["A", "B", "C", "D", "E", "F", "G"]
_SUB_GRADES = [f"{g}{i}" for g in _GRADES for i in range(1, 6)]
_PURPOSES = ["debt_consolidation", "credit_card", "home_improvement", "major_purchase",
             "small_business", "car", "medical", "moving", "vacation", "house", "other"]
_HOME = ["RENT", "MORTGAGE", "OWN", "ANY"]
_STATUS = ["Fully Paid", "Current", "Charged Off", "Late (31-120 days)",
           "In Grace Period", "Default"]
_STATES = ["CA", "TX", "NY", "FL", "IL", "PA", "OH", "GA", "NC", "NJ", "VA", "WA"]
_EMP_TITLES = ["Teacher", "Manager", "Registered Nurse", "Driver", "Owner", "Supervisor",
               "Engineer", "Sales", "Analyst", "Project Manager", "Accountant"]

#: Core columns below, plus filler columns to reach the Table 2 schema width.
_NUM_CORE = 14
_STR_CORE = 12
_TOTAL_NUMERIC = 113
_TOTAL_STRING = 38


def build_loan(rows: int, seed: int = 7) -> DataFrame:
    """Generate a physical Loan sample with ``rows`` rows (151 columns)."""
    make = ColumnFactory(rows, seed)
    data: dict[str, Column] = {
        # ---- core numeric attributes -------------------------------------
        "id": make.sequence(10_000),
        "loan_amnt": make.uniform(1_000, 40_000),
        "funded_amnt": make.uniform(1_000, 40_000),
        "int_rate": make.uniform(5.0, 31.0),
        "installment": make.uniform(30.0, 1_500.0),
        "annual_inc": make.exponential(70_000, null_fraction=0.02),
        "dti": make.uniform(0.0, 45.0, null_fraction=0.03),
        "delinq_2yrs": make.integers(0, 8, null_fraction=0.02),
        "open_acc": make.integers(1, 40, null_fraction=0.02),
        "pub_rec": make.integers(0, 4, null_fraction=0.02),
        "revol_bal": make.exponential(16_000),
        "revol_util": make.uniform(0.0, 120.0, null_fraction=0.05),
        "total_acc": make.integers(2, 90, null_fraction=0.02),
        "fico_range_low": make.integers(600, 850),
        # ---- core string attributes ---------------------------------------
        "term": make.categories([" 36 months", " 60 months"], weights=[0.7, 0.3]),
        "grade": make.categories(_GRADES),
        "sub_grade": make.categories(_SUB_GRADES),
        "emp_title": make.categories(_EMP_TITLES, null_fraction=0.07),
        "emp_length": make.categories(["< 1 year", "1 year", "2 years", "5 years",
                                       "10+ years"], null_fraction=0.06),
        "home_ownership": make.categories(_HOME),
        "verification_status": make.categories(["Verified", "Source Verified", "Not Verified"]),
        "issue_d": make.date_strings(2012, 2018, fmt="%b-%Y"),
        "loan_status": make.categories(_STATUS),
        "purpose": make.categories(_PURPOSES),
        "addr_state": make.categories(_STATES),
        "desc": make.random_strings(10, 220, null_fraction=0.65),
    }
    # ---- filler numeric columns (sparsely populated, as in the raw dump) ---
    for index in range(_TOTAL_NUMERIC - _NUM_CORE):
        null_fraction = 0.12 + 0.40 * ((index * 37) % 100) / 100.0  # 0.12 .. 0.52
        data[f"attr_num_{index:03d}"] = make.uniform(0.0, 1_000.0,
                                                     null_fraction=min(null_fraction, 0.9))
    # ---- filler string columns ---------------------------------------------
    for index in range(_TOTAL_STRING - _STR_CORE):
        null_fraction = 0.15 + 0.30 * ((index * 53) % 100) / 100.0
        data[f"attr_str_{index:03d}"] = make.codes("FLAG", 12, null_fraction=min(null_fraction, 0.85))
    return DataFrame(data)
