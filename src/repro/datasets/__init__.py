"""Synthetic evaluation datasets and their Kaggle-style pipelines.

Reproduces the four Table 2 datasets (Athlete, Loan, Patrol, Taxi) as
deterministic synthetic generators with the same schema shape, null rates and
string characteristics, plus three data-preparation pipelines per dataset.
"""

from .base import DatasetSpec, GeneratedDataset
from .generator import ColumnFactory
from .pipelines import build_pipelines, get_pipeline, get_pipelines, pipeline_call_counts
from .registry import (
    DATASET_NAMES,
    DATASET_SPECS,
    generate_dataset,
    get_dataset_spec,
    table2,
)

__all__ = [
    "DatasetSpec",
    "GeneratedDataset",
    "ColumnFactory",
    "DATASET_SPECS",
    "DATASET_NAMES",
    "get_dataset_spec",
    "generate_dataset",
    "table2",
    "build_pipelines",
    "get_pipelines",
    "get_pipeline",
    "pipeline_call_counts",
]
