"""Synthetic Athlete dataset (120 Years of Olympic History).

Table 2: 0.03 GB CSV, 0.2 M rows, 15 columns (5 numeric, 10 string), 9 % null
cells, string lengths between 1 and 108 characters.  The real dataset lists
one row per athlete-event result; the synthetic version reproduces the schema
and value distributions that the Kaggle preparation pipelines exercise
(medal nulls, height/weight/age nulls, categorical teams and sports).
"""

from __future__ import annotations

from ..frame.frame import DataFrame
from .generator import ColumnFactory

__all__ = ["build_athlete"]

_SPORTS = ["Athletics", "Swimming", "Gymnastics", "Rowing", "Fencing", "Cycling",
           "Shooting", "Wrestling", "Boxing", "Sailing", "Judo", "Basketball"]
_TEAMS = ["United States", "Italy", "France", "Germany", "China", "Japan", "Brazil",
          "Kenya", "Australia", "Canada", "Norway", "Spain", "Netherlands", "Hungary"]
_NOC = ["USA", "ITA", "FRA", "GER", "CHN", "JPN", "BRA", "KEN", "AUS", "CAN", "NOR",
        "ESP", "NED", "HUN"]
_CITIES = ["London", "Rio de Janeiro", "Beijing", "Athens", "Sydney", "Atlanta",
           "Barcelona", "Seoul", "Los Angeles", "Moscow", "Montreal", "Munich"]
_MEDALS = ["Gold", "Silver", "Bronze"]


def build_athlete(rows: int, seed: int = 7) -> DataFrame:
    """Generate a physical Athlete sample with ``rows`` rows."""
    make = ColumnFactory(rows, seed)
    season = make.categories(["Summer", "Winter"], weights=[0.8, 0.2])
    year = make.year_integers(1896, 2016, step=2)
    games = _compose_games(season, year)
    event_suffix = make.categories(["100m", "200m", "Relay", "Team", "Individual",
                                    "Sprint", "Marathon", "Freestyle", "Heavyweight"])
    sport = make.categories(_SPORTS)
    event = _concat(sport, event_suffix)

    return DataFrame({
        "id": make.sequence(1),
        "name": make.names(),
        "sex": make.categories(["M", "F"], weights=[0.66, 0.34]),
        "age": make.integers(14, 45, null_fraction=0.03),
        "height": make.normal(176.0, 10.0, null_fraction=0.20, clip_low=120),
        "weight": make.normal(72.0, 12.0, null_fraction=0.21, clip_low=30),
        "team": make.categories(_TEAMS),
        "noc": make.categories(_NOC),
        "games": games,
        "year": year,
        "season": season,
        "city": make.categories(_CITIES),
        "sport": sport,
        "event": event,
        "medal": make.categories(_MEDALS, null_fraction=0.85),
    })


def _compose_games(season, year):
    """Compose the ``games`` column as "<year> <season>" strings."""
    from ..frame.column import Column
    from ..frame.dtypes import STRING

    seasons = season.to_list()
    years = year.to_list()
    values = [f"{y} {s}" if (y is not None and s is not None) else None
              for y, s in zip(years, seasons)]
    return Column.from_values(values, STRING)


def _concat(left, right):
    from ..frame import strings as string_ops

    return string_ops.concat_strings(left, right, separator=" ")
