"""Dataset specifications and generated datasets.

A :class:`DatasetSpec` captures the nominal characteristics of one of the four
evaluation datasets (Table 2); :func:`DatasetSpec.generate` materializes a
deterministic physical sample at a configurable scale and wraps it in a
:class:`GeneratedDataset`, which knows how to extrapolate sizes back to the
nominal scale and to build the :class:`~repro.engines.base.SimulationContext`
used by the engines and the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..engines.base import SimulationContext
from ..frame.frame import DataFrame
from ..io import write_csv, write_rparquet
from ..simulate.hardware import PAPER_SERVER, MachineConfig

__all__ = ["DatasetSpec", "GeneratedDataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Nominal description of an evaluation dataset (one row of Table 2)."""

    name: str
    description: str
    nominal_rows: int
    nominal_csv_gb: float
    num_columns: int
    numeric_columns: int
    string_columns: int
    boolean_columns: int
    null_fraction: float
    string_length_range: tuple[int, int]
    #: Physical rows generated at scale=1.0 (kept laptop-friendly).
    default_physical_rows: int
    builder: Callable[[int, int], DataFrame]

    def generate(self, scale: float = 1.0, seed: int = 7) -> "GeneratedDataset":
        """Generate a physical sample.

        ``scale`` multiplies the default physical sample size (not the nominal
        size); the nominal row count always stays at the Table 2 value so the
        cost model prices the experiments at paper scale.
        """
        physical_rows = max(64, int(round(self.default_physical_rows * scale)))
        frame = self.builder(physical_rows, seed)
        return GeneratedDataset(spec=self, frame=frame, seed=seed)

    def table2_row(self, dataset: "GeneratedDataset | None" = None) -> dict:
        """Row of Table 2 for this dataset (measured on the sample if given)."""
        measured_nulls = dataset.frame.null_fraction() if dataset is not None else self.null_fraction
        return {
            "dataset": self.name,
            "csv_size_gb": self.nominal_csv_gb,
            "rows_millions": round(self.nominal_rows / 1e6, 1),
            "columns": self.num_columns,
            "numeric": self.numeric_columns,
            "string": self.string_columns,
            "boolean": self.boolean_columns,
            "null_pct": round(100 * measured_nulls),
            "str_len_range": self.string_length_range,
        }


@dataclass
class GeneratedDataset:
    """A physically generated sample of a dataset specification."""

    spec: DatasetSpec
    frame: DataFrame
    seed: int = 7

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def physical_rows(self) -> int:
        return self.frame.num_rows

    @property
    def nominal_rows(self) -> int:
        return self.spec.nominal_rows

    @property
    def row_scale(self) -> float:
        return self.nominal_rows / max(1, self.physical_rows)

    @property
    def nominal_memory_bytes(self) -> int:
        """In-memory footprint extrapolated to the nominal row count."""
        return int(self.frame.memory_usage() * self.row_scale)

    @property
    def nominal_csv_bytes(self) -> int:
        return int(self.spec.nominal_csv_gb * 1024 ** 3)

    @property
    def nominal_parquet_bytes(self) -> int:
        # Parquet's columnar compression typically shrinks these datasets to
        # roughly a third of the CSV footprint.
        return int(self.nominal_csv_bytes * 0.35)

    # ------------------------------------------------------------------ #
    def frame_for(self, backend: str = "object") -> DataFrame:
        """The physical sample on a column backend (converted once, cached).

        ``frame_for("object")`` returns :attr:`frame` itself; other backends
        are converted lazily and cached on the dataset, so every cell of a
        sweep shares one converted copy per backend.
        """
        from ..frame.backends import convert_frame

        cache = getattr(self, "_backend_frames", None)
        if cache is None:
            cache = {}
            self._backend_frames = cache
        if backend not in cache:
            cache[backend] = convert_frame(self.frame, backend)
        return cache[backend]

    # ------------------------------------------------------------------ #
    def sample(self, fraction: float, seed: int | None = None) -> "GeneratedDataset":
        """A row-sampled copy (the incremental samples of Figure 6 / Table 5).

        The nominal row count of the sample scales with ``fraction`` so that
        cost and memory models price the reduced dataset, exactly like the
        paper's 1 %-100 % samples of Taxi and Patrol.
        """
        sampled_frame = self.frame.sample(fraction, seed=seed if seed is not None else self.seed)
        scaled_spec = DatasetSpec(
            name=f"{self.spec.name}-{int(round(fraction * 100))}pct",
            description=self.spec.description,
            nominal_rows=max(1, int(round(self.spec.nominal_rows * fraction))),
            nominal_csv_gb=self.spec.nominal_csv_gb * fraction,
            num_columns=self.spec.num_columns,
            numeric_columns=self.spec.numeric_columns,
            string_columns=self.spec.string_columns,
            boolean_columns=self.spec.boolean_columns,
            null_fraction=self.spec.null_fraction,
            string_length_range=self.spec.string_length_range,
            default_physical_rows=self.spec.default_physical_rows,
            builder=self.spec.builder,
        )
        return GeneratedDataset(spec=scaled_spec, frame=sampled_frame, seed=self.seed)

    # ------------------------------------------------------------------ #
    def simulation_context(self, machine: MachineConfig = PAPER_SERVER,
                           runs: int = 10, backend: str = "object"
                           ) -> SimulationContext:
        """Simulation context tying this sample to its nominal size.

        ``backend`` prices the sample on a specific column backend: the
        per-column byte footprints are measured on the converted frame, so a
        dictionary-encoded sweep is costed on its (smaller) physical columns.
        """
        frame = self.frame_for(backend)
        column_bytes = {name: int(frame[name].memory_usage() * self.row_scale)
                        for name in frame.columns}
        return SimulationContext(
            machine=machine,
            nominal_rows=self.nominal_rows,
            physical_rows=self.physical_rows,
            dataset_bytes=sum(column_bytes.values()),
            csv_bytes=self.nominal_csv_bytes,
            parquet_bytes=self.nominal_parquet_bytes,
            column_bytes=column_bytes,
            dataset_name=self.name,
            runs=runs,
            backend=backend,
        )

    # ------------------------------------------------------------------ #
    def write_files(self, directory: "str | Path") -> dict[str, Path]:
        """Write the physical sample as CSV and rparquet (for I/O experiments)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        csv_path = directory / f"{self.name}.csv"
        parquet_path = directory / f"{self.name}.rparquet"
        write_csv(self.frame, csv_path)
        write_rparquet(self.frame, parquet_path)
        return {"csv": csv_path, "rparquet": parquet_path}

    def __repr__(self) -> str:  # pragma: no cover
        return (f"GeneratedDataset({self.name}, physical_rows={self.physical_rows}, "
                f"nominal_rows={self.nominal_rows})")
