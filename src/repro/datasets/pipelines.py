"""Data-preparation pipelines for the four datasets.

The paper extracts, for every dataset, the data-preparation sections of the
three top-voted Kaggle notebooks (the part preceding model training).  Those
notebooks are not redistributable, so the pipelines below are reconstructed to
exercise the same preparator mix per dataset that Figure 2 reports (e.g. the
Patrol pipelines are dominated by ``group``, ``chdate`` and ``dropna``; the
Taxi pipelines by ``calccol``, ``group`` and date handling; the Loan pipelines
by ``dropna``/``fillna`` over the sparse columns and by ``outlier``/``dedup``).

Per the paper, the *first* pipeline of each dataset is the most expensive one
(roughly 3x the others) and is the one used for the scalability study.
"""

from __future__ import annotations

from ..core.pipeline import Pipeline

__all__ = ["build_pipelines", "get_pipelines", "get_pipeline", "pipeline_call_counts"]


# --------------------------------------------------------------------------- #
# Athlete
# --------------------------------------------------------------------------- #
def _athlete_pipelines() -> list[Pipeline]:
    first = Pipeline.from_steps("athlete-1", "athlete", [
        ("read", {}),
        ("getcols", {}),
        ("isna", {}),
        ("fillna", {"value": {"medal": "None"}}),
        ("fillna", {"value": {"height": 175.0, "weight": 70.0}}),
        ("query", {"predicate": {"op": ">", "left": {"col": "year"}, "right": {"lit": 1950}}}),
        ("calccol", {"target": "bmi",
                     "expression": {"op": "/", "left": {"col": "weight"},
                                    "right": {"op": "*", "left": {"col": "height"},
                                              "right": {"col": "height"}}}}),
        ("calccol", {"target": "age_decade",
                     "expression": {"op": "/", "left": {"col": "age"}, "right": {"lit": 10}}}),
        ("cast", {"columns": {"age": "float64"}}),
        ("sort", {"by": ["year", "team"]}),
        ("group", {"by": ["team"], "agg": {"bmi": "mean", "age": "mean"}}),
        ("join", {"with": {"by": ["noc"], "agg": {"weight": "mean"}}, "how": "left"}),
        ("onehot", {"column": "season"}),
        ("dedup", {"subset": ["id"]}),
        ("edit", {"column": "name", "function": "strip"}),
        ("replace", {"column": "sex", "mapping": {"M": "male", "F": "female"}}),
        ("write", {}),
    ], description="Medal and physique analysis (most expensive pipeline)")

    second = Pipeline.from_steps("athlete-2", "athlete", [
        ("read", {}),
        ("dtypes", {}),
        ("stats", {}),
        ("query", {"predicate": {"op": "==", "left": {"col": "season"},
                                 "right": {"lit": "Summer"}}}),
        ("query", {"predicate": {"fn": "not_null", "arg": {"col": "medal"}}}),
        ("group", {"by": ["noc"], "agg": {"id": "count"}}),
        ("group", {"by": ["sport", "sex"], "agg": {"height": "mean", "weight": "mean"}}),
        ("calccol", {"target": "height_m",
                     "expression": {"op": "/", "left": {"col": "height"}, "right": {"lit": 100}}}),
        ("fillna", {"value": {"age": 25}}),
        ("edit", {"column": "team", "function": "upper"}),
    ], description="Medal tables per country and sport")

    third = Pipeline.from_steps("athlete-3", "athlete", [
        ("read", {}),
        ("getcols", {}),
        ("isna", {}),
        ("dropna", {"subset": ["age", "height", "weight"]}),
        ("query", {"predicate": {"fn": "isin", "arg": {"col": "sport"},
                                 "values": ["Athletics", "Swimming", "Gymnastics"]}}),
        ("sort", {"by": ["year"]}),
        ("group", {"by": ["year", "season"], "agg": {"age": "mean"}}),
        ("pivot", {"index": "season", "columns": "sex", "values": "age", "aggfunc": "mean"}),
        ("fillna", {"value": {"medal": "None"}}),
        ("onehot", {"column": "medal"}),
        ("rename", {"mapping": {"noc": "country_code"}}),
        ("edit", {"column": "city", "function": "upper"}),
        ("replace", {"column": "season", "mapping": {"Summer": "S", "Winter": "W"}}),
    ], description="Longitudinal trends of athlete features")
    return [first, second, third]


# --------------------------------------------------------------------------- #
# Loan
# --------------------------------------------------------------------------- #
def _loan_pipelines() -> list[Pipeline]:
    first = Pipeline.from_steps("loan-1", "loan", [
        ("read", {}),
        ("getcols", {}),
        ("dtypes", {}),
        ("isna", {}),
        ("outlier", {"column": "annual_inc"}),
        ("drop", {"columns": ["desc", "attr_str_000", "attr_str_001"]}),
        ("dropna", {"subset": ["loan_amnt", "int_rate", "annual_inc"]}),
        ("dedup", {"subset": ["id"]}),
        ("query", {"predicate": {"op": "<", "left": {"col": "dti"}, "right": {"lit": 40}}}),
        ("chdate", {"columns": ["issue_d"]}),
        ("catenc", {"columns": ["grade", "sub_grade", "purpose"]}),
        ("onehot", {"column": "home_ownership"}),
        ("calccol", {"target": "installment_ratio",
                     "expression": {"op": "/", "left": {"col": "installment"},
                                    "right": {"col": "loan_amnt"}}}),
        ("norm", {"columns": ["loan_amnt", "annual_inc"], "method": "zscore"}),
        ("group", {"by": ["grade"], "agg": {"int_rate": "mean", "loan_amnt": "mean"}}),
        ("fillna", {"value": {"revol_util": 0.0, "dti": 0.0}}),
        ("setcase", {"columns": ["emp_title"], "mode": "lower"}),
        ("write", {}),
    ], description="Credit-risk feature engineering (most expensive pipeline)")

    second = Pipeline.from_steps("loan-2", "loan", [
        ("read", {}),
        ("stats", {}),
        ("isna", {}),
        ("outlier", {"column": "dti"}),
        ("sort", {"by": ["int_rate"], "ascending": False}),
        ("query", {"predicate": {"op": "==", "left": {"col": "loan_status"},
                                 "right": {"lit": "Charged Off"}}}),
        ("group", {"by": ["purpose"], "agg": {"loan_amnt": "mean", "int_rate": "mean"}}),
        ("catenc", {"columns": ["term", "verification_status"]}),
        ("fillna", {"value": {"emp_title": "unknown"}}),
        ("chdate", {"columns": ["issue_d"]}),
        ("edit", {"column": "emp_length", "function": "strip"}),
        ("dropna", {"subset": ["revol_util"]}),
    ], description="Default-rate exploration by purpose")

    third = Pipeline.from_steps("loan-3", "loan", [
        ("read", {}),
        ("getcols", {}),
        ("dtypes", {}),
        ("isna", {}),
        ("drop", {"columns": ["attr_str_002", "attr_str_003", "attr_num_000"]}),
        ("dropna", {"subset": ["fico_range_low"], "how": "any"}),
        ("query", {"predicate": {"op": ">", "left": {"col": "annual_inc"}, "right": {"lit": 10000}}}),
        ("sort", {"by": ["annual_inc"]}),
        ("calccol", {"target": "income_to_loan",
                     "expression": {"op": "/", "left": {"col": "annual_inc"},
                                    "right": {"col": "loan_amnt"}}}),
        ("calccol", {"target": "high_fico",
                     "expression": {"op": ">", "left": {"col": "fico_range_low"},
                                    "right": {"lit": 720}}}),
        ("group", {"by": ["addr_state"], "agg": {"loan_amnt": "sum"}}),
        ("onehot", {"column": "grade"}),
        ("fillna", {"value": 0}),
        ("norm", {"columns": ["revol_bal"]}),
        ("replace", {"column": "term", "mapping": {" 36 months": "36", " 60 months": "60"}}),
        ("setcase", {"columns": ["purpose"], "mode": "upper"}),
    ], description="State-level lending profile")
    return [first, second, third]


# --------------------------------------------------------------------------- #
# Patrol
# --------------------------------------------------------------------------- #
def _patrol_pipelines() -> list[Pipeline]:
    first = Pipeline.from_steps("patrol-1", "patrol", [
        ("read", {}),
        ("getcols", {}),
        ("dtypes", {}),
        ("isna", {}),
        ("stats", {}),
        ("chdate", {"columns": ["date"]}),
        ("dropna", {"subset": ["subject_age", "subject_race"]}),
        ("query", {"predicate": {"op": ">", "left": {"col": "subject_age"}, "right": {"lit": 17}}}),
        ("query", {"predicate": {"op": "==", "left": {"col": "type"},
                                 "right": {"lit": "vehicular"}}}),
        ("srchptn", {"column": "violation", "pattern": "speed"}),
        ("calccol", {"target": "is_arrest",
                     "expression": {"op": "==", "left": {"col": "arrest_made"},
                                    "right": {"lit": "TRUE"}}}),
        ("cast", {"columns": {"subject_age": "float64"}}),
        ("group", {"by": ["county_name"], "agg": {"raw_row_number": "count"}}),
        ("group", {"by": ["subject_race"], "agg": {"subject_age": "mean"}}),
        ("group", {"by": ["county_name", "subject_race"], "agg": {"raw_row_number": "count"}}),
        ("drop", {"columns": ["notes", "officer_assignment"]}),
        ("sort", {"by": ["date"]}),
        ("write", {}),
    ], description="Stop-rate analysis by county and race (most expensive pipeline)")

    second = Pipeline.from_steps("patrol-2", "patrol", [
        ("read", {}),
        ("getcols", {}),
        ("isna", {}),
        ("query", {"predicate": {"op": "==", "left": {"col": "search_conducted"},
                                 "right": {"lit": True}}}),
        ("query", {"predicate": {"fn": "not_null", "arg": {"col": "search_basis"}}}),
        ("query", {"predicate": {"fn": "not_null", "arg": {"col": "outcome"}}}),
        ("query", {"predicate": {"fn": "contains", "arg": {"col": "county_name"},
                                 "pattern": "San"}}),
        ("srchptn", {"column": "search_basis", "pattern": "consent"}),
        ("calccol", {"target": "found",
                     "expression": {"op": "==", "left": {"col": "contraband_found"},
                                    "right": {"lit": True}}}),
        ("calccol", {"target": "age_band",
                     "expression": {"op": "/", "left": {"col": "subject_age"},
                                    "right": {"lit": 10}}}),
        ("calccol", {"target": "officer_young",
                     "expression": {"op": "<", "left": {"col": "officer_id"},
                                    "right": {"lit": 50000}}}),
        ("calccol", {"target": "lat_band",
                     "expression": {"op": "/", "left": {"col": "lat"}, "right": {"lit": 2}}}),
        ("cast", {"columns": {"officer_id": "float64", "subject_age": "float64"}}),
        ("cast", {"columns": {"lat": "float64", "lng": "float64"}}),
        ("cast", {"columns": {"raw_row_number": "float64"}}),
        ("group", {"by": ["search_basis"], "agg": {"raw_row_number": "count"}}),
        ("group", {"by": ["outcome"], "agg": {"subject_age": "mean"}}),
        ("group", {"by": ["county_name"], "agg": {"lat": "mean", "lng": "mean"}}),
        ("group", {"by": ["subject_sex"], "agg": {"raw_row_number": "count"}}),
        ("group", {"by": ["vehicle_make"], "agg": {"raw_row_number": "count"}}),
        ("group", {"by": ["violation"], "agg": {"raw_row_number": "count"}}),
        ("chdate", {"columns": ["date"]}),
        ("dropna", {"subset": ["lat", "lng"]}),
    ], description="Search and contraband analysis")

    third = Pipeline.from_steps("patrol-3", "patrol", [
        ("read", {}),
        ("getcols", {}),
        ("getcols", {}),
        ("dtypes", {}),
        ("stats", {}),
        ("isna", {}),
        ("query", {"predicate": {"fn": "not_null", "arg": {"col": "violation"}}}),
        ("query", {"predicate": {"op": ">", "left": {"col": "subject_age"}, "right": {"lit": 15}}}),
        ("query", {"predicate": {"op": "<", "left": {"col": "subject_age"}, "right": {"lit": 90}}}),
        ("query", {"predicate": {"op": "==", "left": {"col": "subject_sex"},
                                 "right": {"lit": "male"}}}),
        ("query", {"predicate": {"fn": "contains", "arg": {"col": "violation"},
                                 "pattern": "speed|dui"}}),
        ("srchptn", {"column": "department_name", "pattern": "PD"}),
        ("calccol", {"target": "decade",
                     "expression": {"op": "/", "left": {"col": "subject_age"},
                                    "right": {"lit": 10}}}),
        ("calccol", {"target": "south",
                     "expression": {"op": "<", "left": {"col": "lat"}, "right": {"lit": 35.0}}}),
        ("cast", {"columns": {"subject_age": "float64"}}),
        ("cast", {"columns": {"officer_id": "float64"}}),
        ("group", {"by": ["violation"], "agg": {"raw_row_number": "count"}}),
        ("drop", {"columns": ["notes"]}),
        ("chdate", {"columns": ["date", "subject_dob"]}),
        ("dropna", {"subset": ["county_name"]}),
        ("sort", {"by": ["county_name", "date"]}),
    ], description="Violation mix per demographic group")
    return [first, second, third]


# --------------------------------------------------------------------------- #
# Taxi
# --------------------------------------------------------------------------- #
def _taxi_pipelines() -> list[Pipeline]:
    first = Pipeline.from_steps("taxi-1", "taxi", [
        ("read", {}),
        ("getcols", {}),
        ("isna", {}),
        ("chdate", {"columns": ["pickup_datetime", "dropoff_datetime"]}),
        ("query", {"predicate": {"op": ">", "left": {"col": "fare_amount"}, "right": {"lit": 0}}}),
        ("query", {"predicate": {"op": ">", "left": {"col": "trip_distance"}, "right": {"lit": 0}}}),
        ("query", {"predicate": {"op": "<", "left": {"col": "passenger_count"}, "right": {"lit": 7}}}),
        ("calccol", {"target": "fare_per_mile",
                     "expression": {"op": "/", "left": {"col": "fare_amount"},
                                    "right": {"col": "trip_distance"}}}),
        ("calccol", {"target": "tip_fraction",
                     "expression": {"op": "/", "left": {"col": "tip_amount"},
                                    "right": {"col": "total_amount"}}}),
        ("calccol", {"target": "pickup_hour",
                     "expression": {"fn": "hour", "arg": {"col": "pickup_datetime"}}}),
        ("calccol", {"target": "pickup_weekday",
                     "expression": {"fn": "weekday", "arg": {"col": "pickup_datetime"}}}),
        ("calccol", {"target": "is_long_trip",
                     "expression": {"op": ">", "left": {"col": "trip_distance"},
                                    "right": {"lit": 10}}}),
        ("cast", {"columns": {"passenger_count": "float64"}}),
        ("catenc", {"columns": ["store_and_fwd_flag"]}),
        ("group", {"by": ["passenger_count"], "agg": {"fare_amount": "mean",
                                                      "trip_distance": "mean"}}),
        ("group", {"by": ["vendor_id"], "agg": {"total_amount": "sum"}}),
        ("group", {"by": ["rate_code_id"], "agg": {"tip_amount": "mean"}}),
        ("group", {"by": ["pickup_hour"], "agg": {"fare_amount": "mean"}}),
        ("onehot", {"column": "store_and_fwd_flag"}),
        ("pivot", {"index": "vendor_id", "columns": "rate_code_id", "values": "fare_amount",
                   "aggfunc": "mean"}),
        ("sort", {"by": ["pickup_datetime"]}),
        ("drop", {"columns": ["improvement_surcharge", "mta_tax"]}),
        ("edit", {"column": "total_amount", "function": "round"}),
        ("write", {}),
    ], description="Trip-duration feature engineering (most expensive pipeline)")

    second = Pipeline.from_steps("taxi-2", "taxi", [
        ("read", {}),
        ("getcols", {}),
        ("dtypes", {}),
        ("isna", {}),
        ("isna", {}),
        ("query", {"predicate": {"op": ">", "left": {"col": "total_amount"}, "right": {"lit": 0}}}),
        ("query", {"predicate": {"op": "<", "left": {"col": "trip_distance"}, "right": {"lit": 60}}}),
        ("query", {"predicate": {"op": ">=", "left": {"col": "pickup_latitude"},
                                 "right": {"lit": 40.6}}}),
        ("calccol", {"target": "dlat",
                     "expression": {"op": "-", "left": {"col": "dropoff_latitude"},
                                    "right": {"col": "pickup_latitude"}}}),
        ("calccol", {"target": "dlng",
                     "expression": {"op": "-", "left": {"col": "dropoff_longitude"},
                                    "right": {"col": "pickup_longitude"}}}),
        ("calccol", {"target": "manhattan_distance",
                     "expression": {"op": "+", "left": {"col": "dlat"}, "right": {"col": "dlng"}}}),
        ("calccol", {"target": "speed_proxy",
                     "expression": {"op": "/", "left": {"col": "trip_distance"},
                                    "right": {"op": "+", "left": {"col": "fare_amount"},
                                              "right": {"lit": 1}}}}),
        ("calccol", {"target": "expensive",
                     "expression": {"op": ">", "left": {"col": "fare_amount"},
                                    "right": {"lit": 30}}}),
        ("cast", {"columns": {"vendor_id": "float64"}}),
        ("chdate", {"columns": ["pickup_datetime"]}),
        ("chdate", {"columns": ["dropoff_datetime"]}),
        ("group", {"by": ["passenger_count"], "agg": {"tip_amount": "mean"}}),
        ("sort", {"by": ["total_amount"], "ascending": False}),
        ("stats", {}),
        ("edit", {"column": "trip_distance", "function": "round"}),
    ], description="Geographic displacement features")

    third = Pipeline.from_steps("taxi-3", "taxi", [
        ("read", {}),
        ("getcols", {}),
        ("stats", {}),
        ("query", {"predicate": {"op": ">", "left": {"col": "tip_amount"}, "right": {"lit": 0}}}),
        ("query", {"predicate": {"op": "<", "left": {"col": "fare_amount"}, "right": {"lit": 200}}}),
        ("query", {"predicate": {"op": ">", "left": {"col": "trip_distance"}, "right": {"lit": 0.2}}}),
        ("calccol", {"target": "tip_rate",
                     "expression": {"op": "/", "left": {"col": "tip_amount"},
                                    "right": {"col": "fare_amount"}}}),
        ("calccol", {"target": "total_check",
                     "expression": {"op": "+", "left": {"col": "fare_amount"},
                                    "right": {"col": "tip_amount"}}}),
        ("calccol", {"target": "pickup_month",
                     "expression": {"fn": "month", "arg": {"col": "pickup_datetime"}}}),
        ("calccol", {"target": "generous",
                     "expression": {"op": ">", "left": {"col": "tip_rate"},
                                    "right": {"lit": 0.25}}}),
        ("calccol", {"target": "fare_bucket",
                     "expression": {"op": "/", "left": {"col": "fare_amount"},
                                    "right": {"lit": 10}}}),
        ("catenc", {"columns": ["store_and_fwd_flag"]}),
        ("group", {"by": ["vendor_id"], "agg": {"tip_rate": "mean"}}),
        ("group", {"by": ["passenger_count"], "agg": {"tip_rate": "mean"}}),
        ("group", {"by": ["rate_code_id"], "agg": {"fare_amount": "mean"}}),
        ("group", {"by": ["store_and_fwd_flag"], "agg": {"total_amount": "mean"}}),
        ("group", {"by": ["generous"], "agg": {"trip_distance": "mean"}}),
        ("pivot", {"index": "vendor_id", "columns": "passenger_count", "values": "tip_rate",
                   "aggfunc": "mean"}),
        ("sort", {"by": ["tip_rate"], "ascending": False}),
        ("chdate", {"columns": ["pickup_datetime", "dropoff_datetime"]}),
        ("edit", {"column": "tip_rate", "function": "round"}),
        ("dtypes", {}),
    ], description="Tipping behaviour analysis")
    return [first, second, third]


_BUILDERS = {
    "athlete": _athlete_pipelines,
    "loan": _loan_pipelines,
    "patrol": _patrol_pipelines,
    "taxi": _taxi_pipelines,
}


def build_pipelines() -> dict[str, list[Pipeline]]:
    """All pipelines, keyed by dataset name (three per dataset)."""
    return {name: builder() for name, builder in _BUILDERS.items()}


def get_pipelines(dataset: str) -> list[Pipeline]:
    """The three pipelines of one dataset (index 0 is the most expensive)."""
    try:
        return _BUILDERS[dataset]()
    except KeyError:
        raise KeyError(f"unknown dataset {dataset!r}; available: {sorted(_BUILDERS)}") from None


def get_pipeline(dataset: str, index: int = 0) -> Pipeline:
    """One pipeline of a dataset by positional index (0, 1 or 2)."""
    pipelines = get_pipelines(dataset)
    if not 0 <= index < len(pipelines):
        raise IndexError(f"pipeline index {index} out of range for dataset {dataset!r}")
    return pipelines[index]


def pipeline_call_counts(dataset: str) -> dict[str, list[int]]:
    """Per-preparator call counts across the three pipelines (Figure 2 header)."""
    pipelines = get_pipelines(dataset)
    names: dict[str, list[int]] = {}
    for position, pipeline in enumerate(pipelines):
        for preparator, count in pipeline.call_counts().items():
            names.setdefault(preparator, [0] * len(pipelines))[position] = count
    return names
