"""Synthetic Patrol dataset (Stanford Open Policing Project, California stops).

Table 2: 6.7 GB CSV, 27 M rows, 34 columns (5 numeric, 27 string, 2 boolean),
22 % null cells, string lengths between 1 and 2293 characters.  Rows describe
traffic stops: timestamps, locations, officer and subject attributes, outcome
codes and free-text fields; many string columns are sparsely populated, which
drives the high null fraction.
"""

from __future__ import annotations

from ..frame.column import Column
from ..frame.frame import DataFrame
from .generator import ColumnFactory

__all__ = ["build_patrol"]

_COUNTIES = ["Los Angeles", "San Diego", "Orange", "Riverside", "San Bernardino",
             "Santa Clara", "Alameda", "Sacramento", "Contra Costa", "Fresno"]
_AGENCIES = ["CHP", "LAPD", "SDPD", "SFPD", "SJPD", "OPD", "FPD"]
_RACES = ["white", "hispanic", "black", "asian/pacific islander", "other"]
_OUTCOMES = ["warning", "citation", "arrest", None]
_VIOLATIONS = ["speeding", "registration", "equipment", "seatbelt", "dui",
               "cell phone", "stop sign", "red light", "lane change"]
_SEARCH_BASIS = ["consent", "probable cause", "incident to arrest", "inventory"]


def build_patrol(rows: int, seed: int = 7) -> DataFrame:
    """Generate a physical Patrol sample with ``rows`` rows (34 columns)."""
    make = ColumnFactory(rows, seed)
    data: dict[str, Column] = {
        # ---- numeric (5) ---------------------------------------------------
        "raw_row_number": make.sequence(1),
        "subject_age": make.integers(15, 95, null_fraction=0.12),
        "officer_id": make.integers(1_000, 99_999),
        "lat": make.uniform(32.5, 42.0, null_fraction=0.30),
        "lng": make.uniform(-124.4, -114.1, null_fraction=0.30),
        # ---- boolean (2) ----------------------------------------------------
        "search_conducted": make.booleans(0.05),
        "contraband_found": make.booleans(0.02, null_fraction=0.45),
        # ---- strings (27) ---------------------------------------------------
        "date": make.date_strings(2009, 2016),
        "time": make.categories([f"{h:02d}:{m:02d}" for h in range(24) for m in (0, 15, 30, 45)]),
        "location": make.random_strings(8, 60, null_fraction=0.25),
        "county_name": make.categories(_COUNTIES),
        "district": make.codes("D", 40, null_fraction=0.35),
        "beat": make.codes("BEAT", 200, null_fraction=0.40),
        "subject_race": make.categories(_RACES, null_fraction=0.05),
        "subject_sex": make.categories(["male", "female"], weights=[0.68, 0.32],
                                       null_fraction=0.04),
        "officer_race": make.categories(_RACES, null_fraction=0.30),
        "officer_sex": make.categories(["male", "female"], weights=[0.85, 0.15],
                                       null_fraction=0.28),
        "department_id": make.codes("DEP", 60),
        "department_name": make.categories(_AGENCIES),
        "type": make.categories(["vehicular", "pedestrian"], weights=[0.95, 0.05]),
        "violation": make.categories(_VIOLATIONS, null_fraction=0.10),
        "arrest_made": make.categories(["TRUE", "FALSE"], weights=[0.03, 0.97],
                                       null_fraction=0.15),
        "citation_issued": make.categories(["TRUE", "FALSE"], weights=[0.55, 0.45],
                                           null_fraction=0.15),
        "warning_issued": make.categories(["TRUE", "FALSE"], weights=[0.35, 0.65],
                                          null_fraction=0.15),
        "outcome": make.categories([o for o in _OUTCOMES if o], null_fraction=0.22),
        "search_basis": make.categories(_SEARCH_BASIS, null_fraction=0.93),
        "reason_for_stop": make.categories(_VIOLATIONS, null_fraction=0.18),
        "vehicle_make": make.categories(["TOYOTA", "FORD", "HONDA", "CHEVROLET", "NISSAN",
                                         "BMW", "DODGE", "HYUNDAI"], null_fraction=0.35),
        "vehicle_model": make.codes("MODEL", 300, null_fraction=0.45),
        "vehicle_color": make.categories(["black", "white", "silver", "gray", "blue", "red"],
                                         null_fraction=0.38),
        "vehicle_year": make.categories([str(y) for y in range(1990, 2017)],
                                        null_fraction=0.40),
        "officer_assignment": make.random_strings(4, 40, null_fraction=0.55),
        "notes": make.random_strings(10, 200, null_fraction=0.80),
        "subject_dob": make.date_strings(1930, 2001, null_fraction=0.20),
    }
    return DataFrame(data)
