"""Column generation primitives for the synthetic datasets.

The paper evaluates on four Kaggle datasets that cannot be redistributed or
downloaded in this environment (Table 2: Athlete, Loan, Patrol, Taxi).  The
generators below produce deterministic synthetic data reproducing the
*features* that drive the evaluation — row counts, column counts, dtype mix,
null percentage, string-length ranges — at a configurable physical scale.
"""

from __future__ import annotations

import string
from typing import Sequence

import numpy as np

from ..frame.column import Column
from ..frame.dtypes import BOOL, FLOAT64, INT64, STRING

__all__ = [
    "ColumnFactory",
]

_ALPHABET = np.array(list(string.ascii_letters + string.digits + "    "), dtype="<U1")


class ColumnFactory:
    """Deterministic generator of substrate columns.

    All methods are seeded through the factory's random generator, so the same
    (seed, rows) pair always produces identical data — required for the
    reproducibility of every figure.
    """

    def __init__(self, rows: int, seed: int = 7):
        if rows <= 0:
            raise ValueError("rows must be positive")
        self.rows = rows
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # null injection
    # ------------------------------------------------------------------ #
    def _with_nulls(self, values: list, null_fraction: float) -> list:
        if null_fraction <= 0:
            return values
        mask = self.rng.random(self.rows) < null_fraction
        return [None if m else v for v, m in zip(values, mask)]

    # ------------------------------------------------------------------ #
    # numeric columns
    # ------------------------------------------------------------------ #
    def sequence(self, start: int = 0) -> Column:
        """Monotonically increasing integer identifier."""
        return Column.from_values(list(range(start, start + self.rows)), INT64)

    def integers(self, low: int, high: int, null_fraction: float = 0.0) -> Column:
        values = self.rng.integers(low, high, size=self.rows).tolist()
        return Column.from_values(self._with_nulls(values, null_fraction),
                                  INT64 if null_fraction == 0 else None)

    def normal(self, mean: float, std: float, null_fraction: float = 0.0,
               clip_low: float | None = None) -> Column:
        values = self.rng.normal(mean, std, size=self.rows)
        if clip_low is not None:
            values = np.maximum(values, clip_low)
        return Column.from_values(self._with_nulls(values.tolist(), null_fraction), FLOAT64)

    def exponential(self, scale: float, null_fraction: float = 0.0) -> Column:
        values = self.rng.exponential(scale, size=self.rows).tolist()
        return Column.from_values(self._with_nulls(values, null_fraction), FLOAT64)

    def uniform(self, low: float, high: float, null_fraction: float = 0.0) -> Column:
        values = self.rng.uniform(low, high, size=self.rows).tolist()
        return Column.from_values(self._with_nulls(values, null_fraction), FLOAT64)

    def booleans(self, true_fraction: float = 0.5, null_fraction: float = 0.0) -> Column:
        values = (self.rng.random(self.rows) < true_fraction).tolist()
        return Column.from_values(self._with_nulls(values, null_fraction), BOOL)

    # ------------------------------------------------------------------ #
    # string columns
    # ------------------------------------------------------------------ #
    def categories(self, vocabulary: Sequence[str], null_fraction: float = 0.0,
                   weights: Sequence[float] | None = None) -> Column:
        """Strings drawn from a fixed vocabulary (skewed if weights are given)."""
        vocab = list(vocabulary)
        probabilities = None
        if weights is not None:
            weights = np.asarray(list(weights), dtype=np.float64)
            probabilities = weights / weights.sum()
        picks = self.rng.choice(len(vocab), size=self.rows, p=probabilities)
        values = [vocab[i] for i in picks]
        return Column.from_values(self._with_nulls(values, null_fraction), STRING)

    def random_strings(self, min_length: int, max_length: int,
                       null_fraction: float = 0.0) -> Column:
        """Free-text strings with lengths uniform in [min_length, max_length]."""
        lengths = self.rng.integers(min_length, max_length + 1, size=self.rows)
        # Draw all characters at once, then split per row (fast enough for the
        # physical sample sizes used here).
        total = int(lengths.sum())
        chars = self.rng.choice(_ALPHABET, size=max(total, 1))
        values: list[str] = []
        offset = 0
        for length in lengths:
            values.append("".join(chars[offset:offset + length]))
            offset += length
        return Column.from_values(self._with_nulls(values, null_fraction), STRING)

    def codes(self, prefix: str, cardinality: int, null_fraction: float = 0.0) -> Column:
        """Identifier-like strings such as ``ZONE-042``."""
        picks = self.rng.integers(0, cardinality, size=self.rows)
        values = [f"{prefix}{int(p):04d}" for p in picks]
        return Column.from_values(self._with_nulls(values, null_fraction), STRING)

    def names(self, null_fraction: float = 0.0) -> Column:
        """Person-like names (first + last drawn from small vocabularies)."""
        first = ["Alice", "Bruno", "Chen", "Dalia", "Elena", "Farid", "Giulia", "Hugo",
                 "Ines", "Jonas", "Karim", "Lena", "Marco", "Nadia", "Omar", "Paula"]
        last = ["Rossi", "Smith", "Tanaka", "Oliveira", "Martin", "Kowalski", "Novak",
                "Garcia", "Dubois", "Hansen", "Ricci", "Moreau", "Silva", "Weber"]
        f = self.rng.integers(0, len(first), size=self.rows)
        l = self.rng.integers(0, len(last), size=self.rows)
        values = [f"{first[i]} {last[j]}" for i, j in zip(f, l)]
        return Column.from_values(self._with_nulls(values, null_fraction), STRING)

    # ------------------------------------------------------------------ #
    # temporal columns (kept as strings: raw CSV data arrives as text)
    # ------------------------------------------------------------------ #
    def date_strings(self, start_year: int, end_year: int, fmt: str = "%Y-%m-%d",
                     with_time: bool = False, null_fraction: float = 0.0) -> Column:
        years = self.rng.integers(start_year, end_year + 1, size=self.rows)
        months = self.rng.integers(1, 13, size=self.rows)
        days = self.rng.integers(1, 29, size=self.rows)
        if with_time:
            hours = self.rng.integers(0, 24, size=self.rows)
            minutes = self.rng.integers(0, 60, size=self.rows)
            values = [f"{y:04d}-{m:02d}-{d:02d} {h:02d}:{mi:02d}:00"
                      for y, m, d, h, mi in zip(years, months, days, hours, minutes)]
        else:
            values = [f"{y:04d}-{m:02d}-{d:02d}" for y, m, d in zip(years, months, days)]
        return Column.from_values(self._with_nulls(values, null_fraction), STRING)

    def year_integers(self, start_year: int, end_year: int, step: int = 1,
                      null_fraction: float = 0.0) -> Column:
        choices = np.arange(start_year, end_year + 1, step)
        picks = self.rng.choice(choices, size=self.rows)
        return Column.from_values(self._with_nulls([int(v) for v in picks], null_fraction), INT64)
