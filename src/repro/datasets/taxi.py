"""Synthetic Taxi dataset (New York City taxi trips, 2015).

Table 2: 10.9 GB CSV, 77 M rows, 18 columns (15 numeric, 3 string), no null
cells, string lengths between 1 and 19 characters.  Rows are individual trips
with pickup/dropoff timestamps, coordinates, distances and fare components —
an almost entirely numeric dataset, which is why the paper highlights it for
column-wise engines like Vaex.
"""

from __future__ import annotations

from ..frame.column import Column
from ..frame.frame import DataFrame
from .generator import ColumnFactory

__all__ = ["build_taxi"]


def build_taxi(rows: int, seed: int = 7) -> DataFrame:
    """Generate a physical Taxi sample with ``rows`` rows (18 columns)."""
    make = ColumnFactory(rows, seed)
    distance = make.exponential(3.0)
    fare = _fare_from_distance(distance, make)
    tip = make.exponential(1.8)
    tolls = make.exponential(0.4)
    data: dict[str, Column] = {
        # ---- numeric (15) ---------------------------------------------------
        "vendor_id": make.integers(1, 3),
        "passenger_count": make.integers(1, 7),
        "trip_distance": distance,
        "pickup_longitude": make.uniform(-74.05, -73.75),
        "pickup_latitude": make.uniform(40.60, 40.90),
        "dropoff_longitude": make.uniform(-74.05, -73.75),
        "dropoff_latitude": make.uniform(40.60, 40.90),
        "rate_code_id": make.integers(1, 7),
        "fare_amount": fare,
        "extra": make.integers(0, 3).mul(0.5),
        "mta_tax": make.integers(0, 2).mul(0.5),
        "tip_amount": tip,
        "tolls_amount": tolls,
        "improvement_surcharge": make.uniform(0.0, 0.3),
        "total_amount": _total(fare, tip, tolls),
        # ---- strings (3) ----------------------------------------------------
        "pickup_datetime": make.date_strings(2015, 2015, with_time=True),
        "dropoff_datetime": make.date_strings(2015, 2015, with_time=True),
        "store_and_fwd_flag": make.categories(["N", "Y"], weights=[0.99, 0.01]),
    }
    return DataFrame(data)


def _fare_from_distance(distance: Column, make: ColumnFactory) -> Column:
    """Fares correlated with trip distance plus noise (keeps joins/groups sane)."""
    noise = make.normal(0.0, 1.5)
    return distance.mul(2.5).add(2.5).add(noise).clip(lower=2.5)


def _total(fare: Column, tip: Column, tolls: Column) -> Column:
    return fare.add(tip).add(tolls)
