"""Registry of the four evaluation datasets (paper Table 2).

Every dataset is described by a :class:`~repro.datasets.base.DatasetSpec` that
carries the nominal characteristics from Table 2 and a builder producing the
synthetic physical sample.  Use :func:`get_dataset_spec` /
:func:`generate_dataset` to obtain them; :func:`table2` regenerates Table 2.
"""

from __future__ import annotations

from .athlete import build_athlete
from .base import DatasetSpec, GeneratedDataset
from .loan import build_loan
from .patrol import build_patrol
from .taxi import build_taxi

__all__ = ["DATASET_SPECS", "DATASET_NAMES", "get_dataset_spec", "generate_dataset", "table2"]

DATASET_SPECS: dict[str, DatasetSpec] = {
    "athlete": DatasetSpec(
        name="athlete",
        description="120 Years of Olympic History: athletes and results",
        nominal_rows=200_000,
        nominal_csv_gb=0.03,
        num_columns=15,
        numeric_columns=5,
        string_columns=10,
        boolean_columns=0,
        null_fraction=0.09,
        string_length_range=(1, 108),
        default_physical_rows=4_000,
        builder=build_athlete,
    ),
    "loan": DatasetSpec(
        name="loan",
        description="LendingClub loan applications and financial profiles",
        nominal_rows=2_000_000,
        nominal_csv_gb=1.6,
        num_columns=151,
        numeric_columns=113,
        string_columns=38,
        boolean_columns=0,
        null_fraction=0.31,
        string_length_range=(1, 3988),
        default_physical_rows=1_500,
        builder=build_loan,
    ),
    "patrol": DatasetSpec(
        name="patrol",
        description="Stanford Open Policing Project: California traffic stops",
        nominal_rows=27_000_000,
        nominal_csv_gb=6.7,
        num_columns=34,
        numeric_columns=5,
        string_columns=27,
        boolean_columns=2,
        null_fraction=0.22,
        string_length_range=(1, 2293),
        default_physical_rows=3_000,
        builder=build_patrol,
    ),
    "taxi": DatasetSpec(
        name="taxi",
        description="New York City taxi trips, 2015",
        nominal_rows=77_000_000,
        nominal_csv_gb=10.9,
        num_columns=18,
        numeric_columns=15,
        string_columns=3,
        boolean_columns=0,
        null_fraction=0.0,
        string_length_range=(1, 19),
        default_physical_rows=6_000,
        builder=build_taxi,
    ),
}

DATASET_NAMES = tuple(DATASET_SPECS)


def get_dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset specification by name."""
    try:
        return DATASET_SPECS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}") from None


def generate_dataset(name: str, scale: float = 1.0, seed: int = 7) -> GeneratedDataset:
    """Generate the physical sample of one dataset."""
    return get_dataset_spec(name).generate(scale=scale, seed=seed)


def table2(scale: float = 0.25, seed: int = 7) -> list[dict]:
    """Regenerate Table 2 (dataset features), measuring nulls on real samples."""
    rows = []
    for name in DATASET_NAMES:
        spec = get_dataset_spec(name)
        dataset = spec.generate(scale=scale, seed=seed)
        rows.append(spec.table2_row(dataset))
    return rows
