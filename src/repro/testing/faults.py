"""Deterministic fault injection for sweep resilience testing.

The sweep tier is supposed to survive crashed workers, flaky engines, hung
cells and corrupted cache files (see :mod:`repro.sweep.resilience`).  None of
those happen on demand, so this module makes them happen *deterministically*:
a seeded :class:`FaultPlan` picks target cells up front and fires faults at
three well-known hook sites, all wired behind the module-level
:func:`fault_point` no-op — with no plan installed, a hook is a single global
read and an immediate return, so production paths pay nothing.

Hook sites (callers pass keyword context):

* ``execute_cell`` — fired once per cell execution attempt, inside the
  worker that runs the cell.  Kill targets ``SIGKILL`` their own worker
  process mid-batch (only when :func:`mark_worker_process` was called, so a
  thread- or sequential-mode sweep is never killed from under the user);
  hang targets sleep; flaky targets raise :class:`TransientFaultError`.
* ``cache_store`` — fired after :class:`~repro.sweep.cache.SweepCache`
  commits an entry; corrupt targets have bytes flipped in the written file.
* ``worker_start`` — fired when a pool worker boots (observability only).
* ``host_link`` — fired by a distributed sweep-worker host as it accepts a
  granted cell; drop targets raise :class:`ConnectionDropFault`, which the
  host answers by severing its coordinator link and SIGKILLing itself —
  the coordinator must reassign the host's in-flight cells to survivors.

Faults are *stateless across processes*: whether a fault fires depends only
on the bound plan (inherited by forked workers) and the attempt number the
caller reports, never on mutable counters — so a kill target fires in
whichever worker first executes that cell, and exactly once, because the
retry carries ``attempt > 1``.

The plan must be installed (:func:`install_fault_plan`) and bound to the
sweep's cell ids *before* the worker pool forks; the scheduler binds any
installed-but-unbound plan at the top of ``run()``.
"""

from __future__ import annotations

import os
import random
import signal
import time
from typing import Iterable, Mapping

__all__ = [
    "FaultPlan",
    "TransientFaultError",
    "ConnectionDropFault",
    "parse_fault_spec",
    "install_fault_plan",
    "clear_fault_plan",
    "active_fault_plan",
    "fault_point",
    "mark_worker_process",
    "FAULT_KINDS",
]

#: Recognized fault kinds, in the (fixed) order targets are drawn.  "drop"
#: appends after the original four so existing seeded plans keep drawing the
#: same targets for the same specs.
FAULT_KINDS = ("kill", "flaky", "hang", "corrupt", "drop")

_ALIASES = {
    "kill": "kill", "kills": "kill", "sigkill": "kill",
    "flaky": "flaky", "transient": "flaky", "error": "flaky",
    "hang": "hang", "hangs": "hang", "timeout": "hang",
    "corrupt": "corrupt", "corruption": "corrupt",
    "drop": "drop", "drops": "drop", "drop_connection": "drop",
    "sever": "drop", "disconnect": "drop",
}


class TransientFaultError(RuntimeError):
    """Injected transient failure; retried like any real engine exception."""


class ConnectionDropFault(RuntimeError):
    """Injected coordinator↔host link loss; the host dies like a crash."""


def parse_fault_spec(spec: str) -> "dict[str, int]":
    """Parse a CLI fault spec like ``"kill:1,flaky:2,corrupt:1"``.

    Returns a ``{kind: count}`` mapping over :data:`FAULT_KINDS`; a bare kind
    with no count means one fault of that kind.
    """
    counts = dict.fromkeys(FAULT_KINDS, 0)
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, number = part.partition(":")
        kind = _ALIASES.get(name.strip().lower())
        if kind is None:
            raise ValueError(
                f"unknown fault kind {name.strip()!r}; expected one of {FAULT_KINDS}")
        try:
            count = int(number) if number.strip() else 1
        except ValueError:
            raise ValueError(f"bad fault count in {part!r}") from None
        if count < 0:
            raise ValueError(f"fault count must be >= 0 in {part!r}")
        counts[kind] += count
    return counts


def _corrupt_file(path) -> None:
    """Flip a few bytes in the middle of a file (invalid UTF-8 on purpose)."""
    try:
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                handle.write(b"\xde\xad\xbe\xef")
            else:
                handle.seek(size // 2)
                handle.write(b"\xde\xad\xbe\xef")
    except OSError:  # pragma: no cover - corruption is best-effort
        pass


class FaultPlan:
    """A seeded, bound-once schedule of faults over a sweep's cells.

    ``bind(cell_ids)`` deterministically draws *disjoint* target cells for
    every fault kind from a seeded shuffle of the sorted ids — the same seed
    and cell population always picks the same targets, which is what makes
    chaos tests reproducible and lets a property test predict exactly which
    cells end up quarantined.

    ``flaky_attempts`` is how many leading attempts of a flaky target raise
    (default 1: fail once, succeed on retry); ``hang_seconds`` is how long a
    hang target sleeps on its first attempt.
    """

    def __init__(self, *, seed: int = 7, kills: int = 0, flaky: int = 0,
                 hangs: int = 0, corrupt: int = 0, drops: int = 0,
                 flaky_attempts: int = 1, hang_seconds: float = 30.0):
        self.seed = int(seed)
        self.counts = {"kill": int(kills), "flaky": int(flaky),
                       "hang": int(hangs), "corrupt": int(corrupt),
                       "drop": int(drops)}
        self.flaky_attempts = int(flaky_attempts)
        self.hang_seconds = float(hang_seconds)
        self.targets: "dict[str, frozenset[str]]" = {
            kind: frozenset() for kind in FAULT_KINDS}
        self.bound = False
        #: Faults fired in *this* process (kills log before dying; records
        #: from killed workers are lost with the worker, by design).
        self.fired: "list[tuple[str, str, int]]" = []

    @classmethod
    def from_spec(cls, spec: str, *, seed: int = 7, **kwargs) -> "FaultPlan":
        counts = parse_fault_spec(spec)
        return cls(seed=seed, kills=counts["kill"], flaky=counts["flaky"],
                   hangs=counts["hang"], corrupt=counts["corrupt"],
                   drops=counts["drop"], **kwargs)

    def bind(self, cell_ids: "Iterable[str]") -> "FaultPlan":
        """Pick concrete target cells; idempotent only via the caller."""
        ids = sorted(set(cell_ids))
        rng = random.Random(self.seed)
        rng.shuffle(ids)
        cursor = 0
        for kind in FAULT_KINDS:
            want = min(self.counts[kind], max(0, len(ids) - cursor))
            self.targets[kind] = frozenset(ids[cursor:cursor + want])
            cursor += want
        self.bound = True
        return self

    def describe(self) -> "Mapping[str, object]":
        return {"seed": self.seed, "bound": self.bound,
                "targets": {kind: sorted(cells)
                            for kind, cells in self.targets.items()}}

    # ------------------------------------------------------------------ #
    def fire(self, site: str, *, cell_id: "str | None" = None,
             attempt: int = 1, path=None, worker: bool = False,
             **_context) -> None:
        """Fire whatever fault this plan schedules at ``site`` (maybe none)."""
        if not self.bound or cell_id is None:
            return
        if site == "execute_cell":
            if cell_id in self.targets["kill"] and attempt <= 1 and worker:
                self.fired.append(("kill", cell_id, attempt))
                os.kill(os.getpid(), signal.SIGKILL)
            if cell_id in self.targets["hang"] and attempt <= 1:
                self.fired.append(("hang", cell_id, attempt))
                time.sleep(self.hang_seconds)
            if cell_id in self.targets["flaky"] and attempt <= self.flaky_attempts:
                self.fired.append(("flaky", cell_id, attempt))
                raise TransientFaultError(
                    f"injected transient fault for cell {cell_id[:8]} "
                    f"(attempt {attempt})")
        elif site == "cache_store":
            if cell_id in self.targets["corrupt"] and path is not None:
                self.fired.append(("corrupt", cell_id, attempt))
                _corrupt_file(path)
        elif site == "host_link":
            # Fires at most once per target cell: the re-granted attempt
            # arrives with attempt > 1 on a surviving host and runs clean.
            if cell_id in self.targets["drop"] and attempt <= 1:
                self.fired.append(("drop", cell_id, attempt))
                raise ConnectionDropFault(
                    f"injected link drop before cell {cell_id[:8]} "
                    f"(attempt {attempt})")


# --------------------------------------------------------------------------- #
# module state: one active plan, inherited by forked workers
# --------------------------------------------------------------------------- #
_PLAN: "FaultPlan | None" = None
_IN_WORKER = False


def install_fault_plan(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active plan (returned for chaining)."""
    global _PLAN
    _PLAN = plan
    return plan


def clear_fault_plan() -> None:
    global _PLAN
    _PLAN = None


def active_fault_plan() -> "FaultPlan | None":
    return _PLAN


def mark_worker_process() -> None:
    """Flag this process as a pool worker (enables SIGKILL injection)."""
    global _IN_WORKER
    _IN_WORKER = True


def fault_point(site: str, **context) -> None:
    """The no-op hook production code calls; fires only with a plan active."""
    plan = _PLAN
    if plan is None:
        return
    plan.fire(site, worker=_IN_WORKER, **context)
