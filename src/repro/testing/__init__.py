"""Testing utilities: deterministic fault injection for resilience tests."""

from .faults import (FaultPlan, TransientFaultError, active_fault_plan,
                     clear_fault_plan, fault_point, install_fault_plan,
                     mark_worker_process, parse_fault_spec)

__all__ = [
    "FaultPlan",
    "TransientFaultError",
    "active_fault_plan",
    "clear_fault_plan",
    "fault_point",
    "install_fault_plan",
    "mark_worker_process",
    "parse_fault_spec",
]
