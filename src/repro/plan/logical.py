"""Logical plan nodes for the lazy evaluation layer.

A logical plan is a tree of operator nodes rooted at the final operation and
terminating in :class:`Scan` leaves (either an in-memory frame or a file).
Lazy engines in the paper (Polars lazy, Spark SQL) build such a plan while the
user composes the pipeline and only execute it — after optimization — when a
result is requested; the optimizer lives in :mod:`repro.plan.optimizer` and
the physical executor in :mod:`repro.plan.executor`.

Each node knows:

* its child/children;
* which columns it *requires* from its input (for projection pushdown);
* a one-line description used by ``explain()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..frame.expressions import Expression
from ..frame.frame import DataFrame
from ..frame.errors import PlanError

__all__ = [
    "PlanNode",
    "Scan",
    "FileScan",
    "Project",
    "Filter",
    "WithColumn",
    "Sort",
    "Aggregate",
    "Join",
    "Distinct",
    "DropNulls",
    "FillNulls",
    "Limit",
    "MapFrame",
    "explain",
]


class PlanNode:
    """Base class for all logical plan nodes."""

    def children(self) -> list["PlanNode"]:
        raise NotImplementedError

    def with_children(self, children: Sequence["PlanNode"]) -> "PlanNode":
        """Rebuild this node with new children (used by optimizer rewrites)."""
        raise NotImplementedError

    def required_columns(self) -> set[str] | None:
        """Columns this node itself reads from its input.

        ``None`` means "all columns" (e.g. ``Distinct`` without a subset).
        """
        return None

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.describe()})"


@dataclass
class Scan(PlanNode):
    """Leaf node: an already-materialized in-memory frame."""

    frame: DataFrame
    projected: tuple[str, ...] | None = None

    def children(self) -> list[PlanNode]:
        return []

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        if children:
            raise PlanError("Scan has no children")
        return self

    def describe(self) -> str:
        cols = "*" if self.projected is None else ", ".join(self.projected)
        return f"scan in-memory frame [{cols}] ({self.frame.num_rows} rows)"


@dataclass
class FileScan(PlanNode):
    """Leaf node: a CSV or rparquet file on disk."""

    path: str
    file_format: str = "csv"
    projected: tuple[str, ...] | None = None

    def children(self) -> list[PlanNode]:
        return []

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        if children:
            raise PlanError("FileScan has no children")
        return self

    def describe(self) -> str:
        cols = "*" if self.projected is None else ", ".join(self.projected)
        return f"scan {self.file_format} {self.path} [{cols}]"


@dataclass
class Project(PlanNode):
    """Keep a subset of columns, in order."""

    child: PlanNode
    columns: tuple[str, ...]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return Project(children[0], self.columns)

    def required_columns(self) -> set[str]:
        return set(self.columns)

    def describe(self) -> str:
        return f"project [{', '.join(self.columns)}]"


@dataclass
class Filter(PlanNode):
    """Keep rows satisfying a boolean predicate expression."""

    child: PlanNode
    predicate: Expression

    def children(self) -> list[PlanNode]:
        return [self.child]

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return Filter(children[0], self.predicate)

    def required_columns(self) -> set[str]:
        return self.predicate.columns()

    def describe(self) -> str:
        return f"filter {self.predicate.describe()}"


@dataclass
class WithColumn(PlanNode):
    """Add or replace a column computed from an expression."""

    child: PlanNode
    name: str
    expression: Expression

    def children(self) -> list[PlanNode]:
        return [self.child]

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return WithColumn(children[0], self.name, self.expression)

    def required_columns(self) -> set[str]:
        return self.expression.columns()

    def describe(self) -> str:
        return f"with_column {self.name} = {self.expression.describe()}"


@dataclass
class Sort(PlanNode):
    """Sort rows by one or more key columns."""

    child: PlanNode
    by: tuple[str, ...]
    ascending: tuple[bool, ...]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return Sort(children[0], self.by, self.ascending)

    def required_columns(self) -> set[str]:
        return set(self.by)

    def describe(self) -> str:
        keys = ", ".join(f"{k}{'' if a else ' desc'}" for k, a in zip(self.by, self.ascending))
        return f"sort [{keys}]"


@dataclass
class Aggregate(PlanNode):
    """Group-by + aggregation."""

    child: PlanNode
    keys: tuple[str, ...]
    aggregations: Mapping[str, Any]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return Aggregate(children[0], self.keys, self.aggregations)

    def required_columns(self) -> set[str]:
        return set(self.keys) | set(self.aggregations)

    def describe(self) -> str:
        aggs = ", ".join(f"{fn}({name})" if isinstance(fn, str) else f"{list(fn)}({name})"
                         for name, fn in self.aggregations.items())
        return f"aggregate by [{', '.join(self.keys)}]: {aggs}"


@dataclass
class Join(PlanNode):
    """Equi-join of two child plans.

    ``build_side`` is a physical annotation set by the cost-based optimizer's
    join-reordering rule: the side whose hash table is built (``"right"`` by
    default, ``"left"`` when statistics say the left input is smaller).  It
    never changes the logical result — executors produce identical output for
    either value — but the cost and memory models price the build on the
    annotated side.
    """

    left: PlanNode
    right: PlanNode
    left_on: tuple[str, ...]
    right_on: tuple[str, ...]
    how: str = "inner"
    suffix: str = "_right"
    build_side: str = "right"

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return Join(children[0], children[1], self.left_on, self.right_on, self.how,
                    self.suffix, self.build_side)

    def required_columns(self) -> set[str]:
        return set(self.left_on) | set(self.right_on)

    def describe(self) -> str:
        rendered = f"{self.how} join on {list(self.left_on)} = {list(self.right_on)}"
        if self.build_side != "right":
            rendered += f" (build: {self.build_side})"
        return rendered


@dataclass
class Distinct(PlanNode):
    """Drop duplicate rows, optionally over a key subset."""

    child: PlanNode
    subset: tuple[str, ...] | None = None

    def children(self) -> list[PlanNode]:
        return [self.child]

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return Distinct(children[0], self.subset)

    def required_columns(self) -> set[str] | None:
        return None if self.subset is None else set(self.subset)

    def describe(self) -> str:
        return "distinct" if self.subset is None else f"distinct on [{', '.join(self.subset)}]"


@dataclass
class DropNulls(PlanNode):
    """Drop rows containing nulls, optionally restricted to a column subset."""

    child: PlanNode
    subset: tuple[str, ...] | None = None
    how: str = "any"

    def children(self) -> list[PlanNode]:
        return [self.child]

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return DropNulls(children[0], self.subset, self.how)

    def required_columns(self) -> set[str] | None:
        return None if self.subset is None else set(self.subset)

    def describe(self) -> str:
        scope = "*" if self.subset is None else ", ".join(self.subset)
        return f"drop_nulls({scope}, how={self.how})"


@dataclass
class FillNulls(PlanNode):
    """Fill nulls with a scalar or a per-column mapping."""

    child: PlanNode
    value: Any

    def children(self) -> list[PlanNode]:
        return [self.child]

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return FillNulls(children[0], self.value)

    def required_columns(self) -> set[str] | None:
        if isinstance(self.value, Mapping):
            return set(self.value)
        return None

    def describe(self) -> str:
        return f"fill_nulls({self.value!r})"


@dataclass
class Limit(PlanNode):
    """Keep the first ``n`` rows."""

    child: PlanNode
    n: int

    def children(self) -> list[PlanNode]:
        return [self.child]

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return Limit(children[0], self.n)

    def describe(self) -> str:
        return f"limit {self.n}"


@dataclass
class MapFrame(PlanNode):
    """Escape hatch: apply an arbitrary frame -> frame function.

    Used for preparators with no dedicated plan node (pivot, one-hot, case
    changes, ...).  The optimizer treats it as a barrier: nothing is pushed
    below it unless the node declares the columns it needs.
    """

    child: PlanNode
    func: Any
    label: str = "map"
    needs: tuple[str, ...] | None = None
    barrier: bool = True

    def children(self) -> list[PlanNode]:
        return [self.child]

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return MapFrame(children[0], self.func, self.label, self.needs, self.barrier)

    def required_columns(self) -> set[str] | None:
        return None if self.needs is None else set(self.needs)

    def describe(self) -> str:
        return f"map[{self.label}]"


def explain(node: PlanNode, indent: int = 0, annotate=None) -> str:
    """Readable multi-line rendering of a plan tree.

    ``annotate`` is an optional ``node -> str`` callback appended to each
    line; the stats layer uses it to render estimated rows/bytes/cost
    (see :func:`repro.plan.stats.annotate_with`).
    """
    suffix = annotate(node) if annotate is not None else ""
    lines = ["  " * indent + node.describe() + suffix]
    for child in node.children():
        lines.append(explain(child, indent + 1, annotate))
    return "\n".join(lines)
