"""Adaptive engine advisor: predict the fastest configuration for a pipeline.

Table 5 of the paper answers "what is the minimal machine configuration that
runs this pipeline?" by sweeping the whole matrix.  The advisor answers the
practitioner's next question — *which engine and execution strategy should I
pick?* — without sweeping anything: every engine × eager/lazy/streaming
candidate is priced through the statistics layer
(:mod:`repro.plan.stats`) and the cost model
(:meth:`~repro.simulate.costmodel.CostModel.estimate_plan` /
:meth:`~repro.engines.base.BaseEngine.estimate_steps`), and the candidates
are ranked by estimated runtime.  Candidates the memory model predicts to
OOM, and formats an engine cannot read, are reported as infeasible rather
than ranked.

Entry points: :meth:`Advisor.advise` for a (frame, pipeline, context) triple,
:meth:`Advisor.advise_tpch` for TPC-H query plans, ``Session.advise()`` and
the ``python -m repro advise`` CLI.  Figure 9
(:mod:`repro.experiments.fig9_advisor`) measures how often the predicted
winner matches the measured one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from ..simulate.hardware import PAPER_SERVER, MachineConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pipeline import Pipeline
    from ..engines.base import BaseEngine, SimulationContext
    from ..frame.frame import DataFrame

__all__ = ["CandidateEstimate", "AdvisorReport", "Advisor", "pipeline_plan"]


def pipeline_plan(frame: "DataFrame", pipeline: "Pipeline"):
    """The logical plan of a pipeline's deferrable steps, for ``explain()``.

    Deferrable steps are appended through their ``lazy_builder`` exactly as
    the engines compile them; non-deferrable steps (and I/O) appear as
    identity ``map[<name>]`` barrier nodes, so the rendered plan keeps the
    pipeline's segment structure.  Returns a
    :class:`~repro.plan.builder.LazyFrame` (never executed by the CLI).
    """
    from ..plan.builder import LazyFrame

    lazy = LazyFrame.from_frame(frame)
    for step in pipeline.steps:
        extended = None
        if step.preparator not in ("read", "write") and step.spec.supports_lazy:
            extended = step.spec.lazy_builder(lazy, step.params)
        if extended is not None:
            lazy = extended
        else:
            lazy = lazy.map_frame(lambda f: f, label=step.preparator, barrier=True)
    return lazy


@dataclass
class CandidateEstimate:
    """One engine × strategy candidate with its estimated runtime."""

    engine: str
    lazy: bool = False
    streaming: bool = False
    seconds: float = float("inf")
    feasible: bool = True
    reason: str = ""

    @property
    def strategy(self) -> str:
        if self.streaming:
            return "streaming"
        return "lazy" if self.lazy else "eager"

    @property
    def key(self) -> tuple[str, str]:
        return (self.engine, self.strategy)

    def describe(self) -> str:
        label = f"{self.engine}/{self.strategy}"
        if not self.feasible:
            return f"{label}: infeasible ({self.reason})"
        return f"{label}: ~{self.seconds:.3f}s"

    def to_dict(self) -> dict:
        """JSON-safe record (infinite seconds serialize as ``None``)."""
        seconds = None if self.seconds == float("inf") else self.seconds
        return {"engine": self.engine, "strategy": self.strategy,
                "lazy": self.lazy, "streaming": self.streaming,
                "seconds": seconds, "feasible": self.feasible,
                "reason": self.reason}


@dataclass
class AdvisorReport:
    """Ranked candidates for one pipeline (or TPC-H query) on one machine.

    ``plan`` carries the cell's logical plan (a
    :class:`~repro.plan.builder.LazyFrame`, never executed) and ``row_scale``
    the sample→nominal lift, so callers — the CLI's ``--explain`` — can
    render annotated plans without re-deriving which plan belongs to which
    report.
    """

    dataset: str
    pipeline: str
    machine: str
    candidates: list[CandidateEstimate] = field(default_factory=list)
    plan: object | None = None
    row_scale: float = 1.0

    @property
    def best(self) -> CandidateEstimate | None:
        """The predicted-fastest feasible configuration."""
        feasible = [c for c in self.candidates if c.feasible]
        return feasible[0] if feasible else None

    def ranked(self) -> list[CandidateEstimate]:
        return list(self.candidates)

    def candidate(self, engine: str, strategy: str) -> CandidateEstimate | None:
        return next((c for c in self.candidates if c.key == (engine, strategy)), None)

    def sort(self) -> None:
        self.candidates.sort(key=lambda c: (not c.feasible, c.seconds))

    def to_dict(self) -> dict:
        """JSON document for the service's ``/advise`` endpoint (no plan)."""
        best = self.best
        return {"dataset": self.dataset, "pipeline": self.pipeline,
                "machine": self.machine, "row_scale": self.row_scale,
                "best": list(best.key) if best is not None else None,
                "candidates": [c.to_dict() for c in self.candidates]}

    def format(self, top: int | None = None) -> str:
        where = "/".join(p for p in (self.dataset, self.pipeline) if p)
        lines = [f"[{where}] on {self.machine} — predicted-fastest configuration"]
        shown = self.candidates if top is None else self.candidates[:top]
        for rank, candidate in enumerate(shown, start=1):
            marker = "»" if candidate is self.best else " "
            lines.append(f"  {marker}{rank:>2}. {candidate.describe()}")
        return "\n".join(lines)


class Advisor:
    """Ranks engine × strategy candidates by estimated cost.

    ``engines`` may be engine names (instantiated on the machine, skipping
    unavailable ones — e.g. CuDF without a GPU) or pre-built
    :class:`~repro.engines.base.BaseEngine` instances.
    """

    def __init__(self, machine: MachineConfig = PAPER_SERVER,
                 engines: "Sequence[str] | Mapping[str, BaseEngine] | None" = None):
        from ..config import ExperimentConfig
        from ..engines.registry import create_engines

        self.machine = machine
        if engines is None:
            engines = list(ExperimentConfig().engines)
        if isinstance(engines, Mapping):
            self.engines: dict[str, BaseEngine] = dict(engines)
        else:
            self.engines = create_engines(list(engines), machine=machine,
                                          skip_unavailable=True)

    # ------------------------------------------------------------------ #
    @staticmethod
    def strategies(engine: "BaseEngine") -> list[tuple[bool, bool]]:
        """(lazy, streaming) candidates supported by one engine."""
        variants: list[tuple[bool, bool]] = [(False, False)]
        if engine.supports_lazy:
            variants.append((True, False))
        if engine.supports_streaming:
            variants.append((True, True))
        return variants

    # ------------------------------------------------------------------ #
    def advise(self, frame: "DataFrame", pipeline: "Pipeline",
               sim: "SimulationContext", dataset: str = "") -> AdvisorReport:
        """Rank every engine × strategy candidate for one pipeline."""
        from ..engines.base import EngineUnavailableError

        report = AdvisorReport(dataset=dataset or sim.dataset_name,
                               pipeline=pipeline.name, machine=self.machine.name,
                               plan=pipeline_plan(frame, pipeline),
                               row_scale=sim.row_scale)
        for engine in self.engines.values():
            for lazy, streaming in self.strategies(engine):
                candidate = CandidateEstimate(engine=engine.name, lazy=lazy,
                                              streaming=streaming)
                try:
                    estimate = engine.estimate_steps(frame, pipeline.steps, sim,
                                                     lazy=lazy, streaming=streaming)
                except EngineUnavailableError as err:
                    candidate.feasible = False
                    candidate.reason = f"unsupported: {err}"
                else:
                    if estimate.oom:
                        candidate.feasible = False
                        candidate.reason = "predicted OOM"
                    else:
                        candidate.seconds = estimate.seconds
                report.candidates.append(candidate)
        report.sort()
        return report

    # ------------------------------------------------------------------ #
    def advise_tpch(self, data, query: str) -> AdvisorReport:
        """Rank the TPC-H engine set for one query plan.

        Mirrors the Figure 7 execution model: lazy-capable engines price the
        optimized plan, eager engines the raw one — both estimated, nothing
        executed.
        """
        from ..plan.optimizer import Optimizer, OptimizerSettings
        from ..tpch.queries import get_query
        from ..tpch.runner import TPCHRunner

        builder = get_query(query)
        lazy = builder(data)
        plan = lazy.plan
        report = AdvisorReport(dataset=f"tpch-sf{data.nominal_scale_factor:g}",
                               pipeline=query, machine=self.machine.name,
                               plan=lazy, row_scale=data.row_scale)
        for engine in self.engines.values():
            is_lazy = engine.supports_lazy
            sim = TPCHRunner(data, runs=1).simulation_context(engine)
            candidate = CandidateEstimate(engine=engine.name, lazy=is_lazy)
            if is_lazy:
                optimizer = Optimizer(engine.optimizer_settings,
                                      cost_model=engine.cost_model,
                                      profile=engine.profile)
                priced_plan = optimizer.optimize(plan)
            else:
                priced_plan = plan
            estimate = engine.plan_cost(priced_plan, sim, lazy=True,
                                        pipeline_scope=False)
            if estimate.oom:
                candidate.feasible = False
                candidate.reason = "predicted OOM"
            else:
                candidate.seconds = estimate.seconds
            report.candidates.append(candidate)
        report.sort()
        return report
