"""Physical executor for logical plans.

The executor walks an (optionally optimized) plan bottom-up, producing a
:class:`~repro.frame.frame.DataFrame` and an :class:`ExecutionStats` record.
The stats — rows and cells processed per operator class — are the bridge to
the simulation layer: the cost model converts them into simulated runtimes per
engine, so a plan that touches fewer cells after optimization genuinely gets a
smaller simulated time (the effect the paper measures in Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..frame.errors import PlanError
from ..frame.expressions import ensure_boolean
from ..frame.frame import DataFrame
from .logical import (
    Aggregate,
    Distinct,
    DropNulls,
    FileScan,
    FillNulls,
    Filter,
    Join,
    Limit,
    MapFrame,
    PlanNode,
    Project,
    Scan,
    Sort,
    WithColumn,
)
from .optimizer import Optimizer, OptimizerSettings

__all__ = ["ExecutionStats", "OperatorStat", "Executor", "execute",
           "file_source_columns", "shared_subplans"]


def shared_subplans(plan: PlanNode) -> frozenset[int]:
    """Object ids of nodes referenced more than once in the plan tree.

    The optimizer's common-subplan elimination aliases identical subtrees to
    one object; executors memoize exactly these nodes so each shared subplan
    is computed (and its stats recorded) once.
    """
    counts: dict[int, int] = {}

    def visit(node: PlanNode) -> None:
        key = id(node)
        counts[key] = counts.get(key, 0) + 1
        if counts[key] == 1:
            for child in node.children():
                visit(child)

    visit(plan)
    return frozenset(key for key, count in counts.items() if count > 1)


def file_source_columns(node: FileScan, frame: DataFrame) -> int:
    """Pre-projection column count of a FileScan (best effort).

    When the scan was projected, the file header/schema is consulted so the
    recorded stat shows the read-side saving of projection pushdown; when the
    peek fails (synthetic paths in tests, custom readers) the projected width
    is reported, which is what an eager read would have seen anyway.
    """
    if node.projected is None:
        return frame.num_columns
    try:
        from ..io import scan_columns

        return max(frame.num_columns, len(scan_columns(node.path, node.file_format)))
    except Exception:
        return frame.num_columns


@dataclass
class OperatorStat:
    """Work done by one physical operator invocation.

    ``columns`` is the operator's output/touched width; reads additionally
    carry ``source_columns`` (the pre-projection width of the file or frame,
    so projection-pushdown ablations can see the read-side saving),
    ``file_format`` (so the cost model prices ``read_parquet`` vs
    ``read_csv``) and ``column_names`` (so pricing can use real per-column
    byte widths instead of a flat per-cell guess).  Streamed execution fills
    ``batches`` (morsels processed) and ``streamed``/``spilled_rows``
    (pipeline-breaker accumulation).
    """

    operator: str
    rows_in: int
    rows_out: int
    columns: int
    source_columns: int = 0
    file_format: str = ""
    column_names: tuple[str, ...] = ()
    batches: int = 1
    streamed: bool = False
    spilled_rows: int = 0
    #: Hash-join build-side input rows (joins only; the optimizer's
    #: join-reordering rule annotates which side the build is priced on).
    build_rows: int = 0

    @property
    def cells_in(self) -> int:
        return self.rows_in * max(1, self.columns)

    @property
    def cells_out(self) -> int:
        return self.rows_out * max(1, self.columns)

    @property
    def cells_scanned(self) -> int:
        """Input cells at pre-projection width (equals ``cells_in`` unless a
        read recorded a wider source schema)."""
        return self.rows_in * max(1, self.source_columns, self.columns)


@dataclass
class ExecutionStats:
    """Aggregate work record for an executed plan."""

    operators: list[OperatorStat] = field(default_factory=list)

    def record(self, operator: str, rows_in: int, rows_out: int, columns: int,
               **extra) -> None:
        self.operators.append(OperatorStat(operator, rows_in, rows_out, columns, **extra))

    @property
    def total_cells(self) -> int:
        return sum(op.cells_in for op in self.operators)

    @property
    def total_rows(self) -> int:
        return sum(op.rows_in for op in self.operators)

    @property
    def total_batches(self) -> int:
        """Morsels processed across all operators (1 per op when eager)."""
        return sum(op.batches for op in self.operators)

    @property
    def spilled_rows(self) -> int:
        """Rows accumulated beyond the in-memory budget by pipeline breakers."""
        return sum(op.spilled_rows for op in self.operators)

    @property
    def streamed_operators(self) -> int:
        return sum(1 for op in self.operators if op.streamed)

    def by_operator(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for op in self.operators:
            out[op.operator] = out.get(op.operator, 0) + op.cells_in
        return out

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        merged = ExecutionStats(list(self.operators))
        merged.operators.extend(other.operators)
        return merged


class Executor:
    """Executes logical plans against the substrate.

    ``file_reader`` is injected by the I/O layer / engines so that FileScan
    leaves can honour projected columns (reading only what the optimizer kept).
    """

    def __init__(
        self,
        settings: OptimizerSettings | None = None,
        optimize_plan: bool = True,
        file_reader: Callable[[str, str, tuple[str, ...] | None], DataFrame] | None = None,
        cost_model=None,
        profile=None,
    ):
        self._optimizer = (Optimizer(settings, cost_model=cost_model, profile=profile)
                           if optimize_plan else None)
        self._cse = optimize_plan and (settings or OptimizerSettings()).common_subplan_elimination
        self._file_reader = file_reader
        self._shared: frozenset[int] = frozenset()
        self._shared_results: dict[int, DataFrame] = {}

    # ------------------------------------------------------------------ #
    def execute(self, plan: PlanNode) -> tuple[DataFrame, ExecutionStats]:
        if self._optimizer is not None:
            plan = self._optimizer.optimize(plan)
        stats = ExecutionStats()
        self._shared = shared_subplans(plan) if self._cse else frozenset()
        self._shared_results = {}
        frame = self._run(plan, stats)
        return frame, stats

    # ------------------------------------------------------------------ #
    def _run(self, node: PlanNode, stats: ExecutionStats) -> DataFrame:
        if id(node) in self._shared:
            # common subplan: computed once, reused for every reference
            cached = self._shared_results.get(id(node))
            if cached is None:
                cached = self._run_node(node, stats)
                self._shared_results[id(node)] = cached
            return cached
        return self._run_node(node, stats)

    def _run_node(self, node: PlanNode, stats: ExecutionStats) -> DataFrame:
        if isinstance(node, Scan):
            frame = node.frame
            if node.projected is not None:
                keep = [c for c in frame.columns if c in set(node.projected)]
                frame = frame.select(keep)
            stats.record("scan", frame.num_rows, frame.num_rows, frame.num_columns,
                         source_columns=node.frame.num_columns,
                         column_names=tuple(frame.columns))
            return frame

        if isinstance(node, FileScan):
            if self._file_reader is None:
                raise PlanError("plan contains a FileScan but no file_reader was provided")
            frame = self._file_reader(node.path, node.file_format, node.projected)
            stats.record("read", frame.num_rows, frame.num_rows, frame.num_columns,
                         source_columns=file_source_columns(node, frame),
                         file_format=node.file_format,
                         column_names=tuple(frame.columns))
            return frame

        if isinstance(node, Project):
            child = self._run(node.child, stats)
            out = child.select(list(node.columns))
            stats.record("project", child.num_rows, out.num_rows, len(node.columns),
                         column_names=tuple(node.columns))
            return out

        if isinstance(node, Filter):
            child = self._run(node.child, stats)
            mask = ensure_boolean(node.predicate.evaluate(child))
            out = child.filter(mask)
            stats.record("filter", child.num_rows, out.num_rows,
                         max(1, len(node.predicate.columns())),
                         column_names=tuple(sorted(node.predicate.columns())))
            return out

        if isinstance(node, WithColumn):
            child = self._run(node.child, stats)
            out = child.with_column(node.name, node.expression.evaluate(child))
            stats.record("with_column", child.num_rows, out.num_rows,
                         max(1, len(node.expression.columns())),
                         column_names=tuple(sorted(node.expression.columns())))
            return out

        if isinstance(node, Sort):
            child = self._run(node.child, stats)
            out = child.sort_values(list(node.by), list(node.ascending))
            stats.record("sort", child.num_rows, out.num_rows, len(node.by),
                         column_names=tuple(node.by))
            return out

        if isinstance(node, Aggregate):
            child = self._run(node.child, stats)
            out = child.group_agg(list(node.keys), dict(node.aggregations))
            stats.record("groupby", child.num_rows, out.num_rows,
                         len(node.keys) + len(node.aggregations),
                         column_names=tuple(node.keys) + tuple(node.aggregations))
            return out

        if isinstance(node, Join):
            left = self._run(node.left, stats)
            right = self._run(node.right, stats)
            out = left.join(right, left_on=list(node.left_on), right_on=list(node.right_on),
                            how=node.how, suffix=node.suffix)
            build = left.num_rows if node.build_side == "left" else right.num_rows
            stats.record("join", left.num_rows + right.num_rows, out.num_rows,
                         len(node.left_on), column_names=tuple(node.left_on),
                         build_rows=build)
            return out

        if isinstance(node, Distinct):
            child = self._run(node.child, stats)
            out = child.drop_duplicates(subset=list(node.subset) if node.subset else None)
            stats.record("dedup", child.num_rows, out.num_rows,
                         len(node.subset) if node.subset else child.num_columns,
                         column_names=tuple(node.subset) if node.subset
                         else tuple(child.columns))
            return out

        if isinstance(node, DropNulls):
            child = self._run(node.child, stats)
            out = child.dropna(subset=list(node.subset) if node.subset else None, how=node.how)
            stats.record("dropna", child.num_rows, out.num_rows,
                         len(node.subset) if node.subset else child.num_columns,
                         column_names=tuple(node.subset) if node.subset
                         else tuple(child.columns))
            return out

        if isinstance(node, FillNulls):
            child = self._run(node.child, stats)
            value = node.value
            if isinstance(value, Mapping):
                # Ignore fills for columns no longer present (matches the
                # eager preparator's behaviour so both paths agree).
                value = {k: v for k, v in value.items() if k in child.columns}
            out = child.fillna(value) if value != {} else child
            touched = len(value) if isinstance(value, Mapping) else child.num_columns
            stats.record("fillna", child.num_rows, out.num_rows, touched,
                         column_names=tuple(value) if isinstance(value, Mapping)
                         else tuple(child.columns))
            return out

        if isinstance(node, Limit):
            child = self._run(node.child, stats)
            out = child.head(node.n)
            stats.record("limit", child.num_rows, out.num_rows, child.num_columns)
            return out

        if isinstance(node, MapFrame):
            child = self._run(node.child, stats)
            out = node.func(child)
            stats.record(node.label, child.num_rows, out.num_rows, child.num_columns)
            return out

        raise PlanError(f"unknown plan node {type(node).__name__}")


def execute(plan: PlanNode, settings: OptimizerSettings | None = None,
            optimize_plan: bool = True, file_reader=None,
            cost_model=None, profile=None) -> tuple[DataFrame, ExecutionStats]:
    """One-shot helper: optimize (optionally) and execute a plan."""
    return Executor(settings, optimize_plan, file_reader,
                    cost_model=cost_model, profile=profile).execute(plan)
