"""Lazy evaluation layer: logical plans, optimizer and executor.

This is the substrate behind the lazy engines (Polars lazy, Spark SQL,
Pandas-on-Spark): pipelines are recorded as logical plans, optimized with
projection pushdown / predicate pushdown / filter fusion, and executed against
the dataframe substrate while recording how much work was actually done.
"""

from .builder import LazyFrame
from .executor import ExecutionStats, Executor, OperatorStat, execute, shared_subplans
from .stats import (
    ColumnStats,
    StatsEstimator,
    TableStats,
    harvest_frame,
    plan_key,
    predicate_selectivity,
    stats_from_context,
)
from .logical import (
    Aggregate,
    Distinct,
    DropNulls,
    FileScan,
    FillNulls,
    Filter,
    Join,
    Limit,
    MapFrame,
    PlanNode,
    Project,
    Scan,
    Sort,
    WithColumn,
    explain,
)
from .optimizer import Optimizer, OptimizerSettings, optimize
from .streaming import (
    DEFAULT_BATCH_ROWS,
    SpillAccumulator,
    StreamingExecutor,
    execute_streaming,
    stream_preparator,
)

__all__ = [
    "LazyFrame",
    "Executor",
    "ExecutionStats",
    "OperatorStat",
    "execute",
    "shared_subplans",
    "ColumnStats",
    "TableStats",
    "StatsEstimator",
    "harvest_frame",
    "stats_from_context",
    "predicate_selectivity",
    "plan_key",
    "StreamingExecutor",
    "SpillAccumulator",
    "execute_streaming",
    "stream_preparator",
    "DEFAULT_BATCH_ROWS",
    "Optimizer",
    "OptimizerSettings",
    "optimize",
    "PlanNode",
    "Scan",
    "FileScan",
    "Project",
    "Filter",
    "WithColumn",
    "Sort",
    "Aggregate",
    "Join",
    "Distinct",
    "DropNulls",
    "FillNulls",
    "Limit",
    "MapFrame",
    "explain",
]
