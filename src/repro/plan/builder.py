"""LazyFrame: fluent builder over logical plans.

:class:`LazyFrame` mirrors the lazy APIs of Polars and Spark SQL in the paper:
each method appends a node to the logical plan and returns a new LazyFrame;
nothing is executed until :meth:`collect` is called, at which point the plan
is optimized and run by the :class:`~repro.plan.executor.Executor`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..frame.expressions import Expression
from ..frame.frame import DataFrame
from .executor import ExecutionStats, Executor
from .logical import (
    Aggregate,
    Distinct,
    DropNulls,
    FileScan,
    FillNulls,
    Filter,
    Join,
    Limit,
    MapFrame,
    PlanNode,
    Project,
    Scan,
    Sort,
    WithColumn,
    explain,
)
from .optimizer import OptimizerSettings

__all__ = ["LazyFrame"]


class LazyFrame:
    """A deferred computation over a DataFrame source."""

    def __init__(self, plan: PlanNode):
        self._plan = plan

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_frame(cls, frame: DataFrame) -> "LazyFrame":
        return cls(Scan(frame))

    @classmethod
    def from_file(cls, path: str, file_format: str = "csv") -> "LazyFrame":
        return cls(FileScan(str(path), file_format))

    @property
    def plan(self) -> PlanNode:
        return self._plan

    def explain(self, optimized: bool = False,
                settings: OptimizerSettings | None = None, *,
                stats: bool = False, catalog=None,
                cost_model=None, profile=None, row_scale: float = 1.0) -> str:
        """Textual plan, optionally after optimization.

        ``stats=True`` annotates every node with the statistics layer's
        estimated rows/bytes and (when pricing is available — a default
        machine-neutral cost model is used otherwise) the estimated operator
        cost in seconds.  ``catalog`` supplies
        :class:`~repro.plan.stats.TableStats` for ``FileScan`` paths and
        ``row_scale`` lifts physical sample counts to nominal scale, exactly
        as in :meth:`~repro.simulate.costmodel.CostModel.estimate_plan`.
        """
        plan = self._plan
        if optimized:
            from .optimizer import Optimizer

            plan = Optimizer(settings, cost_model=cost_model, profile=profile,
                             catalog=catalog).optimize(plan)
        annotate = None
        if stats:
            from ..simulate.costmodel import CostModel
            from ..simulate.hardware import PAPER_SERVER
            from ..simulate.profiles import get_profile
            from .stats import StatsEstimator, annotate_with, node_cost_inputs

            estimator = StatsEstimator(catalog=catalog, row_scale=row_scale)
            pricing = cost_model or CostModel(PAPER_SERVER)
            engine_profile = profile or get_profile("pandas")

            def node_seconds(node):
                op_class, rows, cols, bytes_in = node_cost_inputs(node, estimator)
                if op_class is None:
                    return None
                try:
                    return pricing.estimate(engine_profile, op_class, rows,
                                            max(1, cols), bytes_in=bytes_in,
                                            lazy=True).seconds
                except Exception:
                    return None

            annotate = annotate_with(estimator, node_seconds)
        return explain(plan, annotate=annotate)

    # ------------------------------------------------------------------ #
    # plan-building API
    # ------------------------------------------------------------------ #
    def select(self, columns: Sequence[str]) -> "LazyFrame":
        return LazyFrame(Project(self._plan, tuple(columns)))

    def drop(self, columns: "str | Sequence[str]") -> "LazyFrame":
        dropped = {columns} if isinstance(columns, str) else set(columns)
        func = lambda frame, cols=dropped: frame.drop([c for c in cols if c in frame.columns])  # noqa: E731
        return LazyFrame(MapFrame(self._plan, func, label="drop", barrier=False))

    def filter(self, predicate: Expression) -> "LazyFrame":
        return LazyFrame(Filter(self._plan, predicate))

    def with_column(self, name: str, expression: Expression) -> "LazyFrame":
        return LazyFrame(WithColumn(self._plan, name, expression))

    def sort(self, by: "str | Sequence[str]", ascending: "bool | Sequence[bool]" = True) -> "LazyFrame":
        keys = (by,) if isinstance(by, str) else tuple(by)
        orders = (ascending,) * len(keys) if isinstance(ascending, bool) else tuple(ascending)
        return LazyFrame(Sort(self._plan, keys, orders))

    def group_agg(self, keys: "str | Sequence[str]",
                  aggregations: Mapping[str, "str | Sequence[str]"]) -> "LazyFrame":
        key_tuple = (keys,) if isinstance(keys, str) else tuple(keys)
        return LazyFrame(Aggregate(self._plan, key_tuple, dict(aggregations)))

    def join(self, other: "LazyFrame | DataFrame", on: "str | Sequence[str] | None" = None,
             left_on: "str | Sequence[str] | None" = None,
             right_on: "str | Sequence[str] | None" = None,
             how: str = "inner", suffix: str = "_right") -> "LazyFrame":
        if on is not None:
            left_on = right_on = on
        if left_on is None or right_on is None:
            raise ValueError("join requires 'on' or both 'left_on' and 'right_on'")
        left_keys = (left_on,) if isinstance(left_on, str) else tuple(left_on)
        right_keys = (right_on,) if isinstance(right_on, str) else tuple(right_on)
        right_plan = other.plan if isinstance(other, LazyFrame) else Scan(other)
        return LazyFrame(Join(self._plan, right_plan, left_keys, right_keys, how, suffix))

    def distinct(self, subset: Sequence[str] | None = None) -> "LazyFrame":
        return LazyFrame(Distinct(self._plan, tuple(subset) if subset else None))

    def drop_nulls(self, subset: Sequence[str] | None = None, how: str = "any") -> "LazyFrame":
        return LazyFrame(DropNulls(self._plan, tuple(subset) if subset else None, how))

    def fill_nulls(self, value: Any) -> "LazyFrame":
        return LazyFrame(FillNulls(self._plan, value))

    def limit(self, n: int) -> "LazyFrame":
        return LazyFrame(Limit(self._plan, n))

    def map_frame(self, func: Callable[[DataFrame], DataFrame], label: str = "map",
                  needs: Sequence[str] | None = None, barrier: bool = True) -> "LazyFrame":
        """Append an arbitrary frame transformation (optimization barrier)."""
        return LazyFrame(MapFrame(self._plan, func, label,
                                  tuple(needs) if needs else None, barrier))

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def collect(self, settings: OptimizerSettings | None = None, optimize_plan: bool = True,
                file_reader=None, cost_model=None, profile=None) -> DataFrame:
        frame, _ = self.collect_with_stats(settings, optimize_plan, file_reader,
                                           cost_model=cost_model, profile=profile)
        return frame

    def collect_with_stats(self, settings: OptimizerSettings | None = None,
                           optimize_plan: bool = True,
                           file_reader=None, cost_model=None,
                           profile=None) -> tuple[DataFrame, ExecutionStats]:
        """Optimize (cost-based when ``cost_model``/``profile`` are given —
        the engines inject theirs) and execute the plan."""
        executor = Executor(settings, optimize_plan, file_reader,
                            cost_model=cost_model, profile=profile)
        return executor.execute(self._plan)

    def collect_streaming(self, settings: OptimizerSettings | None = None,
                          optimize_plan: bool = True, file_reader=None,
                          batch_rows: int | None = None,
                          spill_budget_rows: int | None = None,
                          cost_model=None, profile=None
                          ) -> tuple[DataFrame, ExecutionStats]:
        """Execute the plan with the morsel-driven streaming executor.

        Results are bit-identical to :meth:`collect`; the returned stats
        additionally carry batch and spill counters (see
        :mod:`repro.plan.streaming`).
        """
        from .streaming import DEFAULT_BATCH_ROWS, StreamingExecutor

        executor = StreamingExecutor(
            settings, optimize_plan, file_reader,
            batch_rows=batch_rows if batch_rows is not None else DEFAULT_BATCH_ROWS,
            spill_budget_rows=spill_budget_rows,
            cost_model=cost_model, profile=profile)
        return executor.execute(self._plan)

    def __repr__(self) -> str:  # pragma: no cover
        return f"LazyFrame(\n{self.explain()}\n)"
