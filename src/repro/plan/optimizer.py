"""Cost-based logical plan optimizer.

The optimizer keeps the three classic rewrites the paper credits for the lazy
engines' advantage (Section 4.2: "Lazy evaluation leverages techniques such
as streaming processing, early filtering, and projection pushdown"):

* **Projection pushdown** — compute the set of columns actually needed by the
  plan and push it into the ``Scan`` / ``FileScan`` leaves, so eager reads
  materialize fewer columns;
* **Predicate pushdown** — move ``Filter`` nodes as close to the leaves as
  possible (below projections, column additions they don't depend on, fill
  operations and the sides of joins), so later operators touch fewer rows;
* **Filter fusion** — adjacent filters are merged into a single conjunctive
  predicate evaluated in one pass;

and adds three rewrites driven by the statistics layer
(:mod:`repro.plan.stats`) and the cost model
(:meth:`~repro.simulate.costmodel.CostModel.estimate_plan`):

* **Join reordering** — annotate each join's hash-table build side with the
  smaller *estimated* input, the classic "build on the smaller side" rule;
* **Cost-arbitrated filter placement** — pushing a filter below a join is no
  longer unconditional: both candidate plans are priced and the cheaper one
  wins (an expensive predicate over many probe rows can lose to filtering the
  reduced join output);
* **Common-subplan elimination** — structurally identical subtrees are
  collapsed into one shared node that the executors compute exactly once
  (TPC-H's self-join queries build the same filtered candidate set twice).

Every rewrite is result-preserving — optimized, rule-based and unoptimized
plans produce bit-identical frames — and individually switchable through
:class:`OptimizerSettings`; ``cost_based=False`` falls back to the historical
unconditional (rule-driven) behaviour of each rule, which the ablation
benchmarks compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Mapping

from .logical import (
    Aggregate,
    Distinct,
    DropNulls,
    FileScan,
    FillNulls,
    Filter,
    Join,
    Limit,
    MapFrame,
    PlanNode,
    Project,
    Scan,
    Sort,
    WithColumn,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..simulate.costmodel import CostModel
    from ..simulate.profiles import EngineProfile

__all__ = ["OptimizerSettings", "Optimizer", "optimize"]


@dataclass(frozen=True)
class OptimizerSettings:
    """Feature switches for individual rewrite rules.

    ``cost_based`` selects how the statistics-driven rules decide: ``True``
    compares full :meth:`~repro.simulate.costmodel.CostModel.estimate_plan`
    prices of the candidate plans, ``False`` applies each rule's classical
    unconditional heuristic (the historical rule-driven optimizer).
    """

    projection_pushdown: bool = True
    predicate_pushdown: bool = True
    filter_fusion: bool = True
    join_reordering: bool = True
    common_subplan_elimination: bool = True
    cost_based: bool = True

    @classmethod
    def all_disabled(cls) -> "OptimizerSettings":
        # Construct by keyword so new rule flags can never silently mis-bind
        # as the dataclass grows.
        return cls(**{f.name: False for f in fields(cls)})


class Optimizer:
    """Applies the enabled rewrite rules until a fixed point is reached.

    ``cost_model`` and ``profile`` inject the engine-specific pricing used by
    the cost-based decisions; without them a machine-neutral default
    (the Pandas profile on the paper's server) arbitrates, which preserves
    the *relative* choices.  ``catalog`` maps ``FileScan`` paths to
    :class:`~repro.plan.stats.TableStats` for plans over files.
    """

    def __init__(self, settings: OptimizerSettings | None = None,
                 cost_model: "CostModel | None" = None,
                 profile: "EngineProfile | None" = None,
                 catalog=None):
        self.settings = settings or OptimizerSettings()
        self._cost_model = cost_model
        self._profile = profile
        self._catalog = catalog
        # Per-optimize() price memo keyed by structural plan fingerprint: the
        # incumbent plan is re-priced for every candidate decision otherwise.
        # Only active inside optimize() — the keys embed frame object ids,
        # which are stable while the call holds the plan alive but could be
        # recycled between unrelated external plan_seconds() calls.
        self._price_cache: dict[str, float] | None = None

    # ------------------------------------------------------------------ #
    def optimize(self, plan: PlanNode) -> PlanNode:
        from .stats import plan_key

        previous = None
        current = plan
        self._price_cache = {}
        try:
            # The rules are individually idempotent but can enable each other
            # (a pushed filter may expose a fusable pair), so iterate briefly.
            for _ in range(10):
                if self.settings.filter_fusion:
                    current = self._fuse_filters(current)
                if self.settings.predicate_pushdown:
                    current = self._push_filters(current)
                if self.settings.projection_pushdown:
                    current = self._push_projection(current, required=None)
                if self.settings.join_reordering:
                    current = self._reorder_joins(current)
                rendered = plan_key(current)
                if rendered == previous:
                    break
                previous = rendered
            if self.settings.common_subplan_elimination:
                current = self._eliminate_common_subplans(current)
        finally:
            self._price_cache = None
        return current

    # ------------------------------------------------------------------ #
    # cost estimation of candidate plans
    # ------------------------------------------------------------------ #
    def plan_seconds(self, plan: PlanNode) -> float:
        """Estimated seconds of a (sub)plan under the optimizer's pricing."""
        key = None
        if self._price_cache is not None:
            from .stats import plan_key

            key = plan_key(plan)
            cached = self._price_cache.get(key)
            if cached is not None:
                return cached
        cost_model, profile = self._pricing()
        cost = cost_model.estimate_plan(profile, plan, catalog=self._catalog,
                                        pipeline_scope=False)
        seconds = float("inf") if cost.oom else cost.seconds
        if key is not None:
            self._price_cache[key] = seconds
        return seconds

    def _pricing(self):
        if self._cost_model is None or self._profile is None:
            from ..simulate.costmodel import CostModel
            from ..simulate.hardware import PAPER_SERVER
            from ..simulate.profiles import get_profile

            if self._cost_model is None:
                self._cost_model = CostModel(PAPER_SERVER)
            if self._profile is None:
                self._profile = get_profile("pandas")
        return self._cost_model, self._profile

    def _cheaper(self, candidate: PlanNode, incumbent: PlanNode) -> bool:
        """Cost-based arbitration: does ``candidate`` price below ``incumbent``?"""
        return self.plan_seconds(candidate) < self.plan_seconds(incumbent)

    # ------------------------------------------------------------------ #
    # filter fusion
    # ------------------------------------------------------------------ #
    def _fuse_filters(self, node: PlanNode) -> PlanNode:
        node = node.with_children([self._fuse_filters(c) for c in node.children()])
        if isinstance(node, Filter) and isinstance(node.child, Filter):
            merged = node.child.predicate & node.predicate
            return Filter(node.child.child, merged)
        return node

    # ------------------------------------------------------------------ #
    # predicate pushdown
    # ------------------------------------------------------------------ #
    def _push_filters(self, node: PlanNode) -> PlanNode:
        node = node.with_children([self._push_filters(c) for c in node.children()])
        if not isinstance(node, Filter):
            return node
        child = node.child
        predicate = node.predicate
        needed = predicate.columns()

        if isinstance(child, Project):
            if needed <= set(child.columns):
                pushed = Filter(child.child, predicate)
                return Project(self._push_filters(pushed), child.columns)
        elif isinstance(child, WithColumn):
            if child.name not in needed:
                pushed = Filter(child.child, predicate)
                return WithColumn(self._push_filters(pushed), child.name, child.expression)
        elif isinstance(child, FillNulls):
            filled = child.value
            touched = set(filled) if isinstance(filled, Mapping) else None
            if touched is not None and not (needed & touched):
                pushed = Filter(child.child, predicate)
                return FillNulls(self._push_filters(pushed), child.value)
        elif isinstance(child, Sort):
            pushed = Filter(child.child, predicate)
            return Sort(self._push_filters(pushed), child.by, child.ascending)
        elif isinstance(child, Join):
            candidates = self._push_filter_into_join(node, child)
            if candidates:
                # Filter-before-vs-after-join is a genuine cost decision: a
                # pushed plan filters more (input-side) rows with the
                # predicate but joins fewer, and vice versa.  Price every
                # legal placement — left push, right push, unpushed — and
                # keep the cheapest.  Rule-based mode pushes unconditionally
                # (left side first), the historical behaviour.
                if not self.settings.cost_based:
                    return candidates[0]
                best = min(candidates, key=self.plan_seconds)
                if self.plan_seconds(best) < self.plan_seconds(node):
                    return best
        elif isinstance(child, Distinct) and child.subset is None:
            pushed = Filter(child.child, predicate)
            return Distinct(self._push_filters(pushed), child.subset)
        return node

    def _push_filter_into_join(self, node: Filter, child: Join) -> list[PlanNode]:
        """Every legal join-pushdown candidate plan (may be empty)."""
        predicate = node.predicate
        needed = predicate.columns()
        left_cols = _plan_columns(child.left)
        right_cols = _plan_columns(child.right)
        candidates: list[PlanNode] = []
        if (left_cols is not None and needed <= left_cols
                and child.how in ("inner", "left", "semi", "anti")):
            new_left = self._push_filters(Filter(child.left, predicate))
            candidates.append(Join(new_left, child.right, child.left_on,
                                   child.right_on, child.how, child.suffix,
                                   child.build_side))
        if right_cols is not None and needed <= right_cols and child.how == "inner":
            new_right = self._push_filters(Filter(child.right, predicate))
            candidates.append(Join(child.left, new_right, child.left_on,
                                   child.right_on, child.how, child.suffix,
                                   child.build_side))
        return candidates

    # ------------------------------------------------------------------ #
    # projection pushdown
    # ------------------------------------------------------------------ #
    def _push_projection(self, node: PlanNode, required: set[str] | None) -> PlanNode:
        """Annotate scans with the minimal column set needed above them.

        ``required=None`` means "everything above needs all columns" (e.g. at
        the root, or below a barrier MapFrame node).
        """
        if isinstance(node, (Scan, FileScan)):
            if required is None:
                return node
            available = None
            if isinstance(node, Scan):
                available = set(node.frame.columns)
                required = required & available if available else required
            projected = tuple(sorted(required)) if required else node.projected
            if isinstance(node, Scan):
                return Scan(node.frame, projected)
            return FileScan(node.path, node.file_format, projected)

        own = node.required_columns()
        if isinstance(node, Project):
            child_required = set(node.columns)
        elif isinstance(node, Aggregate):
            child_required = set(node.keys) | set(node.aggregations)
        elif isinstance(node, MapFrame) and node.barrier and node.needs is None:
            child_required = None
        elif own is None or required is None:
            # the node (or something above it) needs every column
            child_required = None
        else:
            child_required = set(required) | own

        if isinstance(node, Join):
            left_cols = _plan_columns(node.left)
            right_cols = _plan_columns(node.right)
            if child_required is None or left_cols is None:
                left_req = None
            else:
                left_req = (child_required & left_cols) | set(node.left_on)
            if child_required is None or right_cols is None:
                right_req = None
            else:
                right_req = (child_required & right_cols) | set(node.right_on)
            new_left = self._push_projection(node.left, left_req)
            new_right = self._push_projection(node.right, right_req)
            return Join(new_left, new_right, node.left_on, node.right_on, node.how,
                        node.suffix, node.build_side)

        new_children = [self._push_projection(c, child_required) for c in node.children()]
        return node.with_children(new_children)

    # ------------------------------------------------------------------ #
    # join reordering (build-side selection)
    # ------------------------------------------------------------------ #
    def _reorder_joins(self, node: PlanNode, estimator=None) -> PlanNode:
        if estimator is None:
            # One estimator per pass: its per-node memo serves every join of
            # the tree instead of re-estimating subtrees for each Join node.
            from .stats import StatsEstimator

            estimator = StatsEstimator(catalog=self._catalog)
        children = node.children()
        reordered = [self._reorder_joins(c, estimator) for c in children]
        if any(new is not old for new, old in zip(reordered, children)):
            node = node.with_children(reordered)
        if not isinstance(node, Join):
            return node
        left_rows = estimator.estimate(node.left).rows
        right_rows = estimator.estimate(node.right).rows
        preferred = "left" if left_rows < right_rows else "right"
        if preferred == node.build_side:
            return node
        candidate = Join(node.left, node.right, node.left_on, node.right_on,
                         node.how, node.suffix, preferred)
        if self.settings.cost_based and not self._cheaper(candidate, node):
            return node
        return candidate

    # ------------------------------------------------------------------ #
    # common-subplan elimination
    # ------------------------------------------------------------------ #
    def _eliminate_common_subplans(self, plan: PlanNode) -> PlanNode:
        """Collapse structurally identical subtrees into shared node objects.

        The executors memoize shared nodes by object identity, so a subplan
        referenced twice is computed exactly once.  Sharing never changes
        results (frames are immutable downstream); the cost comparison is a
        formality — a deduplicated plan prices at most as high as the
        original — but keeps the rule uniformly cost-arbitrated.
        """
        from .stats import plan_key

        canonical: dict[str, PlanNode] = {}

        def dedup(node: PlanNode) -> PlanNode:
            children = node.children()
            deduped = [dedup(c) for c in children]
            if all(new is old for new, old in zip(deduped, children)):
                rebuilt = node  # identity-preserving: unshared plans copy nothing
            else:
                rebuilt = node.with_children(deduped)
            key = plan_key(rebuilt)
            existing = canonical.get(key)
            if existing is not None:
                return existing
            canonical[key] = rebuilt
            return rebuilt

        candidate = dedup(plan)
        if candidate is plan:
            return plan
        if self.settings.cost_based and self.plan_seconds(candidate) > self.plan_seconds(plan):
            return plan  # pragma: no cover - sharing can only reduce the estimate
        return candidate


def _plan_columns(node: PlanNode) -> set[str] | None:
    """Best-effort set of output columns of a plan subtree.

    Only used to decide pushdown legality; returning ``None`` (unknown) makes
    the optimizer conservative.
    """
    if isinstance(node, Scan):
        return set(node.frame.columns)
    if isinstance(node, FileScan):
        return None
    if isinstance(node, Project):
        return set(node.columns)
    if isinstance(node, WithColumn):
        below = _plan_columns(node.child)
        return None if below is None else below | {node.name}
    if isinstance(node, Aggregate):
        return set(node.keys) | set(node.aggregations)
    if isinstance(node, (Filter, Sort, Distinct, DropNulls, FillNulls, Limit)):
        return _plan_columns(node.child)
    if isinstance(node, Join):
        left = _plan_columns(node.left)
        right = _plan_columns(node.right)
        if left is None or right is None:
            return None
        return left | right | {f"{c}{node.suffix}" for c in right}
    return None


def optimize(plan: PlanNode, settings: OptimizerSettings | None = None,
             cost_model: "CostModel | None" = None,
             profile: "EngineProfile | None" = None,
             catalog=None) -> PlanNode:
    """Convenience wrapper around :class:`Optimizer`."""
    return Optimizer(settings, cost_model, profile, catalog).optimize(plan)
