"""Rule-based logical plan optimizer.

The optimizer implements the three classic rewrites the paper credits for the
lazy engines' advantage (Section 4.2: "Lazy evaluation leverages techniques
such as streaming processing, early filtering, and projection pushdown"):

* **Projection pushdown** — compute the set of columns actually needed by the
  plan and push it into the ``Scan`` / ``FileScan`` leaves, so eager reads
  materialize fewer columns;
* **Predicate pushdown** — move ``Filter`` nodes as close to the leaves as
  possible (below projections, column additions they don't depend on, fill
  operations and the probe side of joins), so later operators touch fewer
  rows;
* **Filter fusion** — adjacent filters are merged into a single conjunctive
  predicate evaluated in one pass.

Every rule is a pure function from plan to plan so rules can be toggled
individually — the ablation benchmarks rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .logical import (
    Aggregate,
    Distinct,
    DropNulls,
    FileScan,
    FillNulls,
    Filter,
    Join,
    Limit,
    MapFrame,
    PlanNode,
    Project,
    Scan,
    Sort,
    WithColumn,
)

__all__ = ["OptimizerSettings", "Optimizer", "optimize"]


@dataclass(frozen=True)
class OptimizerSettings:
    """Feature switches for individual rewrite rules."""

    projection_pushdown: bool = True
    predicate_pushdown: bool = True
    filter_fusion: bool = True

    @classmethod
    def all_disabled(cls) -> "OptimizerSettings":
        return cls(False, False, False)


class Optimizer:
    """Applies the enabled rewrite rules until a fixed point is reached."""

    def __init__(self, settings: OptimizerSettings | None = None):
        self.settings = settings or OptimizerSettings()

    # ------------------------------------------------------------------ #
    def optimize(self, plan: PlanNode) -> PlanNode:
        previous = None
        current = plan
        # The rules are individually idempotent but can enable each other
        # (a pushed filter may expose a fusable pair), so iterate briefly.
        for _ in range(10):
            if self.settings.filter_fusion:
                current = self._fuse_filters(current)
            if self.settings.predicate_pushdown:
                current = self._push_filters(current)
            if self.settings.projection_pushdown:
                current = self._push_projection(current, required=None)
            rendered = _render(current)
            if rendered == previous:
                break
            previous = rendered
        return current

    # ------------------------------------------------------------------ #
    # filter fusion
    # ------------------------------------------------------------------ #
    def _fuse_filters(self, node: PlanNode) -> PlanNode:
        node = node.with_children([self._fuse_filters(c) for c in node.children()])
        if isinstance(node, Filter) and isinstance(node.child, Filter):
            merged = node.child.predicate & node.predicate
            return Filter(node.child.child, merged)
        return node

    # ------------------------------------------------------------------ #
    # predicate pushdown
    # ------------------------------------------------------------------ #
    def _push_filters(self, node: PlanNode) -> PlanNode:
        node = node.with_children([self._push_filters(c) for c in node.children()])
        if not isinstance(node, Filter):
            return node
        child = node.child
        predicate = node.predicate
        needed = predicate.columns()

        if isinstance(child, Project):
            if needed <= set(child.columns):
                pushed = Filter(child.child, predicate)
                return Project(self._push_filters(pushed), child.columns)
        elif isinstance(child, WithColumn):
            if child.name not in needed:
                pushed = Filter(child.child, predicate)
                return WithColumn(self._push_filters(pushed), child.name, child.expression)
        elif isinstance(child, FillNulls):
            filled = child.value
            touched = set(filled) if isinstance(filled, Mapping) else None
            if touched is not None and not (needed & touched):
                pushed = Filter(child.child, predicate)
                return FillNulls(self._push_filters(pushed), child.value)
        elif isinstance(child, Sort):
            pushed = Filter(child.child, predicate)
            return Sort(self._push_filters(pushed), child.by, child.ascending)
        elif isinstance(child, Join):
            left_cols = _plan_columns(child.left)
            right_cols = _plan_columns(child.right)
            if left_cols is not None and needed <= left_cols and child.how in ("inner", "left", "semi", "anti"):
                new_left = self._push_filters(Filter(child.left, predicate))
                return Join(new_left, child.right, child.left_on, child.right_on, child.how, child.suffix)
            if right_cols is not None and needed <= right_cols and child.how == "inner":
                new_right = self._push_filters(Filter(child.right, predicate))
                return Join(child.left, new_right, child.left_on, child.right_on, child.how, child.suffix)
        elif isinstance(child, Distinct) and child.subset is None:
            pushed = Filter(child.child, predicate)
            return Distinct(self._push_filters(pushed), child.subset)
        return node

    # ------------------------------------------------------------------ #
    # projection pushdown
    # ------------------------------------------------------------------ #
    def _push_projection(self, node: PlanNode, required: set[str] | None) -> PlanNode:
        """Annotate scans with the minimal column set needed above them.

        ``required=None`` means "everything above needs all columns" (e.g. at
        the root, or below a barrier MapFrame node).
        """
        if isinstance(node, (Scan, FileScan)):
            if required is None:
                return node
            available = None
            if isinstance(node, Scan):
                available = set(node.frame.columns)
                required = required & available if available else required
            projected = tuple(sorted(required)) if required else node.projected
            if isinstance(node, Scan):
                return Scan(node.frame, projected)
            return FileScan(node.path, node.file_format, projected)

        own = node.required_columns()
        if isinstance(node, Project):
            child_required = set(node.columns)
        elif isinstance(node, Aggregate):
            child_required = set(node.keys) | set(node.aggregations)
        elif isinstance(node, MapFrame) and node.barrier and node.needs is None:
            child_required = None
        elif own is None or required is None:
            # the node (or something above it) needs every column
            child_required = None
        else:
            child_required = set(required) | own

        if isinstance(node, Join):
            left_cols = _plan_columns(node.left)
            right_cols = _plan_columns(node.right)
            if child_required is None or left_cols is None:
                left_req = None
            else:
                left_req = (child_required & left_cols) | set(node.left_on)
            if child_required is None or right_cols is None:
                right_req = None
            else:
                right_req = (child_required & right_cols) | set(node.right_on)
            new_left = self._push_projection(node.left, left_req)
            new_right = self._push_projection(node.right, right_req)
            return Join(new_left, new_right, node.left_on, node.right_on, node.how, node.suffix)

        new_children = [self._push_projection(c, child_required) for c in node.children()]
        return node.with_children(new_children)


def _plan_columns(node: PlanNode) -> set[str] | None:
    """Best-effort set of output columns of a plan subtree.

    Only used to decide pushdown legality; returning ``None`` (unknown) makes
    the optimizer conservative.
    """
    if isinstance(node, Scan):
        return set(node.frame.columns)
    if isinstance(node, FileScan):
        return None
    if isinstance(node, Project):
        return set(node.columns)
    if isinstance(node, WithColumn):
        below = _plan_columns(node.child)
        return None if below is None else below | {node.name}
    if isinstance(node, Aggregate):
        return set(node.keys) | set(node.aggregations)
    if isinstance(node, (Filter, Sort, Distinct, DropNulls, FillNulls, Limit)):
        return _plan_columns(node.child)
    if isinstance(node, Join):
        left = _plan_columns(node.left)
        right = _plan_columns(node.right)
        if left is None or right is None:
            return None
        return left | right | {f"{c}{node.suffix}" for c in right}
    return None


def _render(node: PlanNode) -> str:
    from .logical import explain

    return explain(node)


def optimize(plan: PlanNode, settings: OptimizerSettings | None = None) -> PlanNode:
    """Convenience wrapper around :class:`Optimizer`."""
    return Optimizer(settings).optimize(plan)
