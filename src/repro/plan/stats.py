"""Plan statistics: cardinality and byte-size estimation for logical plans.

This module is the foundation of cost-based optimization.  It harvests
:class:`TableStats` — row counts plus per-column distinct/null fractions and
byte widths — from in-memory frames (``Scan`` leaves) or from a caller-provided
catalog (``FileScan`` leaves, dataset schemas), and propagates them through
every :class:`~repro.plan.logical.PlanNode` with textbook selectivity
estimates:

* filters multiply the row count by a predicate selectivity derived from the
  expression shape (equality → ``1/distinct``, range → 1/3, conjunction →
  product, ``is_null`` → the column's null fraction, ...);
* joins estimate output cardinality as ``|L|·|R| / max(d(L.key), d(R.key))``;
* aggregations and distincts cap the output at the estimated number of
  distinct key combinations;
* ``drop_nulls`` applies the harvested null fractions.

The estimates feed three consumers: the cost-based
:class:`~repro.plan.optimizer.Optimizer` (join build-side selection,
filter-before-vs-after-join decisions, common-subplan elimination), the
``explain()`` rendering (estimated rows/bytes/cost per node), and the
:mod:`~repro.plan.advisor` (per-pipeline engine/strategy recommendations).
Estimation never executes anything: harvesting reads a bounded sample of a
frame and is cached on the frame object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from ..frame.expressions import (
    Aliased,
    Apply,
    BinaryOp,
    ColumnRef,
    DateComponent,
    Expression,
    IsIn,
    Literal,
    StringPredicate,
    UnaryOp,
)
from ..frame.frame import DataFrame
from .logical import (
    Aggregate,
    Distinct,
    DropNulls,
    FileScan,
    FillNulls,
    Filter,
    Join,
    Limit,
    MapFrame,
    PlanNode,
    Project,
    Scan,
    Sort,
    WithColumn,
)

__all__ = [
    "ColumnStats",
    "TableStats",
    "StatsEstimator",
    "harvest_frame",
    "stats_from_context",
    "predicate_selectivity",
    "expression_key",
    "plan_key",
    "node_cost_inputs",
    "PLAN_NODE_COST_CLASS",
    "DEFAULT_DISTINCT_FRACTION",
    "DEFAULT_PREDICATE_SELECTIVITY",
    "RANGE_SELECTIVITY",
    "JOIN_BUILD_COST_WEIGHT",
    "KEYLIKE_DISTINCT_FRACTION",
]

#: Distinct fraction assumed for columns with no harvested statistics.
DEFAULT_DISTINCT_FRACTION = 0.1
#: Selectivity of a range comparison (``<``, ``<=``, ``>``, ``>=``) — the
#: classic System R third.
RANGE_SELECTIVITY = 1.0 / 3.0
#: Selectivity assumed for string pattern predicates.
_STRING_SELECTIVITY = {"contains": 0.10, "like": 0.10,
                       "startswith": 0.05, "endswith": 0.05}
#: Fallback selectivity for opaque predicates (``apply`` lambdas, unparsable
#: pipeline expressions, ...).  Shared with the pipeline-level estimation in
#: :mod:`repro.engines.base` so both paths degrade identically.
DEFAULT_PREDICATE_SELECTIVITY = 0.25
_DEFAULT_SELECTIVITY = DEFAULT_PREDICATE_SELECTIVITY
#: Row-match fractions assumed for semi/anti joins when key statistics are
#: inconclusive.
_SEMI_SELECTIVITY = 0.7
#: Rows of a file whose statistics are unknown (no catalog entry).
_UNKNOWN_FILE_ROWS = 1_000_000
#: Hash-join pricing weight: building the hash table costs about twice as
#: much per row as probing it, which is what makes "build on the smaller
#: side" a win.  Shared by plan-level estimation and runtime plan pricing.
JOIN_BUILD_COST_WEIGHT = 2.0
#: Rows sampled when harvesting distinct fractions from a frame.
_HARVEST_SAMPLE_ROWS = 4096
#: Distinct fraction above which a column is treated as key-like when lifting
#: sample statistics to population scale: key-like columns keep their
#: *fraction* (ids stay unique), lower-cardinality columns keep their
#: distinct *count* (a flag column has 4 values at any scale).
KEYLIKE_DISTINCT_FRACTION = 0.5

#: Cost-model operator class of each plan node type (``None`` = not priced,
#: mirroring the runtime ``scan`` record).
PLAN_NODE_COST_CLASS: dict[type, str | None] = {
    Scan: None,
    FileScan: "read_csv",   # switched to read_parquet per node format
    Project: "metadata",
    Filter: "filter",
    WithColumn: "elementwise",
    Sort: "sort",
    Aggregate: "groupby",
    Join: "join",
    Distinct: "dedup",
    DropNulls: "dropna",
    FillNulls: "fillna",
    Limit: "metadata",
    MapFrame: "elementwise",
}


# --------------------------------------------------------------------------- #
# statistics containers
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ColumnStats:
    """Harvested (or assumed) statistics of one column."""

    byte_width: float = 8.0
    distinct_fraction: float = DEFAULT_DISTINCT_FRACTION
    null_fraction: float = 0.0


@dataclass
class TableStats:
    """Estimated shape of a (sub)plan's output: rows plus per-column stats."""

    rows: float
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def width(self) -> int:
        return max(1, len(self.columns))

    @property
    def row_bytes(self) -> float:
        if not self.columns:
            return 8.0
        return sum(c.byte_width for c in self.columns.values())

    @property
    def bytes(self) -> int:
        return int(max(0.0, self.rows) * self.row_bytes)

    def column(self, name: str) -> ColumnStats:
        return self.columns.get(name, ColumnStats())

    def distinct_count(self, names) -> float:
        """Estimated distinct combinations of the given key columns."""
        count = 1.0
        for name in names:
            fraction = self.column(name).distinct_fraction
            count *= max(1.0, fraction * max(1.0, self.rows))
        return min(max(1.0, self.rows), count)

    def bytes_for(self, names) -> int:
        widths = sum(self.column(name).byte_width for name in names) or 8.0
        return int(max(0.0, self.rows) * widths)

    # ------------------------------------------------------------------ #
    def with_rows(self, rows: float) -> "TableStats":
        return TableStats(max(0.0, rows), dict(self.columns))

    def drop_nulls(self, subset, how: str = "any") -> "TableStats":
        """Estimated effect of dropping null rows over ``subset`` columns.

        Shared by plan-node estimation (``DropNulls``) and pipeline-step
        estimation (the ``dropna`` preparator) so both paths keep identical
        keep-fraction math.
        """
        subset = list(subset)
        fractions = [self.column(name).null_fraction for name in subset]
        if how == "all":
            drop = 1.0
            for fraction in fractions:
                drop *= fraction
            keep = 1.0 - drop
        else:
            keep = 1.0
            for fraction in fractions:
                keep *= (1.0 - fraction)
        touched = set(subset)
        columns = {name: (replace(stats, null_fraction=0.0)
                          if name in touched else stats)
                   for name, stats in self.columns.items()}
        return TableStats(self.rows * keep, columns)

    def fill_nulls(self, touched) -> "TableStats":
        """Estimated effect of filling nulls in the ``touched`` columns."""
        touched = set(touched)
        columns = {name: (replace(stats, null_fraction=0.0)
                          if name in touched else stats)
                   for name, stats in self.columns.items()}
        return TableStats(self.rows, columns)

    def scaled(self, factor: float) -> "TableStats":
        """Statistics lifted from a physical sample to ``factor``× the rows.

        Null fractions and byte widths are scale-invariant; distinct
        statistics are not — a key-like column (sample distinct fraction ≥
        :data:`KEYLIKE_DISTINCT_FRACTION`) keeps its *fraction* when lifted,
        a categorical column keeps its distinct *count*.
        """
        if factor == 1.0:
            return self.with_rows(self.rows)
        rows = max(0.0, self.rows * factor)
        columns: dict[str, ColumnStats] = {}
        for name, stats in self.columns.items():
            fraction = stats.distinct_fraction
            if factor > 1.0 and fraction < KEYLIKE_DISTINCT_FRACTION:
                distinct = fraction * max(1.0, self.rows)
                fraction = min(1.0, distinct / max(1.0, rows))
            columns[name] = replace(stats, distinct_fraction=fraction)
        return TableStats(rows, columns)

    def project(self, names) -> "TableStats":
        return TableStats(self.rows, {n: self.column(n) for n in names})

    @classmethod
    def assumed(cls, columns=("*",), rows: float = float(_UNKNOWN_FILE_ROWS)) -> "TableStats":
        return cls(rows, {name: ColumnStats() for name in columns})


def harvest_frame(frame: DataFrame, sample_rows: int = _HARVEST_SAMPLE_ROWS) -> TableStats:
    """Harvest row count, distinct/null fractions and byte widths of a frame.

    Distinct fractions are measured on a bounded head sample so harvesting
    stays cheap for large physical samples; the result is cached on the frame
    object (keyed by its shape) because plans reference the same frame many
    times during optimization.
    """
    rows = frame.num_rows
    cache_key = (rows, tuple(frame.columns))
    cached = getattr(frame, "_plan_stats_cache", None)
    if cached is not None and cached[0] == cache_key:
        return cached[1]
    columns: dict[str, ColumnStats] = {}
    sample_len = min(rows, sample_rows)
    for name in frame.columns:
        column = frame[name]
        width = (column.memory_usage() / rows) if rows else 8.0
        nulls = (column.null_count() / rows) if rows else 0.0
        if sample_len:
            sample = column.slice(0, sample_len) if rows > sample_len else column
            distinct = max(1, sample.nunique()) / max(1, len(sample))
        else:
            distinct = DEFAULT_DISTINCT_FRACTION
        columns[name] = ColumnStats(byte_width=width, distinct_fraction=distinct,
                                    null_fraction=nulls)
    stats = TableStats(float(rows), columns)
    try:
        frame._plan_stats_cache = (cache_key, stats)  # type: ignore[attr-defined]
    except AttributeError:  # exotic frame subclasses with __slots__
        pass
    return stats


def stats_from_context(sim, frame: DataFrame | None = None) -> TableStats:
    """Table statistics at *nominal* scale from a simulation context.

    Per-column byte widths come from the context's nominal column bytes;
    distinct and null fractions are harvested from the physical sample when
    one is provided (fractions are scale-invariant).
    """
    harvested = harvest_frame(frame) if frame is not None else None
    rows = float(max(1, sim.nominal_rows))
    if harvested is not None and harvested.rows:
        # lift the sample's distinct statistics to nominal scale (key-like
        # columns keep their fraction, categorical ones their count)
        harvested = harvested.scaled(rows / harvested.rows)
    columns: dict[str, ColumnStats] = {}
    names = list(sim.column_bytes) or (list(harvested.columns) if harvested else [])
    for name in names:
        base = harvested.column(name) if harvested else ColumnStats()
        nominal = sim.column_bytes.get(name)
        width = (nominal / rows) if nominal else base.byte_width
        columns[name] = replace(base, byte_width=width)
    if not columns:
        return TableStats.assumed(rows=rows)
    return TableStats(rows, columns)


# --------------------------------------------------------------------------- #
# predicate selectivity
# --------------------------------------------------------------------------- #
def _equality_selectivity(expr: BinaryOp, stats: TableStats) -> float:
    referenced = expr.columns()
    if not referenced:
        return _DEFAULT_SELECTIVITY
    distinct = max(stats.distinct_count([name]) for name in referenced)
    return 1.0 / max(1.0, distinct)


def predicate_selectivity(expr: Expression, stats: TableStats) -> float:
    """Estimated fraction of rows satisfying a boolean predicate."""
    if isinstance(expr, Aliased):
        return predicate_selectivity(expr.inner, stats)
    if isinstance(expr, BinaryOp):
        if expr.op == "&":
            return (predicate_selectivity(expr.left, stats)
                    * predicate_selectivity(expr.right, stats))
        if expr.op == "|":
            left = predicate_selectivity(expr.left, stats)
            right = predicate_selectivity(expr.right, stats)
            return min(1.0, left + right - left * right)
        if expr.op == "==":
            return _equality_selectivity(expr, stats)
        if expr.op == "!=":
            return max(0.0, 1.0 - _equality_selectivity(expr, stats))
        if expr.op in ("<", "<=", ">", ">="):
            return RANGE_SELECTIVITY
        return _DEFAULT_SELECTIVITY
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return max(0.0, 1.0 - predicate_selectivity(expr.operand, stats))
        referenced = expr.operand.columns()
        null_fraction = max((stats.column(n).null_fraction for n in referenced),
                            default=0.0)
        if expr.op == "is_null":
            return null_fraction
        if expr.op == "not_null":
            return 1.0 - null_fraction
        return _DEFAULT_SELECTIVITY
    if isinstance(expr, IsIn):
        referenced = expr.operand.columns()
        if not referenced:
            return _DEFAULT_SELECTIVITY
        distinct = max(stats.distinct_count([name]) for name in referenced)
        return min(1.0, len(expr.values) / max(1.0, distinct))
    if isinstance(expr, StringPredicate):
        return _STRING_SELECTIVITY.get(expr.kind, _DEFAULT_SELECTIVITY)
    return _DEFAULT_SELECTIVITY


# --------------------------------------------------------------------------- #
# structural fingerprints (fixed-point detection + common-subplan elimination)
# --------------------------------------------------------------------------- #
def expression_key(expr: Expression) -> str:
    """Structural fingerprint of an expression.

    Like :meth:`Expression.describe` but unambiguous for opaque callables
    (two distinct lambdas render identically in ``describe`` — keying them by
    object identity keeps common-subplan elimination sound).
    """
    if isinstance(expr, Aliased):
        return f"alias({expression_key(expr.inner)},{expr.name})"
    if isinstance(expr, ColumnRef):
        return f"col({expr.name})"
    if isinstance(expr, Literal):
        return f"lit({expr.value!r})"
    if isinstance(expr, BinaryOp):
        return f"({expression_key(expr.left)}{expr.op}{expression_key(expr.right)})"
    if isinstance(expr, UnaryOp):
        return f"{expr.op}({expression_key(expr.operand)})"
    if isinstance(expr, IsIn):
        return f"in({expression_key(expr.operand)},{expr.values!r})"
    if isinstance(expr, StringPredicate):
        return f"{expr.kind}({expression_key(expr.operand)},{expr.pattern!r},{expr.regex})"
    if isinstance(expr, DateComponent):
        return f"{expr.component}({expression_key(expr.operand)})"
    if isinstance(expr, Apply):
        return f"apply#{id(expr.func)}({expression_key(expr.operand)})"
    return f"{type(expr).__name__}#{id(expr)}"


def _node_key_head(node: PlanNode) -> str:
    if isinstance(node, Scan):
        return f"scan#{id(node.frame)}[{node.projected!r}]"
    if isinstance(node, FileScan):
        return f"filescan({node.path!r},{node.file_format},{node.projected!r})"
    if isinstance(node, Project):
        return f"project{node.columns!r}"
    if isinstance(node, Filter):
        return f"filter({expression_key(node.predicate)})"
    if isinstance(node, WithColumn):
        return f"with_column({node.name},{expression_key(node.expression)})"
    if isinstance(node, Sort):
        return f"sort({node.by!r},{node.ascending!r})"
    if isinstance(node, Aggregate):
        aggs = ",".join(f"{name}:{fn!r}" for name, fn in node.aggregations.items())
        return f"aggregate({node.keys!r},{aggs})"
    if isinstance(node, Join):
        return (f"join({node.left_on!r},{node.right_on!r},{node.how},"
                f"{node.suffix!r},{node.build_side})")
    if isinstance(node, Distinct):
        return f"distinct({node.subset!r})"
    if isinstance(node, DropNulls):
        return f"drop_nulls({node.subset!r},{node.how})"
    if isinstance(node, FillNulls):
        return f"fill_nulls({node.value!r})"
    if isinstance(node, Limit):
        return f"limit({node.n})"
    if isinstance(node, MapFrame):
        return f"map#{id(node.func)}({node.label},{node.needs!r},{node.barrier})"
    return f"{type(node).__name__}#{id(node)}"


def plan_key(node: PlanNode) -> str:
    """Deterministic structural fingerprint of a plan subtree.

    Two subtrees with the same key compute the same result, which is what the
    optimizer's fixed-point loop and common-subplan elimination rely on.
    Opaque callables (``MapFrame`` functions, ``apply`` lambdas) are keyed by
    identity so distinct functions never collapse.
    """
    head = _node_key_head(node)
    children = node.children()
    if not children:
        return head
    return f"{head}({','.join(plan_key(c) for c in children)})"


# --------------------------------------------------------------------------- #
# the estimator
# --------------------------------------------------------------------------- #
class StatsEstimator:
    """Propagates :class:`TableStats` bottom-up through a logical plan.

    ``catalog`` maps ``FileScan`` paths to table statistics (dataset schemas,
    advisor-provided contexts); ``scan_stats`` overrides the statistics of
    every in-memory ``Scan`` leaf (used when a single source frame stands in
    for an already-estimated intermediate); ``row_scale`` multiplies leaf row
    counts, which is how physical samples are priced at nominal scale.
    Estimates are memoized per node object, so shared subplans (common-subplan
    elimination) are estimated once.
    """

    def __init__(self, catalog: Mapping[str, TableStats] | None = None,
                 scan_stats: TableStats | None = None,
                 row_scale: float = 1.0):
        self.catalog = dict(catalog or {})
        self.scan_stats = scan_stats
        self.row_scale = max(row_scale, 1e-9)
        self._cache: dict[int, TableStats] = {}

    # ------------------------------------------------------------------ #
    def estimate(self, node: PlanNode) -> TableStats:
        cached = self._cache.get(id(node))
        if cached is None:
            cached = self._estimate(node)
            self._cache[id(node)] = cached
        return cached

    # ------------------------------------------------------------------ #
    def _estimate(self, node: PlanNode) -> TableStats:
        if isinstance(node, Scan):
            stats = self.scan_stats or harvest_frame(node.frame).scaled(self.row_scale)
            if node.projected is not None:
                stats = stats.project([c for c in stats.columns if c in set(node.projected)]
                                      or list(node.projected))
            return stats

        if isinstance(node, FileScan):
            stats = self.catalog.get(node.path)
            if stats is None:
                stats = TableStats.assumed(node.projected or ("*",))
            else:
                stats = stats.scaled(self.row_scale)
            if node.projected is not None:
                stats = stats.project(node.projected)
            return stats

        if isinstance(node, Project):
            return self.estimate(node.child).project(node.columns)

        if isinstance(node, Filter):
            child = self.estimate(node.child)
            selectivity = min(1.0, max(0.0, predicate_selectivity(node.predicate, child)))
            return child.with_rows(child.rows * selectivity)

        if isinstance(node, WithColumn):
            child = self.estimate(node.child)
            columns = dict(child.columns)
            columns[node.name] = ColumnStats()
            return TableStats(child.rows, columns)

        if isinstance(node, Sort):
            return self.estimate(node.child)

        if isinstance(node, Aggregate):
            child = self.estimate(node.child)
            rows = child.distinct_count(node.keys)
            columns = {name: child.column(name) for name in node.keys}
            for name in node.aggregations:
                columns[name] = ColumnStats()
            out = TableStats(rows, columns)
            # key columns become unique in the output
            for name in node.keys:
                out.columns[name] = replace(out.column(name), distinct_fraction=1.0)
            return out

        if isinstance(node, Join):
            return self._estimate_join(node)

        if isinstance(node, Distinct):
            child = self.estimate(node.child)
            keys = node.subset if node.subset is not None else list(child.columns)
            return child.with_rows(child.distinct_count(keys))

        if isinstance(node, DropNulls):
            child = self.estimate(node.child)
            subset = node.subset if node.subset is not None else list(child.columns)
            return child.drop_nulls(subset, node.how)

        if isinstance(node, FillNulls):
            child = self.estimate(node.child)
            touched = (set(node.value) if isinstance(node.value, Mapping)
                       else set(child.columns))
            return child.fill_nulls(touched)

        if isinstance(node, Limit):
            child = self.estimate(node.child)
            return child.with_rows(min(float(node.n), child.rows))

        if isinstance(node, MapFrame):
            # Opaque function: assume it preserves the input shape.
            return self.estimate(node.child)

        return TableStats.assumed()

    # ------------------------------------------------------------------ #
    def _estimate_join(self, node: Join) -> TableStats:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        left_distinct = left.distinct_count(node.left_on)
        right_distinct = right.distinct_count(node.right_on)
        matched = (left.rows * right.rows) / max(left_distinct, right_distinct, 1.0)
        if node.how == "inner":
            rows = matched
        elif node.how == "left":
            rows = max(matched, left.rows)
        elif node.how == "semi":
            rows = left.rows * _SEMI_SELECTIVITY
        elif node.how == "anti":
            rows = left.rows * (1.0 - _SEMI_SELECTIVITY)
        elif node.how == "right":
            rows = max(matched, right.rows)
        else:  # outer
            rows = max(matched, left.rows + right.rows - matched)
        if node.how in ("semi", "anti"):
            return left.with_rows(rows)
        columns = dict(left.columns)
        for name, stats in right.columns.items():
            if name in set(node.right_on):
                continue
            key = name if name not in columns else f"{name}{node.suffix}"
            columns[key] = stats
        return TableStats(rows, columns)

    # ------------------------------------------------------------------ #
    def join_sides(self, node: Join) -> tuple[TableStats, TableStats]:
        """(probe, build) statistics honouring the node's ``build_side``."""
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        if node.build_side == "left":
            return right, left
        return left, right


# --------------------------------------------------------------------------- #
# plan-node → cost-model inputs
# --------------------------------------------------------------------------- #
def node_cost_inputs(node: PlanNode, estimator: StatsEstimator
                     ) -> tuple[str | None, int, int, int]:
    """(op_class, rows, columns, bytes) priced for one plan node.

    Mirrors what the physical executors record at runtime — filter cost on
    predicate columns, joins on probe + weighted build rows, reads on the
    file footprint — but on *estimated* quantities, so
    :meth:`~repro.simulate.costmodel.CostModel.estimate_plan` prices plans
    that were never executed.
    """
    op_class = PLAN_NODE_COST_CLASS.get(type(node), "elementwise")
    if op_class is None:
        return None, 0, 0, 0
    stats = estimator.estimate(node)

    if isinstance(node, FileScan):
        if node.file_format in ("parquet", "rparquet"):
            return "read_parquet", int(stats.rows), stats.width, stats.bytes
        # CSV parses the whole textual file; ~1.1x the in-memory footprint
        return "read_csv", int(stats.rows), stats.width, int(stats.bytes * 1.1)

    if isinstance(node, Filter):
        child = estimator.estimate(node.child)
        names = sorted(node.predicate.columns())
        return op_class, int(child.rows), max(1, len(names)), child.bytes_for(names)

    if isinstance(node, WithColumn):
        child = estimator.estimate(node.child)
        names = sorted(node.expression.columns())
        return op_class, int(child.rows), max(1, len(names)), child.bytes_for(names)

    if isinstance(node, Sort):
        child = estimator.estimate(node.child)
        return op_class, int(child.rows), len(node.by), child.bytes_for(node.by)

    if isinstance(node, Aggregate):
        child = estimator.estimate(node.child)
        names = tuple(node.keys) + tuple(node.aggregations)
        return op_class, int(child.rows), len(names), child.bytes_for(names)

    if isinstance(node, Join):
        probe, build = estimator.join_sides(node)
        rows = probe.rows + JOIN_BUILD_COST_WEIGHT * build.rows
        key_bytes = (probe.bytes_for(node.left_on if node.build_side != "left" else node.right_on)
                     + build.bytes_for(node.right_on if node.build_side != "left" else node.left_on))
        return op_class, int(rows), len(node.left_on), key_bytes

    if isinstance(node, (Distinct, DropNulls)):
        child = estimator.estimate(node.child)
        subset = node.subset if node.subset is not None else tuple(child.columns)
        return op_class, int(child.rows), max(1, len(subset)), child.bytes_for(subset)

    if isinstance(node, FillNulls):
        child = estimator.estimate(node.child)
        touched = (tuple(node.value) if isinstance(node.value, Mapping)
                   else tuple(child.columns))
        return op_class, int(child.rows), max(1, len(touched)), child.bytes_for(touched)

    if isinstance(node, (Project, Limit)):
        child = estimator.estimate(node.child)
        return op_class, int(child.rows), stats.width, stats.bytes

    # MapFrame and anything future: elementwise over the child's shape
    child_nodes = node.children()
    child = estimator.estimate(child_nodes[0]) if child_nodes else stats
    return op_class, int(child.rows), child.width, child.bytes


def annotate_with(estimator: StatsEstimator,
                  coster: Callable[[PlanNode], Any] | None = None
                  ) -> Callable[[PlanNode], str]:
    """Build an ``explain()`` annotation callback: estimated rows/bytes/cost."""
    def annotate(node: PlanNode) -> str:
        stats = estimator.estimate(node)
        parts = [f"~{int(stats.rows):,} rows", f"~{_human_bytes(stats.bytes)}"]
        if coster is not None:
            seconds = coster(node)
            if seconds is not None:
                parts.append(f"~{seconds:.3g}s")
        return "  [" + ", ".join(parts) + "]"
    return annotate


def _human_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(count) < 1024.0 or unit == "GiB":
            return f"{count:.1f}{unit}" if unit != "B" else f"{int(count)}B"
        count /= 1024.0
    return f"{count:.1f}GiB"  # pragma: no cover
