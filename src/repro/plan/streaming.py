"""Morsel-driven streaming executor for logical plans.

The eager :class:`~repro.plan.executor.Executor` materializes every
intermediate whole, which makes "streaming processing" — the technique the
paper credits for the lazy engines' scalability — a costing fiction: the
memory model prices bounded windows that the physical layer never actually
uses.  This module makes streaming real.  A plan is compiled into pipelined
operator chains that pull bounded-size row batches (*morsels*) from their
source:

* **streamable operators** (project, filter, with-column, fill/drop nulls,
  non-barrier maps, limit) transform one batch at a time and never see the
  whole frame;
* **pipeline breakers** (sort, group-by aggregation, distinct, the build side
  of a join, barrier maps) must accumulate their input before producing any
  output.  They do so through a :class:`SpillAccumulator`, which tracks how
  many rows exceeded the in-memory partition budget — the physical footprint
  that the simulation layer converts into spill bytes and disk time;
* **probe-streamable joins** (inner/left/semi/anti) accumulate only the build
  (right) side and stream probe batches against it, exactly like the hash
  joins of Polars' streaming engine and Spark.

Results are bit-identical to eager execution for every plan: batch-wise
transforms are row-local, breakers fall back to whole-partition execution
after accumulating, and probe-side join streaming preserves probe order
(the output order of the substrate's hash join).

:class:`StreamingExecutor` mirrors the eager executor's interface —
``execute(plan) -> (DataFrame, ExecutionStats)`` — and additionally fills the
batch/spill counters of :class:`~repro.plan.executor.OperatorStat`, which
:class:`~repro.engines.base.BaseEngine` feeds into the memory model so
streaming-capable engines degrade to simulated spill instead of raising
:class:`~repro.simulate.memory.SimulatedOOMError`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from ..frame.errors import PlanError
from ..frame.expressions import ensure_boolean
from ..frame.frame import DataFrame, concat_rows
from .executor import ExecutionStats, file_source_columns, shared_subplans
from .logical import (
    Aggregate,
    Distinct,
    DropNulls,
    FileScan,
    FillNulls,
    Filter,
    Join,
    Limit,
    MapFrame,
    PlanNode,
    Project,
    Scan,
    Sort,
    WithColumn,
)
from .optimizer import Optimizer, OptimizerSettings

__all__ = [
    "DEFAULT_BATCH_ROWS",
    "SpillAccumulator",
    "StreamingExecutor",
    "execute_streaming",
    "stream_preparator",
]

#: Rows per morsel.  Matches the vectorized batch sizes of real streaming
#: engines (Polars/DuckDB work in chunks of tens of thousands of rows).
DEFAULT_BATCH_ROWS = 65536

#: Join types whose probe side can be streamed against a fully-built right
#: side without changing the output (probe-order results).  ``outer`` and
#: ``right`` need the set of unmatched build rows, which is only known after
#: the last probe batch, so they run as full breakers.
_PROBE_STREAMABLE_JOINS = frozenset({"inner", "left", "semi", "anti"})


class SpillAccumulator:
    """Bounded in-memory partition store for pipeline breakers.

    Batches are appended until the accumulated row count exceeds
    ``budget_rows``; everything beyond the budget is counted as spilled.  The
    spill is *simulated* — the physical sample always fits in real RAM, so the
    partitions are retained and :meth:`merge` rebuilds the full input — but
    the counters are what the engine layer feeds into the memory model to
    price out-of-core execution on the nominal dataset size.
    """

    def __init__(self, budget_rows: int | None = None):
        self.budget_rows = budget_rows
        self.pieces: list[DataFrame] = []
        self.rows = 0
        self.batches = 0
        self.spilled_rows = 0
        self.spilled_partitions = 0

    def add(self, batch: DataFrame) -> None:
        self.pieces.append(batch)
        self.batches += 1
        previous = self.rows
        self.rows += batch.num_rows
        if self.budget_rows is not None and self.rows > self.budget_rows:
            over = self.rows - max(self.budget_rows, previous)
            self.spilled_rows += max(0, over)
            self.spilled_partitions += 1

    def merge(self) -> DataFrame:
        if not self.pieces:
            return DataFrame()
        if len(self.pieces) == 1:
            return self.pieces[0]
        return concat_rows(self.pieces)


def _batches(frame: DataFrame, batch_rows: int) -> Iterator[DataFrame]:
    """Slice a frame into morsels of at most ``batch_rows`` rows."""
    if frame.num_rows == 0 or frame.num_rows <= batch_rows:
        yield frame
        return
    for start in range(0, frame.num_rows, batch_rows):
        yield frame.slice(start, batch_rows)


class StreamingExecutor:
    """Executes logical plans as morsel-driven operator pipelines.

    Mirrors :class:`~repro.plan.executor.Executor`: the plan is (optionally)
    optimized first, ``file_reader`` serves FileScan leaves, and the returned
    :class:`ExecutionStats` records one entry per operator — now with batch
    and spill counters filled in.  ``spill_budget_rows`` bounds how many rows
    a pipeline breaker may hold before the overflow counts as spilled
    (``None`` means breakers never report physical spill; the simulated
    memory model still prices nominal spill from its own budget).
    """

    def __init__(
        self,
        settings: OptimizerSettings | None = None,
        optimize_plan: bool = True,
        file_reader: Callable[[str, str, tuple[str, ...] | None], DataFrame] | None = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        spill_budget_rows: int | None = None,
        cost_model=None,
        profile=None,
    ):
        if batch_rows < 1:
            raise ValueError("batch_rows must be at least 1")
        self._optimizer = (Optimizer(settings, cost_model=cost_model, profile=profile)
                           if optimize_plan else None)
        self._cse = optimize_plan and (settings or OptimizerSettings()).common_subplan_elimination
        self._file_reader = file_reader
        self.batch_rows = batch_rows
        self.spill_budget_rows = spill_budget_rows
        self._shared: frozenset[int] = frozenset()
        self._shared_results: dict[int, DataFrame] = {}

    # ------------------------------------------------------------------ #
    def execute(self, plan: PlanNode) -> tuple[DataFrame, ExecutionStats]:
        if self._optimizer is not None:
            plan = self._optimizer.optimize(plan)
        stats = ExecutionStats()
        self._shared = shared_subplans(plan) if self._cse else frozenset()
        self._shared_results = {}
        frame = self._gather(plan, stats)
        return frame, stats

    # ------------------------------------------------------------------ #
    def _gather(self, node: PlanNode, stats: ExecutionStats) -> DataFrame:
        """Materialize a sub-plan by draining its batch stream."""
        pieces = list(self._stream(node, stats))
        if not pieces:
            return DataFrame()
        if len(pieces) == 1:
            return pieces[0]
        return concat_rows(pieces)

    def _accumulate(self, node: PlanNode, stats: ExecutionStats) -> SpillAccumulator:
        """Drain a sub-plan into a spill-tracking breaker partition store."""
        store = SpillAccumulator(self.spill_budget_rows)
        for batch in self._stream(node, stats):
            store.add(batch)
        return store

    # ------------------------------------------------------------------ #
    def _stream(self, node: PlanNode, stats: ExecutionStats) -> Iterator[DataFrame]:
        if id(node) in self._shared:
            # Common subplan: materialize once, then serve morsels from the
            # cached result for every reference.
            cached = self._shared_results.get(id(node))
            if cached is None:
                pieces = list(self._stream_node(node, stats))
                cached = (pieces[0] if len(pieces) == 1
                          else concat_rows(pieces) if pieces else DataFrame())
                self._shared_results[id(node)] = cached
            yield from _batches(cached, self.batch_rows)
            return
        yield from self._stream_node(node, stats)

    def _stream_node(self, node: PlanNode, stats: ExecutionStats) -> Iterator[DataFrame]:
        if isinstance(node, Scan):
            frame = node.frame
            if node.projected is not None:
                keep = [c for c in frame.columns if c in set(node.projected)]
                frame = frame.select(keep)
            batches = 0
            for batch in _batches(frame, self.batch_rows):
                batches += 1
                yield batch
            stats.record("scan", frame.num_rows, frame.num_rows, frame.num_columns,
                         source_columns=node.frame.num_columns,
                         column_names=tuple(frame.columns),
                         batches=batches, streamed=True)
            return

        if isinstance(node, FileScan):
            if self._file_reader is None:
                raise PlanError("plan contains a FileScan but no file_reader was provided")
            frame = self._file_reader(node.path, node.file_format, node.projected)
            batches = 0
            for batch in _batches(frame, self.batch_rows):
                batches += 1
                yield batch
            stats.record("read", frame.num_rows, frame.num_rows, frame.num_columns,
                         source_columns=file_source_columns(node, frame),
                         file_format=node.file_format,
                         column_names=tuple(frame.columns),
                         batches=batches, streamed=True)
            return

        if isinstance(node, Project):
            rows_in = rows_out = batches = 0
            for batch in self._stream(node.child, stats):
                out = batch.select(list(node.columns))
                rows_in += batch.num_rows
                rows_out += out.num_rows
                batches += 1
                yield out
            stats.record("project", rows_in, rows_out, len(node.columns),
                         column_names=tuple(node.columns),
                         batches=batches, streamed=True)
            return

        if isinstance(node, Filter):
            rows_in = rows_out = batches = 0
            for batch in self._stream(node.child, stats):
                mask = ensure_boolean(node.predicate.evaluate(batch))
                out = batch.filter(mask)
                rows_in += batch.num_rows
                rows_out += out.num_rows
                batches += 1
                yield out
            stats.record("filter", rows_in, rows_out,
                         max(1, len(node.predicate.columns())),
                         column_names=tuple(sorted(node.predicate.columns())),
                         batches=batches, streamed=True)
            return

        if isinstance(node, WithColumn):
            rows_in = rows_out = batches = 0
            for batch in self._stream(node.child, stats):
                out = batch.with_column(node.name, node.expression.evaluate(batch))
                rows_in += batch.num_rows
                rows_out += out.num_rows
                batches += 1
                yield out
            stats.record("with_column", rows_in, rows_out,
                         max(1, len(node.expression.columns())),
                         column_names=tuple(sorted(node.expression.columns())),
                         batches=batches, streamed=True)
            return

        if isinstance(node, DropNulls):
            rows_in = rows_out = batches = 0
            width = 1
            names: tuple[str, ...] = ()
            subset = list(node.subset) if node.subset else None
            for batch in self._stream(node.child, stats):
                out = batch.dropna(subset=subset, how=node.how)
                width = len(subset) if subset else batch.num_columns
                names = tuple(subset) if subset else tuple(batch.columns)
                rows_in += batch.num_rows
                rows_out += out.num_rows
                batches += 1
                yield out
            stats.record("dropna", rows_in, rows_out, width,
                         column_names=names, batches=batches, streamed=True)
            return

        if isinstance(node, FillNulls):
            rows_in = rows_out = batches = 0
            touched = 0
            names: tuple[str, ...] = ()
            for batch in self._stream(node.child, stats):
                value = node.value
                if isinstance(value, Mapping):
                    value = {k: v for k, v in value.items() if k in batch.columns}
                out = batch.fillna(value) if value != {} else batch
                touched = len(value) if isinstance(value, Mapping) else batch.num_columns
                names = (tuple(value) if isinstance(value, Mapping)
                         else tuple(batch.columns))
                rows_in += batch.num_rows
                rows_out += out.num_rows
                batches += 1
                yield out
            stats.record("fillna", rows_in, rows_out, touched,
                         column_names=names, batches=batches, streamed=True)
            return

        if isinstance(node, Limit):
            # The child stream is drained even past the limit so every
            # upstream operator records complete stats (abandoning the
            # generator would skip their record() calls and under-price the
            # plan); the post-limit batches are dropped without copying.
            taken = rows_in = batches = 0
            for batch in self._stream(node.child, stats):
                rows_in += batch.num_rows
                batches += 1
                if taken >= node.n:
                    continue
                out = batch.head(min(node.n - taken, batch.num_rows))
                taken += out.num_rows
                yield out
            stats.record("limit", rows_in, taken, 1, batches=batches, streamed=True)
            return

        if isinstance(node, MapFrame) and not node.barrier:
            rows_in = rows_out = batches = 0
            columns = 1
            for batch in self._stream(node.child, stats):
                out = node.func(batch)
                rows_in += batch.num_rows
                rows_out += out.num_rows
                columns = batch.num_columns
                batches += 1
                yield out
            stats.record(node.label, rows_in, rows_out, columns,
                         batches=batches, streamed=True)
            return

        # ---------------- pipeline breakers ---------------------------- #
        if isinstance(node, Sort):
            store = self._accumulate(node.child, stats)
            child = store.merge()
            out = child.sort_values(list(node.by), list(node.ascending))
            stats.record("sort", child.num_rows, out.num_rows, len(node.by),
                         column_names=tuple(node.by), batches=store.batches,
                         spilled_rows=store.spilled_rows)
            yield from _batches(out, self.batch_rows)
            return

        if isinstance(node, Aggregate):
            store = self._accumulate(node.child, stats)
            child = store.merge()
            out = child.group_agg(list(node.keys), dict(node.aggregations))
            stats.record("groupby", child.num_rows, out.num_rows,
                         len(node.keys) + len(node.aggregations),
                         column_names=tuple(node.keys) + tuple(node.aggregations),
                         batches=store.batches, spilled_rows=store.spilled_rows)
            yield from _batches(out, self.batch_rows)
            return

        if isinstance(node, Distinct):
            store = self._accumulate(node.child, stats)
            child = store.merge()
            out = child.drop_duplicates(subset=list(node.subset) if node.subset else None)
            stats.record("dedup", child.num_rows, out.num_rows,
                         len(node.subset) if node.subset else child.num_columns,
                         column_names=tuple(node.subset) if node.subset
                         else tuple(child.columns),
                         batches=store.batches, spilled_rows=store.spilled_rows)
            yield from _batches(out, self.batch_rows)
            return

        if isinstance(node, Join):
            build = self._accumulate(node.right, stats)
            right = build.merge()
            if node.how in _PROBE_STREAMABLE_JOINS:
                rows_in = rows_out = batches = 0
                for batch in self._stream(node.left, stats):
                    out = batch.join(right, left_on=list(node.left_on),
                                     right_on=list(node.right_on),
                                     how=node.how, suffix=node.suffix)
                    rows_in += batch.num_rows
                    rows_out += out.num_rows
                    batches += 1
                    yield out
                stats.record("join", rows_in + right.num_rows, rows_out,
                             len(node.left_on), column_names=tuple(node.left_on),
                             batches=batches + build.batches, streamed=True,
                             spilled_rows=build.spilled_rows,
                             build_rows=(rows_in if node.build_side == "left"
                                         else right.num_rows))
                return
            probe = self._accumulate(node.left, stats)
            left = probe.merge()
            out = left.join(right, left_on=list(node.left_on),
                            right_on=list(node.right_on),
                            how=node.how, suffix=node.suffix)
            stats.record("join", left.num_rows + right.num_rows, out.num_rows,
                         len(node.left_on), column_names=tuple(node.left_on),
                         batches=probe.batches + build.batches,
                         spilled_rows=probe.spilled_rows + build.spilled_rows,
                         build_rows=(left.num_rows if node.build_side == "left"
                                     else right.num_rows))
            yield from _batches(out, self.batch_rows)
            return

        if isinstance(node, MapFrame):  # barrier map: whole-frame function
            store = self._accumulate(node.child, stats)
            child = store.merge()
            out = node.func(child)
            stats.record(node.label, child.num_rows, out.num_rows, child.num_columns,
                         batches=store.batches, spilled_rows=store.spilled_rows)
            yield from _batches(out, self.batch_rows)
            return

        raise PlanError(f"unknown plan node {type(node).__name__}")


def execute_streaming(plan: PlanNode, settings: OptimizerSettings | None = None,
                      optimize_plan: bool = True, file_reader=None,
                      batch_rows: int = DEFAULT_BATCH_ROWS,
                      spill_budget_rows: int | None = None
                      ) -> tuple[DataFrame, ExecutionStats]:
    """One-shot helper: optimize (optionally) and stream-execute a plan."""
    executor = StreamingExecutor(settings, optimize_plan, file_reader,
                                 batch_rows=batch_rows,
                                 spill_budget_rows=spill_budget_rows)
    return executor.execute(plan)


def stream_preparator(preparator, frame: DataFrame, params: Mapping[str, object],
                      batch_rows: int):
    """Apply a row-local preparator as a streaming pass over row batches.

    Shared by every chunk-streaming engine (Vaex's native mode, DataTable's
    memory-mapped kernels): the preparator is applied per batch and the
    results concatenated.  Preparators that do not chain (EDA probes) fall
    back to a whole-frame call, mirroring the eager path.
    """
    from ..core.preparators import PreparatorResult

    pieces: list[DataFrame] = []
    for batch in _batches(frame, batch_rows):
        result = preparator.apply(batch, params)
        if not result.chained:
            return preparator.apply(frame, params)
        pieces.append(result.frame)
    return PreparatorResult(concat_rows(pieces))
