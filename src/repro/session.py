"""The ``Session`` facade: one entry point for the whole evaluation matrix.

A :class:`Session` owns lazily-built datasets, engines, simulation contexts
and a runner, and sweeps any slice of the paper's engine × dataset × pipeline
× mode × laziness matrix with one call::

    from repro import Session, ExperimentConfig

    session = Session(ExperimentConfig(scale=0.2, runs=2))
    results = session.run(mode="full", engines=["pandas", "polars"],
                          datasets=["taxi"], lazy="both")
    print(results.speedup_vs("pandas"))

Every measurement is emitted as a unified
:class:`~repro.results.Measurement` record collected into a
:class:`~repro.results.ResultSet`; the experiment drivers
(:mod:`repro.experiments`), the examples, the benchmarks and the
``python -m repro`` CLI are all built on top of this facade.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .config import ExperimentConfig
from .core.pipeline import Pipeline
from .core.runner import BentoRunner, MatrixRunner
from .core.stages import Stage
from .datasets.base import GeneratedDataset
from .datasets.pipelines import get_pipelines
from .datasets.registry import generate_dataset
from .engines.base import BaseEngine, EngineUnavailableError, SimulationContext
from .engines.registry import create_engine, create_engines
from .frame.frame import DataFrame
from .results import Measurement, ResultSet
from .simulate.clock import trimmed_mean
from .simulate.memory import SimulatedOOMError

__all__ = ["Session"]

#: Accepted spellings for the measurement modes.
_MODE_ALIASES = {
    "core": "core", "function-core": "core", "function_core": "core",
    "stage": "stage", "pipeline-stage": "stage", "pipeline_stage": "stage",
    "full": "full", "pipeline-full": "full", "pipeline_full": "full",
    "read": "read", "write": "write", "tpch": "tpch",
}

_IO_FORMATS = ("csv", "parquet")


class Session:
    """Datasets, engines, contexts and a runner behind one ``run()`` method.

    Everything is built lazily and cached: constructing a ``Session`` is free,
    and repeated ``run()`` calls share generated datasets, engine instances
    and simulation contexts.  Keyword overrides are applied on top of the
    configuration, so ``Session(scale=0.1, runs=1)`` is shorthand for
    ``Session(ExperimentConfig(scale=0.1, runs=1))``.

    ``datasets`` may inject pre-built :class:`GeneratedDataset` objects (e.g.
    the incremental samples of Figure 6 / Table 5); when given, the mapping
    fully defines the dataset axis of the matrix.
    """

    def __init__(self, config: ExperimentConfig | None = None, *,
                 datasets: Mapping[str, GeneratedDataset] | None = None,
                 **overrides):
        config = config or ExperimentConfig()
        self.config = config.but(**overrides) if overrides else config
        self._injected_datasets = dict(datasets) if datasets else None
        self._datasets: dict[str, GeneratedDataset] = dict(self._injected_datasets or {})
        self._pipelines: dict[str, list[Pipeline]] = {}
        self._contexts: dict[str, SimulationContext] = {}
        self._engines: dict[str, BaseEngine] | None = None
        self._extra_engines: dict[str, BaseEngine] = {}
        self._runner: BentoRunner | None = None
        self._tpch_data: dict[float, object] = {}

    # ------------------------------------------------------------------ #
    # lazily-built components
    # ------------------------------------------------------------------ #
    @property
    def datasets(self) -> dict[str, GeneratedDataset]:
        """The dataset axis of the matrix (generated on first access)."""
        if self._injected_datasets is not None:
            return dict(self._injected_datasets)
        for name in self.config.datasets:
            self.dataset(name)
        return {name: self._datasets[name] for name in self.config.datasets}

    def dataset(self, name: str) -> GeneratedDataset:
        """One generated dataset by name (cached)."""
        if name not in self._datasets:
            self._datasets[name] = generate_dataset(name, scale=self.config.scale,
                                                    seed=self.config.seed)
        return self._datasets[name]

    @property
    def engines(self) -> dict[str, BaseEngine]:
        """The engine axis: configured engines available on the machine."""
        if self._engines is None:
            self._engines = create_engines(list(self.config.engines),
                                           machine=self.config.machine,
                                           skip_unavailable=True)
        return self._engines

    @property
    def engine_names(self) -> list[str]:
        return list(self.engines)

    @property
    def pipelines(self) -> dict[str, list[Pipeline]]:
        """Registered pipelines per configured dataset."""
        return {name: self.pipelines_for(name) for name in self.datasets}

    @property
    def runner(self) -> BentoRunner:
        if self._runner is None:
            self._runner = BentoRunner(runs=self.config.runs)
        return self._runner

    # ------------------------------------------------------------------ #
    # per-dataset helpers
    # ------------------------------------------------------------------ #
    def context_for(self, dataset: "str | GeneratedDataset") -> SimulationContext:
        """Simulation context for a dataset of the matrix (cached per name)."""
        if isinstance(dataset, GeneratedDataset):
            return dataset.simulation_context(self.config.machine, runs=self.config.runs)
        if dataset not in self._contexts:
            self._contexts[dataset] = self.dataset(dataset).simulation_context(
                self.config.machine, runs=self.config.runs)
        return self._contexts[dataset]

    def pipelines_for(self, dataset: str) -> list[Pipeline]:
        """Registered pipelines of a dataset (empty for ad-hoc datasets)."""
        if dataset not in self._pipelines:
            try:
                self._pipelines[dataset] = get_pipelines(dataset)
            except KeyError:
                self._pipelines[dataset] = []
        return self._pipelines[dataset]

    def baseline(self) -> BaseEngine:
        """The Pandas baseline engine (created on demand if not selected)."""
        return self._engine("pandas")

    def _engine(self, name: str) -> BaseEngine:
        if name in self.engines:
            return self.engines[name]
        if name not in self._extra_engines:
            self._extra_engines[name] = create_engine(name, self.config.machine)
        return self._extra_engines[name]

    # ------------------------------------------------------------------ #
    # selection of matrix slices
    # ------------------------------------------------------------------ #
    def _select_engines(self, names: Sequence[str] | None) -> dict[str, BaseEngine]:
        if names is None:
            return dict(self.engines)
        selected: dict[str, BaseEngine] = {}
        for name in names:
            try:
                selected[name] = self._engine(name)
            except EngineUnavailableError:
                continue
        return selected

    def _select_datasets(self, names: Sequence[str] | None) -> dict[str, GeneratedDataset]:
        if names is None:
            return self.datasets
        return {name: self.dataset(name) for name in names}

    def _select_pipelines(self, dataset: str,
                          pipelines: "Sequence[Pipeline | str | int] | Pipeline | None"
                          ) -> list[Pipeline]:
        if pipelines is None:
            return self.pipelines_for(dataset)
        if isinstance(pipelines, Pipeline):
            pipelines = [pipelines]
        selected: list[Pipeline] = []
        for item in pipelines:
            if isinstance(item, Pipeline):
                selected.append(item)
            elif isinstance(item, int):
                selected.append(self.pipelines_for(dataset)[item])
            else:
                registered = self.pipelines_for(dataset)
                match = next((p for p in registered if p.name == item), None)
                if match is None:
                    raise KeyError(f"unknown pipeline {item!r} for dataset {dataset!r}; "
                                   f"registered: {[p.name for p in registered]}")
                selected.append(match)
        return selected

    @staticmethod
    def _lazy_variants(engine: BaseEngine, lazy: "bool | str | None",
                       mode: str) -> list[bool | None]:
        if mode == "core":  # function-core always forces materialization
            return [False]
        if lazy == "both":
            variants: list[bool | None] = [False]
            if engine.supports_lazy:
                variants.append(True)
            return variants
        return [lazy]

    # ------------------------------------------------------------------ #
    # the front door
    # ------------------------------------------------------------------ #
    def run(self, mode: str = "full", *,
            engines: Sequence[str] | None = None,
            datasets: Sequence[str] | None = None,
            pipelines: "Sequence[Pipeline | str | int] | Pipeline | None" = None,
            lazy: "bool | str | None" = None,
            stages: "Iterable[Stage | str] | None" = None,
            formats: Sequence[str] = _IO_FORMATS) -> ResultSet:
        """Sweep a slice of the matrix and return the collected measurements.

        ``mode`` is one of ``full``/``stage``/``core`` (the paper's three
        measurement modes, aliases like ``pipeline-full`` accepted),
        ``read``/``write`` (the Figure 3/4 I/O matrix) or ``tpch``.  ``lazy``
        may be ``None`` (each engine's default), ``True``/``False``, or
        ``"both"`` to measure eager and, where supported, lazy evaluation.
        ``stages`` restricts stage mode to specific stages; ``formats``
        restricts the I/O modes.
        """
        try:
            mode = _MODE_ALIASES[mode]
        except KeyError:
            raise ValueError(f"unknown mode {mode!r}; "
                             f"expected one of {sorted(set(_MODE_ALIASES))}") from None
        if mode == "tpch":
            return self.run_tpch(engines=engines)
        selected_engines = self._select_engines(engines)
        selected_datasets = self._select_datasets(datasets)
        results = ResultSet()
        runner = self.runner

        if mode in ("read", "write"):
            for dataset_name, generated in selected_datasets.items():
                sim = self.context_for(dataset_name)
                for file_format in formats:
                    for engine in selected_engines.values():
                        results.append(self._measure_io(engine, generated.frame, sim,
                                                        mode, file_format))
            return results

        for dataset_name, generated in selected_datasets.items():
            sim = self.context_for(dataset_name)
            for pipeline in self._select_pipelines(dataset_name, pipelines):
                for engine in selected_engines.values():
                    if mode == "core":
                        results.extend(runner.measure_function_core(
                            engine, generated.frame, pipeline, sim))
                        continue
                    for lazy_flag in self._lazy_variants(engine, lazy, mode):
                        if mode == "full":
                            results.append(runner.measure_full(
                                engine, generated.frame, pipeline, sim, lazy=lazy_flag))
                        else:
                            results.extend(runner.measure_stages(
                                engine, generated.frame, pipeline, sim,
                                lazy=lazy_flag, stages=stages))
        return results

    # ------------------------------------------------------------------ #
    # I/O measurements (the Figure 3 / Figure 4 matrix)
    # ------------------------------------------------------------------ #
    def _measure_io(self, engine: BaseEngine, frame: DataFrame, sim: SimulationContext,
                    operation: str, file_format: str) -> Measurement:
        measurement = Measurement(engine=engine.name, dataset=sim.dataset_name,
                                  mode=operation, stage=Stage.IO.value,
                                  step=file_format, machine=sim.machine.name)
        try:
            per_run: list[float] = []
            for run_index in range(self.config.runs):
                if operation == "read":
                    _, record = engine.read_dataset(frame, sim, file_format=file_format,
                                                    run_index=run_index)
                else:
                    record = engine.write_dataset(frame, sim, file_format=file_format,
                                                  run_index=run_index)
                per_run.append(record.seconds)
            measurement.seconds = trimmed_mean(per_run)
        except EngineUnavailableError as err:
            measurement.failed = True
            measurement.failure_reason = f"unsupported: {err}"
        except SimulatedOOMError as oom:
            measurement.failed = True
            measurement.failure_reason = str(oom)
        return measurement

    # ------------------------------------------------------------------ #
    # TPC-H (the Figure 7 matrix)
    # ------------------------------------------------------------------ #
    def run_tpch(self, *, engines: Sequence[str] | None = None,
                 queries: Sequence[str] | None = None,
                 physical_scale_factor: float = 0.002) -> ResultSet:
        """Run TPC-H queries on the TPC-H engine set and collect measurements."""
        from .tpch.datagen import generate_tpch
        from .tpch.queries import query_names
        from .tpch.runner import TPCHRunner

        if physical_scale_factor not in self._tpch_data:
            self._tpch_data[physical_scale_factor] = generate_tpch(
                physical_scale_factor, seed=self.config.seed)
        data = self._tpch_data[physical_scale_factor]
        runner = TPCHRunner(data, runs=self.config.runs)
        names = list(engines) if engines is not None else list(self.config.tpch_engines)
        engine_map = create_engines(names, machine=self.config.machine,
                                    skip_unavailable=True)
        dataset_name = f"tpch-sf{data.nominal_scale_factor:g}"
        results = ResultSet()
        for engine_name, engine in engine_map.items():
            for query in (list(queries) if queries is not None else query_names()):
                outcome = runner.run_query(engine, query)
                results.append(Measurement(
                    engine=engine_name, dataset=dataset_name, pipeline=query,
                    mode="tpch", step=query, seconds=outcome.seconds,
                    rows=outcome.rows, lazy=engine.supports_lazy,
                    failed=outcome.failed, failure_reason=outcome.failure_reason,
                    machine=self.config.machine.name))
        return results

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover
        return (f"Session(scale={self.config.scale}, runs={self.config.runs}, "
                f"machine={self.config.machine.name!r}, "
                f"engines={list(self.config.engines)}, "
                f"datasets={list(self.config.datasets)})")
