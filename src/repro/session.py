"""The ``Session`` facade: one entry point for the whole evaluation matrix.

A :class:`Session` owns lazily-built datasets, engines, simulation contexts
and a runner, and sweeps any slice of the paper's engine × dataset × pipeline
× mode × laziness matrix with one call::

    from repro import Session, ExperimentConfig

    session = Session(ExperimentConfig(scale=0.2, runs=2))
    results = session.run(mode="full", engines=["pandas", "polars"],
                          datasets=["taxi"], lazy="both")
    print(results.speedup_vs("pandas"))

Every measurement is emitted as a unified
:class:`~repro.results.Measurement` record collected into a
:class:`~repro.results.ResultSet`; the experiment drivers
(:mod:`repro.experiments`), the examples, the benchmarks and the
``python -m repro`` CLI are all built on top of this facade.
"""

from __future__ import annotations

import threading
import warnings
from typing import Callable, Iterable, Mapping, Sequence

from .config import ExperimentConfig
from .core.pipeline import Pipeline
from .core.runner import BentoRunner, MatrixRunner
from .core.stages import Stage
from .datasets.base import GeneratedDataset
from .datasets.pipelines import get_pipelines
from .datasets.registry import generate_dataset
from .engines.base import BaseEngine, EngineUnavailableError, SimulationContext
from .engines.registry import create_engine, create_engines
from .results import ResultSet
from .sweep import (
    Cell,
    PlannedCell,
    SweepScheduler,
    SweepStats,
    context_fingerprint,
    dataset_fingerprint,
    execute_cell,
    pipeline_fingerprint,
    resolve_cache,
)

__all__ = ["Session"]

#: Accepted spellings for the measurement modes.
_MODE_ALIASES = {
    "core": "core", "function-core": "core", "function_core": "core",
    "stage": "stage", "pipeline-stage": "stage", "pipeline_stage": "stage",
    "full": "full", "pipeline-full": "full", "pipeline_full": "full",
    "read": "read", "write": "write", "tpch": "tpch",
}

_IO_FORMATS = ("csv", "parquet")


class Session:
    """Datasets, engines, contexts and a runner behind one ``run()`` method.

    Everything is built lazily and cached: constructing a ``Session`` is free,
    and repeated ``run()`` calls share generated datasets, engine instances
    and simulation contexts.  Keyword overrides are applied on top of the
    configuration, so ``Session(scale=0.1, runs=1)`` is shorthand for
    ``Session(ExperimentConfig(scale=0.1, runs=1))``.

    ``datasets`` may inject pre-built :class:`GeneratedDataset` objects (e.g.
    the incremental samples of Figure 6 / Table 5); when given, the mapping
    fully defines the dataset axis of the matrix.

    A session is safe to share across threads: lazy construction of datasets,
    engines, contexts and the runner is serialized behind an internal lock,
    so a long-running server (:mod:`repro.service`) can plan and execute many
    concurrent jobs against one warm session — see :meth:`warm`.
    """

    def __init__(self, config: ExperimentConfig | None = None, *,
                 datasets: Mapping[str, GeneratedDataset] | None = None,
                 **overrides):
        config = config or ExperimentConfig()
        self.config = config.but(**overrides) if overrides else config
        self._injected_datasets = dict(datasets) if datasets else None
        self._datasets: dict[str, GeneratedDataset] = dict(self._injected_datasets or {})
        self._pipelines: dict[str, list[Pipeline]] = {}
        self._contexts: dict[tuple[str, str], SimulationContext] = {}
        self._engines: dict[str, BaseEngine] | None = None
        self._extra_engines: dict[str, BaseEngine] = {}
        self._runner: MatrixRunner | None = None
        self._legacy_runner: BentoRunner | None = None
        self._tpch_data: dict[float, object] = {}
        #: Serializes lazy construction, so concurrent jobs can share a session.
        self._lock = threading.RLock()
        #: Statistics of the most recent scheduled sweep: cache hits, workers,
        #: the executed-vs-overhead wall-clock split (execute/serialize/setup
        #: seconds, batch count) and — for ``run(profile=True)`` — the
        #: per-cell timing records behind ``profile_table()``.
        self.last_sweep: SweepStats | None = None

    # ------------------------------------------------------------------ #
    # lazily-built components
    # ------------------------------------------------------------------ #
    @property
    def datasets(self) -> dict[str, GeneratedDataset]:
        """The dataset axis of the matrix (generated on first access)."""
        if self._injected_datasets is not None:
            return dict(self._injected_datasets)
        for name in self.config.datasets:
            self.dataset(name)
        return {name: self._datasets[name] for name in self.config.datasets}

    def dataset(self, name: str) -> GeneratedDataset:
        """One generated dataset by name (cached)."""
        with self._lock:
            if name not in self._datasets:
                self._datasets[name] = generate_dataset(name, scale=self.config.scale,
                                                        seed=self.config.seed)
            return self._datasets[name]

    @property
    def engines(self) -> dict[str, BaseEngine]:
        """The engine axis: configured engines available on the machine."""
        with self._lock:
            if self._engines is None:
                self._engines = create_engines(list(self.config.engines),
                                               machine=self.config.machine,
                                               skip_unavailable=True)
            return self._engines

    @property
    def engine_names(self) -> list[str]:
        return list(self.engines)

    @property
    def pipelines(self) -> dict[str, list[Pipeline]]:
        """Registered pipelines per configured dataset."""
        return {name: self.pipelines_for(name) for name in self.datasets}

    @property
    def matrix_runner(self) -> MatrixRunner:
        """The measurement core executing every cell of the matrix."""
        with self._lock:
            if self._runner is None:
                self._runner = MatrixRunner(runs=self.config.runs)
            return self._runner

    @property
    def runner(self) -> BentoRunner:
        """Deprecated: the legacy shim runner.  Use :attr:`matrix_runner`."""
        warnings.warn("Session.runner is deprecated; use Session.matrix_runner "
                      "(which emits unified Measurement records)",
                      DeprecationWarning, stacklevel=2)
        if self._legacy_runner is None:
            self._legacy_runner = BentoRunner(runs=self.config.runs)
        return self._legacy_runner

    # ------------------------------------------------------------------ #
    # per-dataset helpers
    # ------------------------------------------------------------------ #
    def context_for(self, dataset: "str | GeneratedDataset",
                    backend: str | None = None) -> SimulationContext:
        """Simulation context for a dataset of the matrix (cached per name).

        ``backend`` prices the dataset on a specific column backend (defaults
        to the configured one); contexts are cached per (dataset, backend).
        """
        backend = self._resolve_backend(backend)
        if isinstance(dataset, GeneratedDataset):
            return dataset.simulation_context(self.config.machine,
                                              runs=self.config.runs, backend=backend)
        with self._lock:
            key = (dataset, backend)
            if key not in self._contexts:
                self._contexts[key] = self.dataset(dataset).simulation_context(
                    self.config.machine, runs=self.config.runs, backend=backend)
            return self._contexts[key]

    def _resolve_backend(self, backend: str | None) -> str:
        from .frame.backends import known_backends

        backend = backend if backend is not None else self.config.backend
        backend = backend or "object"
        known = known_backends()
        if backend not in known:
            raise ValueError(f"unknown column backend {backend!r}; "
                             f"registered: {known}")
        return backend

    def pipelines_for(self, dataset: str) -> list[Pipeline]:
        """Registered pipelines of a dataset (empty for ad-hoc datasets)."""
        with self._lock:
            if dataset not in self._pipelines:
                try:
                    self._pipelines[dataset] = get_pipelines(dataset)
                except KeyError:
                    self._pipelines[dataset] = []
            return self._pipelines[dataset]

    def baseline(self) -> BaseEngine:
        """The Pandas baseline engine (created on demand if not selected)."""
        return self._engine("pandas")

    def _engine(self, name: str) -> BaseEngine:
        with self._lock:
            if name in self.engines:
                return self.engines[name]
            if name not in self._extra_engines:
                self._extra_engines[name] = create_engine(name, self.config.machine)
            return self._extra_engines[name]

    def warm(self) -> "Session":
        """Build every configured dataset, engine, context and pipeline list.

        A long-running server calls this once at startup so that no request
        ever pays generation latency; repeated calls are free.  Returns the
        session for chaining.
        """
        self.engines
        for name in self.datasets:
            self.context_for(name)
            self.pipelines_for(name)
        self.matrix_runner
        return self

    # ------------------------------------------------------------------ #
    # selection of matrix slices
    # ------------------------------------------------------------------ #
    def _select_engines(self, names: Sequence[str] | None) -> dict[str, BaseEngine]:
        if names is None:
            return dict(self.engines)
        selected: dict[str, BaseEngine] = {}
        for name in names:
            try:
                selected[name] = self._engine(name)
            except EngineUnavailableError:
                continue
        return selected

    def _select_datasets(self, names: Sequence[str] | None) -> dict[str, GeneratedDataset]:
        if names is None:
            return self.datasets
        return {name: self.dataset(name) for name in names}

    def _select_pipelines(self, dataset: str,
                          pipelines: "Sequence[Pipeline | str | int] | Pipeline | None"
                          ) -> list[Pipeline]:
        if pipelines is None:
            return self.pipelines_for(dataset)
        if isinstance(pipelines, Pipeline):
            pipelines = [pipelines]
        selected: list[Pipeline] = []
        for item in pipelines:
            if isinstance(item, Pipeline):
                selected.append(item)
            elif isinstance(item, int):
                selected.append(self.pipelines_for(dataset)[item])
            else:
                registered = self.pipelines_for(dataset)
                match = next((p for p in registered if p.name == item), None)
                if match is None:
                    raise KeyError(f"unknown pipeline {item!r} for dataset {dataset!r}; "
                                   f"registered: {[p.name for p in registered]}")
                selected.append(match)
        return selected

    @staticmethod
    def _lazy_variants(engine: BaseEngine, lazy: "bool | str | None",
                       mode: str) -> list[bool | None]:
        if mode == "core":  # function-core always forces materialization
            return [False]
        if lazy == "both":
            variants: list[bool | None] = [False]
            if engine.supports_lazy:
                variants.append(True)
            return variants
        return [lazy]

    def _strategy_variants(self, engine: BaseEngine, lazy: "bool | str | None",
                           streaming: "bool | str | None",
                           mode: str) -> list[tuple[bool | None, bool]]:
        """Concrete (lazy, streaming) execution strategies for one engine.

        ``streaming=True`` selects morsel-driven execution where the engine
        supports it (other engines fall back to the requested laziness);
        ``"both"`` adds a streaming variant next to the eager/lazy ones, so a
        single sweep compares all three physical strategies.
        """
        if mode == "core":  # function-core always forces materialization
            return [(False, False)]
        if streaming is True:
            if engine.supports_streaming:
                return [(True, True)]
            return [(flag, False) for flag in self._lazy_variants(engine, lazy, mode)]
        variants = [(flag, False) for flag in self._lazy_variants(engine, lazy, mode)]
        if streaming == "both" and engine.supports_streaming:
            variants.append((True, True))
        return variants

    # ------------------------------------------------------------------ #
    # sweep planning: the matrix slice as independent work units
    # ------------------------------------------------------------------ #
    def plan(self, mode: str = "full", *,
             engines: Sequence[str] | None = None,
             datasets: Sequence[str] | None = None,
             pipelines: "Sequence[Pipeline | str | int] | Pipeline | None" = None,
             lazy: "bool | str | None" = None,
             streaming: "bool | str | None" = None,
             stages: "Iterable[Stage | str] | None" = None,
             formats: Sequence[str] = _IO_FORMATS,
             backend: str | None = None) -> list[PlannedCell]:
        """Enumerate the requested matrix slice as independent sweep cells.

        Cells are emitted in exactly the nested-loop order of the historical
        sequential sweep (dataset → [pipeline →] engine → strategy), which is
        the order the scheduler reassembles results in — so any worker count
        yields the same :class:`~repro.results.ResultSet`.  ``streaming``
        follows the ``lazy`` convention: ``True`` selects morsel-driven
        execution on streaming-capable engines, ``"both"`` adds streaming
        cells next to the eager/lazy ones.  ``backend`` selects the physical
        column backend cells run on (``"object"``/``"dict"``, defaulting to
        the configured one); frames are converted once per dataset and the
        simulation context is priced on the converted columns.
        """
        try:
            mode = _MODE_ALIASES[mode]
        except KeyError:
            raise ValueError(f"unknown mode {mode!r}; "
                             f"expected one of {sorted(set(_MODE_ALIASES))}") from None
        if mode == "tpch":
            raise ValueError("TPC-H sweeps are planned by run_tpch()")
        backend = self._resolve_backend(backend)
        selected_engines = self._select_engines(engines)
        selected_datasets = self._select_datasets(datasets)
        runner = self.matrix_runner
        machine = self.config.machine
        stage_names = (tuple(Stage.parse(s).value for s in stages)
                       if stages is not None else ())
        if mode == "stage" and stages is not None and not stage_names:
            return []  # an explicitly empty stage selection measures nothing
        plan: list[PlannedCell] = []

        def add(cell: Cell, execute, generated: GeneratedDataset,
                sim: SimulationContext, pipeline: Pipeline | None,
                engine: BaseEngine) -> None:
            payload = {"cell": cell, "machine": machine,
                       "optimizer": engine.optimizer_settings,
                       "frame": generated.frame_for(backend), "sim": sim,
                       "pipeline": pipeline}
            plan.append(PlannedCell(cell=cell, execute=execute, payload=payload))

        if mode in ("read", "write"):
            for dataset_name, generated in selected_datasets.items():
                sim = self.context_for(dataset_name, backend)
                dataset_fp = dataset_fingerprint(generated)
                for file_format in formats:
                    for engine in selected_engines.values():
                        cell = Cell(
                            mode=mode, engine=engine.name, dataset=sim.dataset_name,
                            file_format=file_format, backend=backend,
                            machine=machine.name,
                            runs=self.config.runs, seed=self.config.seed,
                            scale=self.config.scale,
                            fingerprint=context_fingerprint(
                                machine, engine.optimizer_settings, dataset_fp))
                        add(cell, self._cell_thunk(cell, runner, engine, generated, sim, None),
                            generated, sim, None, engine)
            return plan

        for dataset_name, generated in selected_datasets.items():
            sim = self.context_for(dataset_name, backend)
            dataset_fp = dataset_fingerprint(generated)
            for pipeline in self._select_pipelines(dataset_name, pipelines):
                pipeline_fp = pipeline_fingerprint(pipeline)
                for engine in selected_engines.values():
                    fingerprint = context_fingerprint(
                        machine, engine.optimizer_settings, dataset_fp, pipeline_fp)
                    if mode == "core":
                        cell = Cell(
                            mode="core", engine=engine.name, dataset=sim.dataset_name,
                            pipeline=pipeline.name, backend=backend,
                            machine=machine.name,
                            runs=self.config.runs, seed=self.config.seed,
                            scale=self.config.scale, fingerprint=fingerprint)
                        add(cell, self._cell_thunk(cell, runner, engine, generated,
                                                   sim, pipeline),
                            generated, sim, pipeline, engine)
                        continue
                    for lazy_flag, streaming_flag in self._strategy_variants(
                            engine, lazy, streaming, mode):
                        cell = Cell(
                            mode=mode, engine=engine.name, dataset=sim.dataset_name,
                            pipeline=pipeline.name,
                            lazy=engine.effective_lazy(lazy_flag),
                            streaming=engine.effective_streaming(streaming_flag),
                            backend=backend,
                            stages=stage_names,
                            machine=machine.name, runs=self.config.runs,
                            seed=self.config.seed, scale=self.config.scale,
                            fingerprint=fingerprint)
                        add(cell, self._cell_thunk(cell, runner, engine, generated,
                                                   sim, pipeline),
                            generated, sim, pipeline, engine)
        return plan

    @staticmethod
    def _cell_thunk(cell, runner, engine, generated, sim, pipeline):
        """Thread-pool thunk: :func:`~repro.sweep.execute_cell` over the
        session's shared components (the process pool rebuilds them instead).
        The frame is pre-converted to the cell's backend here, so every cell
        of a sweep shares one converted copy (``execute_cell``'s own
        conversion then no-ops).  ``attempt`` is threaded through for the
        retry/fault-injection machinery and never influences results."""
        return lambda attempt=1: execute_cell(
            cell, engine, runner=runner,
            frame=generated.frame_for(cell.backend),
            sim=sim, pipeline=pipeline, attempt=attempt)

    # ------------------------------------------------------------------ #
    # the front door
    # ------------------------------------------------------------------ #
    def run(self, mode: str = "full", *,
            engines: Sequence[str] | None = None,
            datasets: Sequence[str] | None = None,
            pipelines: "Sequence[Pipeline | str | int] | Pipeline | None" = None,
            lazy: "bool | str | None" = None,
            streaming: "bool | str | None" = None,
            stages: "Iterable[Stage | str] | None" = None,
            formats: Sequence[str] = _IO_FORMATS,
            backend: str | None = None,
            workers: int = 1,
            cache: "bool | str | object | None" = None,
            executor: str = "thread",
            progress: "Callable[[Cell, list, str], None] | None" = None,
            profile: bool = False,
            retry: "object | int | None" = None,
            hosts: "int | Sequence[str] | None" = None,
            bind: "str | tuple[str, int] | None" = None) -> ResultSet:
        """Sweep a slice of the matrix and return the collected measurements.

        ``mode`` is one of ``full``/``stage``/``core`` (the paper's three
        measurement modes, aliases like ``pipeline-full`` accepted),
        ``read``/``write`` (the Figure 3/4 I/O matrix) or ``tpch``.  ``lazy``
        may be ``None`` (each engine's default), ``True``/``False``, or
        ``"both"`` to measure eager and, where supported, lazy evaluation.
        ``streaming`` selects the morsel-driven executor the same way:
        ``True`` streams on streaming-capable engines, ``"both"`` measures a
        streaming variant next to the eager/lazy ones.  ``stages`` restricts
        stage mode to specific stages; ``formats`` restricts the I/O modes.
        ``backend`` selects the physical column backend (``"object"`` — the
        reference representation — or ``"dict"`` for dictionary-encoded
        strings with vectorized join/groupby kernels); it is part of each
        cell's content address, so cached results never alias across
        backends.

        The sweep is executed by the :mod:`repro.sweep` scheduler:
        ``workers`` sets the worker-pool size (results are identical for any
        value), ``cache`` enables the persistent result cache (``True`` for
        the default ``~/.cache/repro``, or a directory path, or a
        :class:`~repro.sweep.SweepCache`) so repeated or interrupted sweeps
        skip completed cells, and ``executor`` selects ``"thread"`` (shared
        components, default) or ``"process"`` (persistent workers attached to
        shared-memory frame segments) pools.  Parallel sweeps run through the
        batched tier of :mod:`repro.sweep.workers`: cells are grouped by
        (dataset, scale, engine), ordered longest-first from recorded timing
        hints, and dispatched with dataset affinity to long-lived workers.

        Statistics of the last sweep are exposed as :attr:`last_sweep` — a
        :class:`~repro.sweep.SweepStats` with the cell counts plus the
        executed-vs-overhead wall-clock split (``execute_seconds``,
        ``serialize_seconds``, ``setup_seconds``, ``batches``).  With
        ``profile=True`` it also carries one per-cell
        dispatch/serialize/setup/execute/cache timing record per executed
        cell (render with ``last_sweep.profile_table()``).

        ``progress`` is a job-granular callback invoked as each cell lands:
        ``progress(cell, measurements, source)`` with ``source`` one of
        ``"cache"``/``"executed"``/``"quarantined"`` — what the service layer
        uses to stream incremental results while a sweep is still running.

        ``retry`` makes the sweep fault-tolerant: a
        :class:`~repro.sweep.RetryPolicy` (or an int, shorthand for that many
        retries per cell) retries failed cells with deterministic backoff,
        quarantines poison cells into error-status measurements instead of
        aborting, and — on the process executor — respawns crashed workers
        and re-dispatches their uncommitted cells.  ``None`` (default) keeps
        fail-fast semantics.

        ``hosts`` distributes the sweep across worker-host processes via the
        :mod:`repro.sweep.distributed` coordinator: an int spawns that many
        local ``python -m repro sweep-worker`` agents (each running
        ``workers`` pool workers on ``executor``); a list mixes ``"local"``
        entries (spawned) with any other label, which waits for an external
        agent to connect to the coordinator's ``bind`` address (default
        ``127.0.0.1`` on an ephemeral port; pass ``"host:port"`` to listen
        for remote machines).  Cells shard across hosts by content hash,
        idle hosts steal from the slowest shard, every host commits to the
        shared ``cache``, and host loss follows the ``retry`` policy —
        results stay bit-identical to a sequential run.
        """
        try:
            resolved_mode = _MODE_ALIASES[mode]
        except KeyError:
            raise ValueError(f"unknown mode {mode!r}; "
                             f"expected one of {sorted(set(_MODE_ALIASES))}") from None
        if resolved_mode == "tpch":
            if hosts is not None:
                raise ValueError("TPC-H sweeps do not support hosts=; "
                                 "use workers/executor instead")
            return self.run_tpch(engines=engines, backend=backend,
                                 workers=workers, cache=cache,
                                 executor=executor, progress=progress,
                                 profile=profile, retry=retry)
        if hosts is not None:
            return self._run_distributed(
                mode=resolved_mode, engines=engines, datasets=datasets,
                pipelines=pipelines, lazy=lazy, streaming=streaming,
                stages=stages, formats=formats, backend=backend,
                hosts=hosts, bind=bind, workers=workers, cache=cache,
                executor=executor, progress=progress, profile=profile,
                retry=retry)
        plan = self.plan(resolved_mode, engines=engines, datasets=datasets,
                         pipelines=pipelines, lazy=lazy, streaming=streaming,
                         stages=stages, formats=formats, backend=backend)
        return self._run_plan(plan, workers=workers, cache=cache, executor=executor,
                              progress=progress, profile=profile, retry=retry)

    def _run_plan(self, plan: list[PlannedCell], *, workers: int,
                  cache: "bool | str | object | None", executor: str,
                  progress: "Callable[[Cell, list, str], None] | None" = None,
                  profile: bool = False,
                  retry: "object | int | None" = None) -> ResultSet:
        scheduler = SweepScheduler(workers=workers, cache=resolve_cache(cache),
                                   executor=executor, on_result=progress,
                                   profile=profile, retry=retry)
        try:
            return scheduler.run(plan)
        finally:
            # also on failure/interruption, so callers can inspect how far
            # the sweep got before resuming it
            self.last_sweep = scheduler.last_stats

    # ------------------------------------------------------------------ #
    # distributed sweeps: coordinator + sweep-worker host agents
    # ------------------------------------------------------------------ #
    def _run_distributed(self, *, mode: str, engines, datasets, pipelines,
                         lazy, streaming, stages, formats, backend,
                         hosts, bind, workers: int, cache, executor: str,
                         progress, profile: bool, retry) -> ResultSet:
        import os
        import subprocess
        import sys
        from dataclasses import asdict
        from pathlib import Path

        from .sweep.distributed import RunSpec, SweepCoordinator
        from .sweep.resilience import RetryPolicy
        from .testing.faults import active_fault_plan

        if self._injected_datasets is not None:
            raise ValueError(
                "distributed sweeps cannot ship injected datasets; worker "
                "hosts rebuild every dataset from (name, scale, seed)")
        if pipelines is not None:
            items = (pipelines if isinstance(pipelines, (list, tuple))
                     else [pipelines])
            for item in items:
                if not isinstance(item, (str, int)):
                    raise ValueError(
                        "distributed sweeps select pipelines by name or "
                        "index; ad-hoc Pipeline objects cannot cross hosts")
        expected, spawn_local = _parse_host_spec(hosts)

        plan = self.plan(mode, engines=engines, datasets=datasets,
                         pipelines=pipelines, lazy=lazy, streaming=streaming,
                         stages=stages, formats=formats, backend=backend)
        resolved_cache = resolve_cache(cache)
        if isinstance(retry, int) and not isinstance(retry, bool):
            retry = RetryPolicy.from_retries(retry) if retry > 0 else None
        stage_names = ([Stage.parse(s).value for s in stages]
                       if stages is not None else None)
        spec = RunSpec(
            config=RunSpec.config_to_wire(self.config),
            plan_kwargs={
                "mode": mode,
                "engines": list(engines) if engines is not None else None,
                "datasets": list(datasets) if datasets is not None else None,
                "pipelines": (list(items) if pipelines is not None else None),
                "lazy": lazy, "streaming": streaming, "stages": stage_names,
                "formats": list(formats), "backend": backend,
            },
            cache_dir=str(resolved_cache.root) if resolved_cache else None,
            retry=asdict(retry) if retry is not None else None,
            faults=RunSpec.faults_to_wire(active_fault_plan()),
            profile=profile)
        coordinator = SweepCoordinator(
            plan, spec=spec, hosts=expected, cache=resolved_cache,
            retry=retry, on_result=progress, profile=profile,
            bind=_parse_bind_address(bind))
        host, port = coordinator.start()

        # Spawn the requested local worker-host agents.  Forked children are
        # preferred: they reuse the parent's already-imported modules (an
        # interpreter boot plus `import repro` costs ~0.5 s per host, pure
        # overhead at fleet sizes) while still speaking the same TCP protocol
        # and rebuilding their plan from the wire spec like any remote agent.
        # Platforms without fork fall back to real `python -m repro
        # sweep-worker` subprocesses on a PYTHONPATH resolving this package.
        import multiprocessing

        agents: "list[object]" = []
        use_fork = "fork" in multiprocessing.get_all_start_methods()
        try:
            if use_fork:
                ctx = multiprocessing.get_context("fork")
                for _ in range(spawn_local):
                    agent = ctx.Process(
                        target=_local_host_agent,
                        args=(host, port, workers, executor, self))
                    agent.start()
                    agents.append(agent)
            else:
                env = dict(os.environ)
                src_root = str(Path(__file__).resolve().parent.parent)
                env["PYTHONPATH"] = (src_root + os.pathsep + env["PYTHONPATH"]
                                     if env.get("PYTHONPATH") else src_root)
                for _ in range(spawn_local):
                    agents.append(subprocess.Popen(
                        [sys.executable, "-m", "repro", "sweep-worker",
                         "--connect", f"{host}:{port}",
                         "--jobs", str(workers), "--executor", executor],
                        stdout=subprocess.DEVNULL, env=env))
            try:
                return coordinator.run()
            finally:
                self.last_sweep = coordinator.stats
        finally:
            for agent in agents:
                if isinstance(agent, subprocess.Popen):
                    try:
                        agent.wait(timeout=15)
                    except subprocess.TimeoutExpired:
                        agent.kill()
                        agent.wait()
                else:
                    agent.join(timeout=15)
                    if agent.is_alive():
                        agent.kill()
                        agent.join()

    # ------------------------------------------------------------------ #
    # the advisor: predicted-fastest configuration, nothing executed
    # ------------------------------------------------------------------ #
    def advise(self, *, engines: Sequence[str] | None = None,
               datasets: Sequence[str] | None = None,
               pipelines: "Sequence[Pipeline | str | int] | Pipeline | None" = None):
        """Rank engine × eager/lazy/streaming candidates by estimated cost.

        For every (dataset, pipeline) cell of the selected slice, the
        :class:`~repro.plan.advisor.Advisor` prices each candidate through
        the statistics layer and the cost model — no engine work is executed
        — and returns one :class:`~repro.plan.advisor.AdvisorReport` per
        cell, ranked fastest-first with infeasible (predicted-OOM,
        unsupported-format) candidates last.
        """
        from .plan.advisor import Advisor

        selected_engines = self._select_engines(engines)
        advisor = Advisor(self.config.machine, engines=selected_engines)
        reports = []
        for dataset_name, generated in self._select_datasets(datasets).items():
            sim = self.context_for(dataset_name)
            for pipeline in self._select_pipelines(dataset_name, pipelines):
                reports.append(advisor.advise(generated.frame, pipeline, sim,
                                              dataset=dataset_name))
        return reports

    def advise_tpch(self, *, engines: Sequence[str] | None = None,
                    queries: Sequence[str] | None = None,
                    physical_scale_factor: float = 0.002):
        """Advisor reports for the TPC-H engine × query matrix (estimated)."""
        from .plan.advisor import Advisor
        from .tpch.datagen import generate_tpch
        from .tpch.queries import query_names

        with self._lock:
            if physical_scale_factor not in self._tpch_data:
                self._tpch_data[physical_scale_factor] = generate_tpch(
                    physical_scale_factor, seed=self.config.seed)
            data = self._tpch_data[physical_scale_factor]
        names = list(engines) if engines is not None else list(self.config.tpch_engines)
        engine_map = create_engines(names, machine=self.config.machine,
                                    skip_unavailable=True)
        advisor = Advisor(self.config.machine, engines=engine_map)
        return [advisor.advise_tpch(data, query)
                for query in (list(queries) if queries is not None else query_names())]

    # ------------------------------------------------------------------ #
    # TPC-H (the Figure 7 matrix)
    # ------------------------------------------------------------------ #
    def run_tpch(self, *, engines: Sequence[str] | None = None,
                 queries: Sequence[str] | None = None,
                 physical_scale_factor: float = 0.002,
                 backend: str | None = None,
                 workers: int = 1,
                 cache: "bool | str | object | None" = None,
                 executor: str = "thread",
                 progress: "Callable[[Cell, list, str], None] | None" = None,
                 profile: bool = False,
                 retry: "object | int | None" = None) -> ResultSet:
        """Run TPC-H queries on the TPC-H engine set and collect measurements.

        Like :meth:`run`, the engine × query matrix goes through the sweep
        scheduler: ``workers``/``cache``/``executor``/``backend`` behave
        identically (TPC-H tables are built inside the query runner, so the
        backend coordinate switches the substrate's active backend for the
        duration of each query rather than pre-converting frames).
        """
        from .tpch.datagen import generate_tpch
        from .tpch.queries import query_names
        from .tpch.runner import TPCHRunner

        with self._lock:
            if physical_scale_factor not in self._tpch_data:
                self._tpch_data[physical_scale_factor] = generate_tpch(
                    physical_scale_factor, seed=self.config.seed)
            data = self._tpch_data[physical_scale_factor]
        backend = self._resolve_backend(backend)
        runner = TPCHRunner(data, runs=self.config.runs)
        names = list(engines) if engines is not None else list(self.config.tpch_engines)
        engine_map = create_engines(names, machine=self.config.machine,
                                    skip_unavailable=True)
        dataset_name = f"tpch-sf{data.nominal_scale_factor:g}"
        machine = self.config.machine
        dataset_fp = {"name": dataset_name,
                      "physical_rows": data.total_physical_rows(),
                      "physical_scale_factor": physical_scale_factor,
                      "seed": self.config.seed}
        plan: list[PlannedCell] = []
        for engine_name, engine in engine_map.items():
            for query in (list(queries) if queries is not None else query_names()):
                cell = Cell(
                    mode="tpch", engine=engine_name, dataset=dataset_name,
                    pipeline=query, lazy=engine.supports_lazy, backend=backend,
                    machine=machine.name,
                    runs=self.config.runs, seed=self.config.seed,
                    scale=physical_scale_factor,
                    fingerprint=context_fingerprint(
                        machine, engine.optimizer_settings, dataset_fp,
                        {"query": query}))
                # workers regenerate the (deterministic) TPC-H data instead of
                # unpickling the whole database once per cell
                payload = {"cell": cell, "machine": machine,
                           "optimizer": engine.optimizer_settings,
                           "tpch_scale_factor": physical_scale_factor,
                           "tpch_seed": self.config.seed}
                plan.append(PlannedCell(
                    cell=cell,
                    execute=self._tpch_thunk(cell, engine, runner),
                    payload=payload))
        return self._run_plan(plan, workers=workers, cache=cache, executor=executor,
                              progress=progress, profile=profile, retry=retry)

    @staticmethod
    def _tpch_thunk(cell, engine, tpch_runner):
        return lambda attempt=1: execute_cell(cell, engine,
                                              tpch_runner=tpch_runner,
                                              attempt=attempt)

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover
        return (f"Session(scale={self.config.scale}, runs={self.config.runs}, "
                f"machine={self.config.machine.name!r}, "
                f"engines={list(self.config.engines)}, "
                f"datasets={list(self.config.datasets)})")


def _local_host_agent(host: str, port: int, jobs: int, executor: str,
                      session: "Session | None" = None) -> None:
    """Forked local worker-host agent: same protocol as the CLI agent.

    The child inherits the parent's imported modules and warm session (the
    fork start method passes ``session`` by memory image, not pickling), so
    it skips the interpreter boot, ``import repro`` and dataset regeneration
    a remote ``python -m repro sweep-worker`` pays — the TCP protocol and
    the plan rebuild from the wire spec are identical.
    """
    from .sweep.distributed import HostWorker

    raise SystemExit(HostWorker(host, port, jobs=jobs, executor=executor,
                                session=session).run())


def _parse_host_spec(hosts: "int | Sequence[str]") -> "tuple[int, int]":
    """Normalize ``hosts=`` to (expected host count, local agents to spawn).

    An int spawns that many local agents; a list counts ``"local"`` entries
    as spawned agents and any other label as an external host the
    coordinator should wait for.
    """
    if isinstance(hosts, bool) or hosts is None:
        raise ValueError("hosts must be a positive int or a list of host labels")
    if isinstance(hosts, int):
        if hosts < 1:
            raise ValueError("hosts must be at least 1")
        return hosts, hosts
    labels = list(hosts)
    if not labels:
        raise ValueError("hosts list must not be empty")
    spawn_local = sum(1 for label in labels if str(label) == "local")
    return len(labels), spawn_local


def _parse_bind_address(bind: "str | tuple[str, int] | None") -> "tuple[str, int]":
    """Normalize ``bind=`` to a (host, port) the coordinator listens on."""
    if bind is None:
        return ("127.0.0.1", 0)
    if isinstance(bind, str):
        host, _, port = bind.rpartition(":")
        if not host:
            host, port = bind, "0"
        try:
            return (host, int(port))
        except ValueError:
            raise ValueError(f"bad bind address {bind!r}; "
                             f"expected 'host:port'") from None
    host, port = bind
    return (str(host), int(port))
