"""repro — reproduction of "Evaluation of Dataframe Libraries for Data
Preparation on a Single Machine" (EDBT 2025).

The package is organized in layers:

* :mod:`repro.frame`       — columnar dataframe substrate (numpy-backed);
* :mod:`repro.plan`        — lazy logical plans, optimizer and executor;
* :mod:`repro.io`          — CSV and the rparquet columnar binary format;
* :mod:`repro.simulate`    — machine configurations, cost and memory models;
* :mod:`repro.engines`     — the simulated dataframe libraries;
* :mod:`repro.core`        — Bento: preparators, pipelines, runner, metrics;
* :mod:`repro.datasets`    — synthetic Athlete/Loan/Patrol/Taxi + pipelines;
* :mod:`repro.results`     — unified Measurement records and ResultSet;
* :mod:`repro.sweep`       — sweep scheduler: cells, result cache, worker pools;
* :mod:`repro.session`     — the Session facade over the whole matrix;
* :mod:`repro.service`     — benchmark-as-a-service HTTP server and client;
* :mod:`repro.tpch`        — TPC-H generator, 22 queries and runner;
* :mod:`repro.experiments` — one driver per table/figure of the paper.

The front door is :class:`Session`: ``Session(config).run(mode=..., ...)``
sweeps any slice of the engine × dataset × pipeline matrix and returns a
:class:`~repro.results.ResultSet` of unified measurements.
"""

from .config import ExperimentConfig
from .core import BentoRunner, MatrixRunner, Pipeline, PipelineStep, Stage
from .engines import SimulationContext, create_engine, create_engines
from .frame import Column, DataFrame, col, lit
from .plan import LazyFrame
from .results import Measurement, ResultSet
from .session import Session
from .simulate import LAPTOP, PAPER_SERVER, SERVER, WORKSTATION, MachineConfig
from .sweep import Cell, RetryPolicy, SweepCache, SweepScheduler, SweepStats

__version__ = "1.5.0"

__all__ = [
    "__version__",
    "DataFrame",
    "Column",
    "col",
    "lit",
    "LazyFrame",
    "Pipeline",
    "PipelineStep",
    "Stage",
    "Session",
    "ExperimentConfig",
    "Measurement",
    "ResultSet",
    "MatrixRunner",
    "BentoRunner",
    "Cell",
    "RetryPolicy",
    "SweepCache",
    "SweepScheduler",
    "SweepStats",
    "SimulationContext",
    "create_engine",
    "create_engines",
    "MachineConfig",
    "LAPTOP",
    "WORKSTATION",
    "SERVER",
    "PAPER_SERVER",
]
