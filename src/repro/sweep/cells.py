"""Hashable work units of the sweep scheduler.

A :class:`Cell` is one independent unit of the evaluation matrix — one
``measure_*`` call of the :class:`~repro.core.runner.MatrixRunner` (or one
TPC-H query) with every coordinate that influences its result: measurement
mode, engine, dataset, pipeline, laziness, stage selection, file format,
machine, run count, seed and scale.  Cells are pure data: frozen, hashable,
serializable, and content-addressed through :attr:`Cell.cell_id`, which is
what keys the persistent :class:`~repro.sweep.cache.SweepCache`.

Coordinates that live in richer objects — the machine configuration, the
engine's optimizer settings, the generated dataset and the pipeline steps —
are folded into the :attr:`Cell.fingerprint` so that changing any of them
(e.g. toggling an optimizer rule or resampling a dataset) invalidates the
cached result even though the textual names stay the same.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping

from ..core.pipeline import Pipeline
from ..datasets.base import GeneratedDataset
from ..plan.optimizer import OptimizerSettings
from ..simulate.hardware import MachineConfig

__all__ = [
    "Cell",
    "context_fingerprint",
    "dataset_fingerprint",
    "pipeline_fingerprint",
]


def _digest(payload: Any, length: int = 16) -> str:
    """Stable hex digest of a JSON-serializable payload."""
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:length]


def dataset_fingerprint(dataset: GeneratedDataset) -> dict[str, Any]:
    """Identity of a generated dataset as far as measurements are concerned.

    Physical and nominal row counts capture both the ``scale`` knob and the
    Figure 6 / Table 5 fractional samples; the seed covers content changes at
    identical shape.
    """
    return {
        "name": dataset.name,
        "physical_rows": dataset.physical_rows,
        "nominal_rows": dataset.nominal_rows,
        "columns": list(dataset.frame.columns),
        "seed": dataset.seed,
    }


def pipeline_fingerprint(pipeline: Pipeline) -> dict[str, Any]:
    """Identity of a pipeline: its full step list, not just its name."""
    return {"name": pipeline.name, "dataset": pipeline.dataset,
            "steps": [s.to_dict() for s in pipeline.steps]}


def context_fingerprint(machine: MachineConfig,
                        optimizer: OptimizerSettings | None,
                        dataset: Mapping[str, Any] | None = None,
                        pipeline: Mapping[str, Any] | None = None) -> str:
    """Hash of every result-shaping input that is not a plain Cell field."""
    return _digest({
        "machine": asdict(machine),
        "optimizer": asdict(optimizer) if optimizer is not None else None,
        "dataset": dict(dataset) if dataset is not None else None,
        "pipeline": dict(pipeline) if pipeline is not None else None,
    })


@dataclass(frozen=True)
class Cell:
    """One independent, hashable work unit of a sweep."""

    mode: str
    engine: str
    dataset: str
    pipeline: str = ""
    #: Effective laziness flag (resolved against the engine's capabilities at
    #: planning time, so ``None``/``"both"`` requests become concrete cells).
    lazy: bool = False
    #: Effective streaming flag (resolved like ``lazy``).  Part of the cell's
    #: content address, so cached eager/lazy results never alias streamed ones.
    streaming: bool = False
    #: Physical column backend the substrate runs on ("object" or "dict").
    #: Part of the content address — mirroring ``streaming`` — so cached
    #: results from different backends never alias (timings legitimately
    #: differ: dictionary encoding changes the priced column bytes).
    backend: str = "object"
    #: Stage restriction of stage mode (empty tuple = every present stage).
    stages: tuple[str, ...] = ()
    #: File format of the read/write modes.
    file_format: str = ""
    machine: str = ""
    runs: int = 1
    seed: int = 7
    scale: float = 1.0
    #: Content hash of the machine config, optimizer settings, dataset sample
    #: and pipeline steps backing this cell (see :func:`context_fingerprint`).
    fingerprint: str = ""

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out["stages"] = list(self.stages)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Cell":
        known = {f.name for f in fields(cls)}
        kwargs = {name: value for name, value in data.items() if name in known}
        if "stages" in kwargs:
            kwargs["stages"] = tuple(kwargs["stages"])
        return cls(**kwargs)

    @property
    def cell_id(self) -> str:
        """Content address of this cell (keys the on-disk cache)."""
        return _digest(self.to_dict(), length=24)

    def label(self) -> str:
        """Short human-readable tag used in cache file names and logs."""
        parts = [self.mode, self.engine, self.dataset]
        if self.pipeline:
            parts.append(self.pipeline)
        if self.file_format:
            parts.append(self.file_format)
        if self.streaming:
            parts.append("streaming")
        elif self.lazy:
            parts.append("lazy")
        return "-".join(parts)
