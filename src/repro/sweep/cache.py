"""Persistent, content-addressed cache of completed sweep cells.

Every completed :class:`~repro.sweep.cells.Cell` is written as one small JSON
file keyed by the cell's content hash, so a repeated or interrupted sweep
skips the cells that already ran: an identical configuration is served from
disk, while *any* change to the coordinates that shape a result — engine,
dataset, pipeline steps, mode, laziness, machine configuration, run count,
seed, scale, optimizer settings — produces a different hash and therefore a
miss.  The default location is ``~/.cache/repro`` (overridable with the
``REPRO_CACHE_DIR`` environment variable or an explicit directory).

Entries are written atomically (temp file + ``os.replace``) so a sweep killed
mid-write never leaves a truncated entry behind; unreadable or mismatching
entries are treated as misses and overwritten.  Every entry additionally
carries a content checksum: an entry that exists but fails to parse or fails
checksum verification is *corrupt* (bit rot, a torn copy, a buggy tool
editing the cache) — it counts as a miss **and** the bad file is quarantined
(renamed to ``*.corrupt`` next to the entry) so it is never consulted again
and the evidence survives for inspection.

The cache is safe under concurrency: any number of threads (or the service's
worker pool) may load and store the *same* cell simultaneously.  Writers race
benignly — each writes its own temp file and the last atomic rename wins with
identical content — readers observe either the old or the new entry, never a
torn one, and the hit/miss/store counters are kept consistent behind a lock
(``+=`` on an attribute is not atomic across threads).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
from pathlib import Path
from typing import Iterator

from ..results import Measurement
from ..testing.faults import fault_point
from .cells import Cell

__all__ = ["SweepCache", "default_cache_dir", "CACHE_VERSION", "entry_checksum"]

#: Bump when the on-disk entry layout changes; old entries become misses.
#: v2: cells and measurements gained the ``backend`` coordinate.
#: v3: entries carry a content checksum; measurements gained the resilience
#:     fields (``status``/``error``/``attempts``).
CACHE_VERSION = 3

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _cache_namespace() -> str:
    """Per-version cache namespace.

    Simulated numbers depend on the code (cost model constants, engine
    profiles), not only on the experiment coordinates, so entries written by
    one package version must never be served to another.  Mid-development
    edits within one version still share a namespace — clear the directory or
    pass ``--no-cache`` while changing result-shaping code.
    """
    from .. import __version__  # deferred: repro.__init__ imports this package

    return f"v{CACHE_VERSION}-{__version__}"


def entry_checksum(payload: dict) -> str:
    """Content checksum of a cache entry (every key except the checksum).

    Computed over the canonical sorted-key JSON serialization, which is
    stable across a write/parse round trip (Python's shortest-roundtrip
    float repr guarantees ``dumps(loads(x))`` reproduces ``x``'s values).
    """
    body = {key: value for key, value in payload.items() if key != "checksum"}
    text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


class SweepCache:
    """On-disk store of per-cell measurement lists."""

    def __init__(self, root: "str | Path | None" = None):
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def path_for(self, cell: Cell) -> Path:
        """Cache file of a cell: readable prefix plus the content hash."""
        prefix = _SAFE.sub("_", cell.label())[:80]
        return self.root / _cache_namespace() / cell.mode / f"{prefix}-{cell.cell_id}.json"

    def load(self, cell: Cell) -> "list[Measurement] | None":
        """The cell's measurements, or ``None`` on a miss.

        Three miss flavours: the file does not exist (a plain miss); the
        entry belongs to another version / cell hash (stale, left in place
        to be overwritten); the entry exists but is unparseable or fails
        checksum verification (corrupt — quarantined via
        :meth:`_quarantine` and counted in ``stats()["corrupt"]``).
        """
        path = self.path_for(cell)
        try:
            raw = path.read_bytes()
        except OSError:
            self._count("misses")
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
        except ValueError:  # includes UnicodeDecodeError: flipped bytes
            self._quarantine(path)
            return None
        stored_checksum = payload.get("checksum")
        if (payload.get("version") == CACHE_VERSION
                and stored_checksum is not None
                and stored_checksum != entry_checksum(payload)):
            self._quarantine(path)
            return None
        if (payload.get("version") != CACHE_VERSION
                or payload.get("cell") != cell.to_dict()):
            self._count("misses")
            return None
        try:
            measurements = [Measurement.from_dict(r) for r in payload["measurements"]]
        except (KeyError, TypeError, ValueError):
            self._count("misses")
            return None
        self._count("hits")
        return measurements

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (miss + ``*.corrupt`` next to it)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass
        self._count("corrupt")
        self._count("misses")

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def store(self, cell: Cell, measurements: "list[Measurement]",
              seconds: "float | None" = None) -> Path:
        """Atomically persist a completed cell.

        ``seconds`` is optional wall-clock metadata — how long the cell took
        to execute — used by the batch scheduler for longest-first ordering
        (see :meth:`seconds_hint`).  Entries without it (all pre-existing
        ones) load exactly as before: :meth:`load` ignores unknown keys.
        """
        path = self.path_for(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "cell": cell.to_dict(),
            "measurements": [m.to_dict() for m in measurements],
        }
        if seconds is not None:
            payload["seconds"] = float(seconds)
        payload["checksum"] = entry_checksum(payload)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._count("stores")
        fault_point("cache_store", cell_id=cell.cell_id, path=path)
        return path

    def seconds_hint(self, cell: Cell) -> "float | None":
        """Best-effort wall-clock hint for a cell, from entry metadata.

        A *pending* cell has, by definition, no exact-hash entry — but a
        close relative usually does: the same (mode, engine, dataset …)
        label measured at a different run count, scale or code state shares
        the human-readable file-name prefix.  Any ``seconds`` recorded under
        that prefix is a fine ordering hint (hints shape scheduling order,
        never results).  Returns ``None`` when nothing is known.
        """
        prefix = _SAFE.sub("_", cell.label())[:80]
        directory = self.path_for(cell).parent
        hint: "float | None" = None
        try:
            candidates = sorted(directory.glob(f"{prefix}-*.json"))
        except OSError:
            return None
        for path in candidates:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict):
                continue
            entry_cell = payload.get("cell") or {}
            if any(entry_cell.get(key) != getattr(cell, key)
                   for key in ("mode", "engine", "dataset", "pipeline")):
                continue  # the prefix glob is loose; pin the coordinates
            seconds = payload.get("seconds")
            if isinstance(seconds, (int, float)):
                hint = float(seconds)
        return hint

    # ------------------------------------------------------------------ #
    def entries(self) -> Iterator[Path]:
        """Entries of the current version namespace, in stable order."""
        namespace = self.root / _cache_namespace()
        if not namespace.exists():
            return iter(())
        return iter(sorted(namespace.glob("*/*.json")))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "stores": self.stores, "corrupt": self.corrupt}

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SweepCache({str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores})")
