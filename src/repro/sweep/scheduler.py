"""Parallel, cache-aware execution of a planned sweep.

The scheduler takes an ordered plan of :class:`PlannedCell` work units (built
by :meth:`repro.session.Session.plan`), serves already-completed cells from
the :class:`~repro.sweep.cache.SweepCache`, dispatches the rest across a
``concurrent.futures`` worker pool, and reassembles the collected
:class:`~repro.results.Measurement` records **in plan order** — so the
returned :class:`~repro.results.ResultSet` is bit-identical to a sequential
run regardless of completion order, worker count or cache state.

Two pool flavours are supported:

* ``executor="thread"`` (default) — workers share the session's engines,
  frames and simulation contexts.  Execution is pure computation over
  read-only inputs, so this is safe and has zero serialization cost;
* ``executor="process"`` — each cell ships a self-contained picklable payload
  and is re-executed from scratch in a worker process (engines are rebuilt by
  name), sidestepping the GIL for CPU-heavy slices.

Completed cells are written to the cache *as they finish*, which is what
makes interrupted sweeps resumable: rerunning the same sweep skips every cell
that completed before the interruption.
"""

from __future__ import annotations

import functools
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..results import Measurement, ResultSet
from .cache import SweepCache
from .cells import Cell

__all__ = ["PlannedCell", "SweepStats", "SweepScheduler", "resolve_cache"]

_EXECUTORS = ("thread", "process")


@dataclass
class PlannedCell:
    """One cell plus the two ways of executing it.

    ``execute`` runs the cell in-process against the session's shared
    components; ``payload`` is a self-contained picklable description used by
    the process pool (``None`` disables process dispatch for this cell).
    """

    cell: Cell
    execute: Callable[[], "list[Measurement]"]
    payload: "dict[str, Any] | None" = None


@dataclass
class SweepStats:
    """What one scheduler run did (exposed as ``Session.last_sweep``)."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    workers: int = 1
    executor: str = "thread"
    wall_seconds: float = 0.0
    cells: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (f"{self.total} cells: {self.cached} from cache, "
                f"{self.executed} executed ({self.workers} worker(s), "
                f"{self.executor}), {self.wall_seconds:.2f}s")


def resolve_cache(cache: "bool | str | Any | None") -> "SweepCache | None":
    """Normalize the user-facing ``cache=`` argument.

    ``None``/``False`` disable caching, ``True`` uses the default directory,
    a string/path selects a directory, and a :class:`SweepCache` is used
    as-is.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return SweepCache()
    if isinstance(cache, SweepCache):
        return cache
    return SweepCache(cache)


class SweepScheduler:
    """Dispatches planned cells across a worker pool, deterministically.

    ``on_result`` is a job-granular progress callback invoked once per cell
    as its result lands — ``on_result(cell, measurements, source)`` with
    ``source`` one of ``"cache"``/``"executed"``.  Callbacks fire in
    completion order (not plan order) and always from the scheduling thread,
    so implementations need no locking of their own.
    """

    def __init__(self, workers: int = 1, cache: "SweepCache | None" = None,
                 executor: str = "thread",
                 on_result: "Callable[[Cell, list[Measurement], str], None] | None" = None):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if executor not in _EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; expected one of {_EXECUTORS}")
        self.workers = workers
        self.cache = cache
        self.executor = executor
        self.on_result = on_result
        self.last_stats: "SweepStats | None" = None

    def _notify(self, cell: Cell, measurements: "list[Measurement]", source: str) -> None:
        if self.on_result is not None:
            self.on_result(cell, measurements, source)

    # ------------------------------------------------------------------ #
    def run(self, plan: Sequence[PlannedCell]) -> ResultSet:
        """Execute a plan and return its measurements in plan order."""
        start = time.perf_counter()
        stats = SweepStats(total=len(plan), workers=self.workers, executor=self.executor)
        self.last_stats = stats
        slots: "list[list[Measurement] | None]" = [None] * len(plan)

        pending: list[int] = []
        for index, planned in enumerate(plan):
            hit = self.cache.load(planned.cell) if self.cache is not None else None
            if hit is not None:
                slots[index] = hit
                stats.cached += 1
                self._notify(planned.cell, hit, "cache")
            else:
                pending.append(index)
        stats.cells = [planned.cell.cell_id for planned in plan]

        try:
            if self.workers == 1 or len(pending) <= 1:
                for index in pending:
                    slots[index] = self._complete(plan[index])
                    stats.executed += 1
            else:
                self._run_pool(plan, pending, slots, stats)
        finally:
            stats.wall_seconds = time.perf_counter() - start

        results = ResultSet()
        for slot in slots:
            results.extend(slot or ())
        return results

    # ------------------------------------------------------------------ #
    def _complete(self, planned: PlannedCell) -> "list[Measurement]":
        measurements = planned.execute()
        if self.cache is not None:
            self.cache.store(planned.cell, measurements)
        self._notify(planned.cell, measurements, "executed")
        return measurements

    def _run_pool(self, plan: Sequence[PlannedCell], pending: "list[int]",
                  slots: "list[list[Measurement] | None]", stats: SweepStats) -> None:
        pool_cls = ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
        errors: "list[BaseException]" = []
        with pool_cls(max_workers=min(self.workers, len(pending))) as pool:
            futures: "dict[Future, int]" = {}
            for index in pending:
                planned = plan[index]
                if self.executor == "process":
                    if planned.payload is None:
                        raise ValueError(
                            f"cell {planned.cell.label()} has no picklable payload; "
                            f"use executor='thread'")
                    futures[pool.submit(execute_payload, planned.payload)] = index
                else:
                    futures[pool.submit(planned.execute)] = index
            # Results are committed to the cache as each cell completes, so a
            # sweep killed at any point resumes from the cells that finished.
            # The first failing cell cancels the cells that have not started,
            # but everything already running is still collected and cached.
            try:
                for future in as_completed(futures):
                    if future.cancelled():
                        continue
                    error = future.exception()
                    if error is not None:
                        errors.append(error)
                        for queued in futures:
                            if not queued.done():
                                queued.cancel()
                        continue
                    index = futures[future]
                    measurements = future.result()
                    slots[index] = measurements
                    stats.executed += 1
                    if self.cache is not None:
                        self.cache.store(plan[index].cell, measurements)
                    self._notify(plan[index].cell, measurements, "executed")
            except BaseException:  # e.g. Ctrl-C in the main thread
                for queued in futures:
                    queued.cancel()
                raise
        if errors:
            stats.failed = len(errors)
            raise errors[0]


# --------------------------------------------------------------------------- #
# cell execution: one implementation shared by the thread and process paths
# --------------------------------------------------------------------------- #
def execute_cell(cell: Cell, engine, *, runner=None, frame=None, sim=None,
                 pipeline=None, tpch_runner=None) -> "list[Measurement]":
    """Run one cell against resolved components and return its measurements.

    This is the *single* place a cell's coordinates are turned into
    ``measure_*`` calls: the session's thread-pool thunks call it with shared
    components, and :func:`execute_payload` calls it with components rebuilt
    inside a worker process — so both executors produce identical records by
    construction.
    """
    if cell.mode == "tpch":
        outcome = tpch_runner.run_query(engine, cell.pipeline)
        return [Measurement(
            engine=cell.engine, dataset=cell.dataset, pipeline=cell.pipeline,
            mode="tpch", step=cell.pipeline, seconds=outcome.seconds,
            rows=outcome.rows, lazy=engine.supports_lazy, failed=outcome.failed,
            failure_reason=outcome.failure_reason, machine=cell.machine)]
    if cell.mode in ("read", "write"):
        return [runner.measure_io(engine, frame, sim, cell.mode, cell.file_format)]
    if cell.mode == "core":
        return runner.measure_function_core(engine, frame, pipeline, sim)
    if cell.mode == "stage":
        return runner.measure_stages(engine, frame, pipeline, sim, lazy=cell.lazy,
                                     stages=list(cell.stages) or None,
                                     streaming=cell.streaming)
    if cell.mode == "full":
        return [runner.measure_full(engine, frame, pipeline, sim, lazy=cell.lazy,
                                    streaming=cell.streaming)]
    raise ValueError(f"unknown cell mode {cell.mode!r}")


@functools.lru_cache(maxsize=2)
def _tpch_data_cached(physical_scale_factor: float, seed: int):
    """Per-worker-process TPC-H data (regeneration is deterministic, so this
    matches the parent's data without pickling the whole database per cell)."""
    from ..tpch.datagen import generate_tpch

    return generate_tpch(physical_scale_factor, seed=seed)


def execute_payload(payload: "dict[str, Any]") -> "list[Measurement]":
    """Re-execute one cell from a self-contained payload in a worker process.

    The payload carries the cell plus everything its measurement needs: the
    machine configuration and optimizer settings (the engine is rebuilt by
    name), the physical frame, the simulation context and the pipeline — or
    the TPC-H scale factor and seed for ``mode="tpch"`` cells.
    """
    from ..core.runner import MatrixRunner
    from ..engines.registry import create_engine

    cell: Cell = payload["cell"]
    engine = create_engine(cell.engine, payload["machine"],
                           optimizer_settings=payload.get("optimizer"))
    runner = MatrixRunner(runs=cell.runs)
    if cell.mode == "tpch":
        from ..tpch.runner import TPCHRunner

        data = _tpch_data_cached(payload["tpch_scale_factor"], payload["tpch_seed"])
        return execute_cell(cell, engine,
                            tpch_runner=TPCHRunner(data, runs=cell.runs))
    return execute_cell(cell, engine, runner=runner, frame=payload["frame"],
                        sim=payload["sim"], pipeline=payload["pipeline"])
