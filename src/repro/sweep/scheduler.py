"""Parallel, cache-aware execution of a planned sweep.

The scheduler takes an ordered plan of :class:`PlannedCell` work units (built
by :meth:`repro.session.Session.plan`), serves already-completed cells from
the :class:`~repro.sweep.cache.SweepCache`, dispatches the rest across a
``concurrent.futures`` worker pool, and reassembles the collected
:class:`~repro.results.Measurement` records **in plan order** — so the
returned :class:`~repro.results.ResultSet` is bit-identical to a sequential
run regardless of completion order, worker count or cache state.

Two pool flavours are supported, and both normally run through the batched
execution tier of :mod:`repro.sweep.workers` — cells are grouped by
``(dataset, scale, engine)``, ordered longest-first from recorded wall-clock
hints, and dispatched with dataset affinity to **persistent** workers that
keep engines, frames and a substrate memo warm across the whole sweep:

* ``executor="thread"`` (default) — workers share the session's live frames
  (zero serialization) and one shared memo;
* ``executor="process"`` — long-lived worker processes attach zero-copy to
  shared-memory frame segments the dispatcher exports once per distinct
  frame (see :mod:`repro.frame.sharing`); only small manifests and
  measurement events cross process boundaries.

``batched=False`` falls back to the historical per-cell futures pool.
Completed cells are written to the cache *as they finish* in every flavour,
which is what makes interrupted sweeps resumable: rerunning the same sweep
skips every cell that completed before the interruption.  ``profile=True``
additionally records a per-cell dispatch/serialize/setup/execute/cache
timing breakdown into :class:`SweepStats`.
"""

from __future__ import annotations

import functools
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from ..results import Measurement, ResultSet
from ..testing.faults import active_fault_plan, fault_point
from .cache import SweepCache
from .cells import Cell
from .resilience import RetryPolicy

__all__ = ["PlannedCell", "SweepStats", "SweepScheduler", "resolve_cache"]

_EXECUTORS = ("thread", "process")


@dataclass
class PlannedCell:
    """One cell plus the two ways of executing it.

    ``execute`` runs the cell in-process against the session's shared
    components; ``payload`` is a self-contained picklable description used by
    the process pool (``None`` disables process dispatch for this cell).
    """

    cell: Cell
    execute: Callable[[], "list[Measurement]"]
    payload: "dict[str, Any] | None" = None


@dataclass
class SweepStats:
    """What one scheduler run did (exposed as ``Session.last_sweep``).

    Beyond the cell counts, a batched run records where the wall clock went:
    ``execute_seconds`` is time spent inside ``measure_*`` calls, while
    ``serialize_seconds`` (exporting frames to shared memory) and
    ``setup_seconds`` (building engines / attaching frames in workers) are
    overhead — the split :meth:`summary` prints is the flatline diagnostic
    this PR exists for.  With ``profile=True`` the scheduler also appends one
    per-cell timing record to :attr:`profile` (see :meth:`profile_table`).
    """

    total: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    workers: int = 1
    executor: str = "thread"
    wall_seconds: float = 0.0
    cells: list[str] = field(default_factory=list)
    #: Batches dispatched (0 = sequential or per-cell futures path).
    batches: int = 0
    #: Exporting frames into shared-memory segments (dispatcher side).
    serialize_seconds: float = 0.0
    #: Engine construction + frame attach inside workers (warm ⇒ ~0).
    setup_seconds: float = 0.0
    #: Summed wall clock of the actual ``measure_*`` work inside workers.
    execute_seconds: float = 0.0
    #: Per-cell timing records (``profile=True`` runs only).
    profile: list[dict] = field(default_factory=list)
    #: Re-dispatched cell attempts (a retry policy was active and charged).
    retries: int = 0
    #: Cells that succeeded after at least one failed/charged attempt.
    recovered: int = 0
    #: Poison cells degraded to an error-status measurement after exhausting
    #: their attempts (see :func:`~repro.sweep.resilience.quarantine_measurement`).
    quarantined: int = 0
    #: Dead (crashed/killed/hung) workers replaced mid-sweep.
    respawns: int = 0
    #: Worker hosts that registered with the coordinator (distributed runs).
    hosts: int = 0
    #: Cells granted to an idle host from another host's backlog.
    stolen: int = 0
    #: Cells moved off a lost host and re-granted to survivors.
    reassigned: int = 0
    #: Worker hosts that disconnected or missed heartbeats mid-sweep.
    hosts_lost: int = 0
    #: Per-host records of a distributed run (see :meth:`distributed_table`).
    distributed: list[dict] = field(default_factory=list)

    @property
    def overhead_seconds(self) -> float:
        return self.serialize_seconds + self.setup_seconds

    def summary(self) -> str:
        base = (f"{self.total} cells: {self.cached} from cache, "
                f"{self.executed} executed ({self.workers} worker(s), "
                f"{self.executor}), {self.wall_seconds:.2f}s")
        if self.batches:
            base += (f" [{self.batches} batches: {self.execute_seconds:.2f}s "
                     f"executing, {self.overhead_seconds:.3f}s overhead = "
                     f"{self.serialize_seconds:.3f}s serialize "
                     f"+ {self.setup_seconds:.3f}s setup]")
        if self.retries or self.quarantined or self.respawns:
            base += (f" [resilience: {self.retries} retried, "
                     f"{self.recovered} recovered, "
                     f"{self.quarantined} quarantined, "
                     f"{self.respawns} worker(s) respawned]")
        if self.hosts:
            base += (f" [distributed: {self.hosts} host(s), "
                     f"{self.stolen} stolen, {self.reassigned} reassigned, "
                     f"{self.hosts_lost} host(s) lost]")
        return base

    def to_dict(self) -> dict:
        """JSON-ready view (what ``--stats-out`` and the bench emit)."""
        return {
            "total": self.total, "executed": self.executed,
            "cached": self.cached, "failed": self.failed,
            "workers": self.workers, "executor": self.executor,
            "wall_seconds": self.wall_seconds, "batches": self.batches,
            "serialize_seconds": self.serialize_seconds,
            "setup_seconds": self.setup_seconds,
            "execute_seconds": self.execute_seconds,
            "retries": self.retries, "recovered": self.recovered,
            "quarantined": self.quarantined, "respawns": self.respawns,
            "hosts": self.hosts, "stolen": self.stolen,
            "reassigned": self.reassigned, "hosts_lost": self.hosts_lost,
            "distributed": list(self.distributed),
        }

    def distributed_table(self) -> str:
        """The per-host breakdown of a distributed run as an aligned table."""
        if not self.distributed:
            return "(no distributed records; run with hosts=...)"
        headers = ("host", "workers", "executed", "cached", "stolen",
                   "quarantined", "execute_s", "lost")
        rows = [(str(record["host"]), str(record["workers"]),
                 str(record["executed"]), str(record["cached"]),
                 str(record["stolen"]), str(record["quarantined"]),
                 f"{record['execute_seconds']:.3f}",
                 "yes" if record["lost"] else "")
                for record in self.distributed]
        widths = [max(len(h), *(len(r[i]) for r in rows))
                  for i, h in enumerate(headers)]
        def fmt(values):
            first = values[0].ljust(widths[0])
            rest = (v.rjust(w) for v, w in zip(values[1:], widths[1:]))
            return "  ".join((first, *rest))
        lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
        lines += [fmt(row) for row in rows]
        return "\n".join(lines)

    def profile_table(self) -> str:
        """The per-cell breakdown as an aligned text table."""
        if not self.profile:
            return "(no profile records; run with profile=True)"
        headers = ("cell", "dispatch", "serialize", "setup", "execute", "cache")
        rows = [(record["cell"],
                 *(f"{record[k]:.4f}" for k in headers[1:]))
                for record in self.profile]
        widths = [max(len(h), *(len(r[i]) for r in rows))
                  for i, h in enumerate(headers)]
        def fmt(values):
            first = values[0].ljust(widths[0])
            rest = (v.rjust(w) for v, w in zip(values[1:], widths[1:]))
            return "  ".join((first, *rest))
        lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
        lines += [fmt(row) for row in rows]
        totals = ("total",) + tuple(
            f"{sum(r[k] for r in self.profile):.4f}"
            for k in headers[1:])
        lines.append(fmt(tuple("-" * w for w in widths)))
        lines.append(fmt(totals))
        return "\n".join(lines)


def resolve_cache(cache: "bool | str | Any | None") -> "SweepCache | None":
    """Normalize the user-facing ``cache=`` argument.

    ``None``/``False`` disable caching, ``True`` uses the default directory,
    a string/path selects a directory, and a :class:`SweepCache` is used
    as-is.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return SweepCache()
    if isinstance(cache, SweepCache):
        return cache
    return SweepCache(cache)


class SweepScheduler:
    """Dispatches planned cells across a worker pool, deterministically.

    ``on_result`` is a job-granular progress callback invoked once per cell
    as its result lands — ``on_result(cell, measurements, source)`` with
    ``source`` one of ``"cache"``/``"executed"``/``"quarantined"``.
    Callbacks fire in completion order (not plan order) and always from the
    scheduling thread, so implementations need no locking of their own.
    ``on_start`` fires (same thread) as a cell's execution begins — the
    distributed tier uses it to report in-flight cells to the coordinator
    so a lost host's attempt accounting matches the single-host semantics.

    ``retry`` selects the failure semantics: ``None`` (default) keeps the
    historical fail-fast behaviour — the first cell error aborts the sweep
    and a dead worker raises.  A :class:`~repro.sweep.resilience.RetryPolicy`
    (or an int, shorthand for that many retries) switches the scheduler to
    resilient mode: failed cells are retried with backoff and quarantined
    after exhausting their attempts, crashed workers are respawned and their
    uncommitted cells re-dispatched across the pool, and ``cell_timeout``
    bounds each attempt's wall clock.  Successful results are bit-identical
    in both modes regardless of how many retries they needed.
    """

    def __init__(self, workers: int = 1, cache: "SweepCache | None" = None,
                 executor: str = "thread",
                 on_result: "Callable[[Cell, list[Measurement], str], None] | None" = None,
                 batched: bool = True, profile: bool = False,
                 retry: "RetryPolicy | int | None" = None,
                 on_start: "Callable[[Cell], None] | None" = None,
                 on_complete: "Callable[[Cell, list[Measurement], str, float | None], None] | None" = None,
                 pool=None):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if executor not in _EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; expected one of {_EXECUTORS}")
        self.workers = workers
        self.cache = cache
        self.executor = executor
        self.on_result = on_result
        self.on_start = on_start
        #: Like ``on_result`` but carries the cell's physical wall-clock
        #: seconds (``None`` for cache hits and quarantines) — what the
        #: distributed tier forwards so coordinator hints stay wall-true.
        self.on_complete = on_complete
        #: An externally-owned batch executor (``ThreadBatchExecutor`` /
        #: ``ProcessWorkerPool``) reused across ``run()`` calls.  The warm
        #: per-worker state (engines, attached frames, memo) is the whole
        #: point: a worker-host agent executes many small grants, and a fresh
        #: pool per grant would pay the per-coordinate setup every time.
        #: The owner shuts it down; with a pool the batched tier is used
        #: even at ``workers=1``.
        self.pool = pool
        #: ``False`` restores the historical per-cell futures pool.
        self.batched = batched
        #: Record per-cell timing breakdowns into ``last_stats.profile``.
        self.profile = profile
        if isinstance(retry, int) and not isinstance(retry, bool):
            retry = RetryPolicy.from_retries(retry) if retry > 0 else None
        self.retry: "RetryPolicy | None" = retry
        self.last_stats: "SweepStats | None" = None

    def _notify(self, cell: Cell, measurements: "list[Measurement]", source: str) -> None:
        if self.on_result is not None:
            self.on_result(cell, measurements, source)

    def _notify_start(self, cell: Cell) -> None:
        if self.on_start is not None:
            self.on_start(cell)

    def _notify_complete(self, cell: Cell, measurements: "list[Measurement]",
                         source: str, seconds: "float | None") -> None:
        if self.on_complete is not None:
            self.on_complete(cell, measurements, source, seconds)

    # ------------------------------------------------------------------ #
    def run(self, plan: Sequence[PlannedCell]) -> ResultSet:
        """Execute a plan and return its measurements in plan order."""
        start = time.perf_counter()
        stats = SweepStats(total=len(plan), workers=self.workers, executor=self.executor)
        self.last_stats = stats
        slots: "list[list[Measurement] | None]" = [None] * len(plan)

        # An installed-but-unbound fault plan is bound to this sweep's cell
        # population *before* any worker forks, so every process deterministically
        # agrees on the target cells (no-op without an injection harness).
        fault_plan = active_fault_plan()
        if fault_plan is not None and not fault_plan.bound:
            fault_plan.bind([planned.cell.cell_id for planned in plan])

        pending: list[int] = []
        for index, planned in enumerate(plan):
            hit = self.cache.load(planned.cell) if self.cache is not None else None
            if hit is not None:
                slots[index] = hit
                stats.cached += 1
                self._notify(planned.cell, hit, "cache")
                self._notify_complete(planned.cell, hit, "cache", None)
            else:
                pending.append(index)
        stats.cells = [planned.cell.cell_id for planned in plan]

        # The batch tier needs self-contained payloads; plans built by hand
        # with ``payload=None`` (thread-only) keep the per-cell futures path.
        use_batched = (self.batched and len(pending) > 0
                       and (self.pool is not None
                            or (self.workers > 1 and len(pending) > 1))
                       and all(plan[index].payload is not None
                               for index in pending))
        try:
            if use_batched:
                self._run_batched(plan, pending, slots, stats)
            elif self.workers == 1 or len(pending) <= 1:
                for index in pending:
                    slots[index] = self._complete(plan[index], stats)
            else:
                self._run_pool(plan, pending, slots, stats)
        finally:
            stats.wall_seconds = time.perf_counter() - start

        results = ResultSet()
        for slot in slots:
            results.extend(slot or ())
        return results

    # ------------------------------------------------------------------ #
    def _complete(self, planned: PlannedCell,
                  stats: "SweepStats | None" = None) -> "list[Measurement]":
        self._notify_start(planned.cell)
        if self.retry is None:
            measurements = self._execute_sequential(planned, stats)
        else:
            from .resilience import execute_with_retry

            measurements, attempts, seconds, error = execute_with_retry(
                planned.execute, planned.cell, self.retry)
            if error is not None:
                # poison cell: quarantine record, never cached (a rerun retries)
                if stats is not None:
                    stats.quarantined += 1
                    stats.retries += attempts - 1
                self._notify(planned.cell, measurements, "quarantined")
                self._notify_complete(planned.cell, measurements,
                                      "quarantined", None)
                return measurements
            if stats is not None:
                stats.retries += attempts - 1
                if attempts > 1:
                    stats.recovered += 1
            measurements = self._commit_sequential(planned, measurements,
                                                   seconds, stats)
        return measurements

    def _execute_sequential(self, planned: PlannedCell,
                            stats: "SweepStats | None") -> "list[Measurement]":
        started = time.perf_counter()
        measurements = planned.execute()
        seconds = time.perf_counter() - started
        return self._commit_sequential(planned, measurements, seconds, stats)

    def _commit_sequential(self, planned: PlannedCell,
                           measurements: "list[Measurement]", seconds: float,
                           stats: "SweepStats | None") -> "list[Measurement]":
        cache_started = time.perf_counter()
        if self.cache is not None:
            self.cache.store(planned.cell, measurements, seconds=seconds)
        cache_seconds = time.perf_counter() - cache_started
        from .workers import hint_memory

        hint_memory.record(planned.cell, seconds)
        if stats is not None:
            stats.executed += 1
            stats.execute_seconds += seconds
            if self.profile:
                stats.profile.append({
                    "cell": planned.cell.label(), "dispatch": 0.0,
                    "serialize": 0.0, "setup": 0.0, "execute": seconds,
                    "cache": cache_seconds})
        self._notify(planned.cell, measurements, "executed")
        self._notify_complete(planned.cell, measurements, "executed", seconds)
        return measurements

    # ------------------------------------------------------------------ #
    # the batched tier: persistent workers, shared frames, affinity dispatch
    # ------------------------------------------------------------------ #
    def _run_batched(self, plan: Sequence[PlannedCell], pending: "list[int]",
                     slots: "list[list[Measurement] | None]",
                     stats: SweepStats) -> None:
        from ..frame.sharing import SharedFrameStore
        from .resilience import WorkerCrashError, quarantine_measurement
        from .workers import (CellBatch, ProcessWorkerPool,
                              ThreadBatchExecutor, assign_shards,
                              build_batches, decode_error, hint_memory)

        retry = self.retry
        batches = build_batches(plan, pending, cache=self.cache)
        pool_workers = (self.pool.workers if self.pool is not None
                        else self.workers)
        assignments = assign_shards(batches, pool_workers)
        stats.batches = len(batches)
        serialize_share: "dict[int, float]" = {}  # plan index → seconds
        task_by_index = {task.index: task
                         for batch in batches for task in batch.tasks}
        next_batch_id = max((b.batch_id for b in batches), default=-1) + 1

        store: "SharedFrameStore | None" = None
        pool = None
        errors: "list[BaseException]" = []
        try:
            # Everything from here sits inside the try so that a failure (or
            # Ctrl-C) during frame export or pool spawn — e.g. a worker that
            # dies before attaching — still unlinks every exported /dev/shm
            # segment via the finally below.
            if self.executor == "process":
                # Serialize each distinct physical frame ONCE, replace the
                # live frame in every task with the shared-memory manifest,
                # and reference-count segments per batch so memory is
                # reclaimed the moment the last batch touching a frame
                # completes.
                store = SharedFrameStore()
                segment_cost: "dict[str, float]" = {}
                segment_cells: "dict[str, int]" = {}
                for batch in batches:
                    for task in batch.tasks:
                        if task.frame is None:
                            continue
                        started = time.perf_counter()
                        task.manifest = store.export(task.frame)  # once per frame
                        cost = time.perf_counter() - started
                        segment = task.manifest.segment
                        if segment not in segment_cost:
                            stats.serialize_seconds += cost
                            segment_cost[segment] = cost
                        segment_cells[segment] = segment_cells.get(segment, 0) + 1
                        task.frame = None
                for batch in batches:
                    for task in batch.tasks:
                        if task.manifest is not None:
                            segment = task.manifest.segment
                            serialize_share[task.index] = (
                                segment_cost[segment] / segment_cells[segment])
                pool = self.pool or ProcessWorkerPool(len(assignments))
            else:
                pool = self.pool or ThreadBatchExecutor(len(assignments))

            # --- dispatch/recovery bookkeeping (scheduling thread only) --- #
            batch_segments: "dict[int, list[str]]" = {}  # per-dispatch retains
            owner: "dict[int, int]" = {}        # batch id → worker id
            open_cells: "dict[int, set[int]]" = {}  # batch id → uncommitted cells
            attempts: "dict[int, int]" = {}     # plan index → attempts started
            current: "dict[int, int | None]" = {}   # worker → in-flight index
            started_at: "dict[int, float]" = {}  # plan index → start wall time
            waiting: "list[tuple[float, int]]" = []  # (ready time, index)
            held: "dict[int, list[str]]" = {}   # retry segment holds
            outstanding: "set[int]" = set()
            unresolved = set(pending)
            workers_used = max(1, len(assignments))
            respawn_budget = 4 * workers_used + len(pending)

            if store is not None:
                for batch in batches:
                    segments = sorted(batch.segments())
                    for segment in segments:
                        store.retain(segment)
                    batch_segments[batch.batch_id] = segments
            for worker_id, group in enumerate(assignments):
                for batch in group:
                    owner[batch.batch_id] = worker_id
                    open_cells[batch.batch_id] = {t.index for t in batch.tasks}
                    outstanding.add(batch.batch_id)

            def task_segments(task) -> "list[str]":
                return [task.manifest.segment] if task.manifest is not None else []

            def release_batch(batch_id: int) -> None:
                if store is not None:
                    for segment in batch_segments.pop(batch_id, ()):
                        store.release(segment)

            def pick_worker() -> int:
                loads = {worker_id: 0 for worker_id in range(workers_used)}
                for batch_id, cells in open_cells.items():
                    worker_id = owner.get(batch_id)
                    if worker_id in loads:
                        loads[worker_id] += len(cells)
                return min(loads, key=lambda worker_id: (loads[worker_id], worker_id))

            def dispatch_cells(indices: "list[int]", worker_id: int) -> None:
                """Ship cells as a fresh batch (retries / stolen cells)."""
                nonlocal next_batch_id
                tasks, segments = [], []
                for index in indices:
                    task = replace(task_by_index[index],
                                   attempt=attempts.get(index, 0) + 1)
                    task_by_index[index] = task
                    tasks.append(task)
                    hold = held.pop(index, None)
                    if hold is not None:
                        segments.extend(hold)  # transfer the retry hold
                    elif store is not None:
                        for segment in task_segments(task):
                            store.retain(segment)
                            segments.append(segment)
                batch = CellBatch(batch_id=next_batch_id, key=("redispatch",),
                                  tasks=tasks)
                next_batch_id += 1
                owner[batch.batch_id] = worker_id
                open_cells[batch.batch_id] = set(indices)
                outstanding.add(batch.batch_id)
                if store is not None:
                    batch_segments[batch.batch_id] = segments
                pool.dispatch(worker_id, batch)

            def quarantine(index: int, error: BaseException) -> None:
                cell = plan[index].cell
                measurement = quarantine_measurement(
                    cell, error, attempts.get(index, 0))
                slots[index] = [measurement]
                stats.quarantined += 1
                unresolved.discard(index)
                if store is not None:
                    for segment in held.pop(index, ()):
                        store.release(segment)
                self._notify(cell, [measurement], "quarantined")
                self._notify_complete(cell, [measurement], "quarantined", None)

            def handle_failure(index: int, error: BaseException) -> None:
                """Charge the in-flight attempt; retry with backoff or quarantine."""
                if index not in unresolved:
                    return
                charged = attempts.get(index, 0)
                if retry is not None and charged < retry.max_attempts:
                    stats.retries += 1
                    if store is not None and index not in held:
                        segments = task_segments(task_by_index[index])
                        for segment in segments:
                            store.retain(segment)  # survive batch release
                        held[index] = segments
                    ready = (time.perf_counter()
                             + retry.backoff_seconds(plan[index].cell.cell_id,
                                                     max(1, charged)))
                    waiting.append((ready, index))
                else:
                    quarantine(index, error)

            def handle_dead_worker(worker_id: int, reason: str) -> None:
                nonlocal respawn_budget
                if respawn_budget <= 0:
                    raise RuntimeError(
                        "sweep worker respawn limit exceeded; giving up")
                respawn_budget -= 1
                # The victim cell comes from the pool's in-flight sentinel (a
                # side channel that survives SIGKILL), falling back to the
                # drained "start" stream; its attempt is charged from the
                # dispatched task, because the event recording it may have
                # died in the worker's queue feeder.
                victim: "int | None" = pool.inflight(worker_id)
                if victim is None or victim < 0:
                    victim = current.pop(worker_id, None)
                else:
                    current.pop(worker_id, None)
                if victim is not None and victim in unresolved:
                    attempts[victim] = max(attempts.get(victim, 0),
                                           task_by_index[victim].attempt)
                orphan_batches = [batch_id for batch_id, owner_id in owner.items()
                                  if owner_id == worker_id and batch_id in open_cells]
                orphans: "list[int]" = []
                for batch_id in orphan_batches:
                    cells = open_cells.pop(batch_id)
                    outstanding.discard(batch_id)
                    orphans.extend(index for index in cells if index != victim)
                pool.respawn(worker_id)
                stats.respawns += 1
                # The victim (the cell the worker was executing when it died)
                # is charged an attempt; the rest of the shard is stolen and
                # re-dispatched untouched.  Retains for the replacement
                # batches happen before the dead batches release, so shared
                # segments never hit refcount zero in between.
                if victim is not None:
                    handle_failure(victim, WorkerCrashError(reason))
                orphans = sorted(index for index in set(orphans)
                                 if index in unresolved)
                if orphans:
                    dispatch_cells(orphans, pick_worker())
                for batch_id in orphan_batches:
                    release_batch(batch_id)

            def maintenance() -> None:
                """Idle-tick work: due retries, cell timeouts, dead workers."""
                now = time.perf_counter()
                if waiting:
                    still_waiting: "list[tuple[float, int]]" = []
                    for ready, index in waiting:
                        if index not in unresolved:
                            # resolved while waiting (e.g. a duplicate
                            # attempt landed): drop the hold
                            if store is not None:
                                for segment in held.pop(index, ()):
                                    store.release(segment)
                        elif ready <= now:
                            dispatch_cells([index], pick_worker())
                        else:
                            still_waiting.append((ready, index))
                    waiting[:] = still_waiting
                if retry is not None and retry.cell_timeout:
                    for worker_id, index in list(current.items()):
                        if (index is not None and index in unresolved
                                and now - started_at.get(index, now)
                                > retry.cell_timeout):
                            pool.kill(worker_id)  # recovered as a dead worker
                for worker_id in pool.check_workers():
                    if retry is None:
                        raise RuntimeError(
                            f"sweep worker {worker_id} died with "
                            f"{len(unresolved)} cell(s) unresolved")
                    handle_dead_worker(worker_id, f"worker {worker_id} died")

            pool.submit(assignments)
            last_maintenance = time.perf_counter()
            while unresolved or outstanding:
                try:
                    event = pool.get_event(timeout=0.25)
                except Exception:  # queue.Empty (both flavours raise it)
                    event = None
                    if (retry is None and not pool.alive()
                            and (unresolved or outstanding)):
                        raise RuntimeError(
                            f"sweep workers died with {len(outstanding)} "
                            f"batch(es) outstanding") from None
                if event is not None:
                    kind = event[0]
                    if kind == "start":
                        _, worker_id, batch_id, index = event
                        if index in unresolved:
                            attempts[index] = attempts.get(index, 0) + 1
                            self._notify_start(plan[index].cell)
                        current[worker_id] = index
                        started_at[index] = time.perf_counter()
                    elif kind == "ok":
                        _, worker_id, batch_id, index, measurements, seconds, timings = event
                        if current.get(worker_id) == index:
                            current[worker_id] = None
                        cells = open_cells.get(batch_id)
                        if cells is not None:
                            cells.discard(index)
                        if index not in unresolved:
                            continue  # stale duplicate (abandoned attempt)
                        slots[index] = measurements
                        stats.executed += 1
                        if attempts.get(index, 1) > 1:
                            stats.recovered += 1
                        stats.setup_seconds += timings["setup"]
                        stats.execute_seconds += timings["execute"]
                        unresolved.discard(index)
                        cell = plan[index].cell
                        cache_started = time.perf_counter()
                        if self.cache is not None:
                            self.cache.store(cell, measurements, seconds=seconds)
                        cache_seconds = time.perf_counter() - cache_started
                        hint_memory.record(cell, seconds)
                        if self.profile:
                            stats.profile.append({
                                "cell": cell.label(),
                                "dispatch": timings.get("dispatch", 0.0),
                                "serialize": serialize_share.get(index, 0.0),
                                "setup": timings["setup"],
                                "execute": timings["execute"],
                                "cache": cache_seconds})
                        self._notify(cell, measurements, "executed")
                        self._notify_complete(cell, measurements, "executed",
                                              seconds)
                    elif kind == "err":
                        _, worker_id, batch_id, index, encoded = event
                        if current.get(worker_id) == index:
                            current[worker_id] = None
                        cells = open_cells.get(batch_id)
                        if cells is not None:
                            cells.discard(index)
                        if retry is None:
                            unresolved.discard(index)
                            errors.append(decode_error(encoded))
                            pool.abort.set()  # remaining cells drain as "skip"
                        else:
                            handle_failure(index, decode_error(encoded))
                    elif kind == "skip":
                        _, worker_id, batch_id, index = event
                        unresolved.discard(index)
                        cells = open_cells.get(batch_id)
                        if cells is not None:
                            cells.discard(index)
                    elif kind == "batch_done":
                        batch_id = event[2]
                        open_cells.pop(batch_id, None)
                        outstanding.discard(batch_id)
                        release_batch(batch_id)
                    # "worker_done" events need no handling: batch/cell
                    # accounting above already decides when the drain ends.
                now = time.perf_counter()
                if event is None or now - last_maintenance >= 0.2:
                    # Recovery runs on idle ticks (and at least every 0.2s
                    # under load) so a dead worker's already-queued events
                    # drain first and the victim cell is identified from the
                    # freshest "start" bookkeeping.
                    last_maintenance = now
                    maintenance()
        except BaseException:
            if pool is not None:
                pool.terminate()
            raise
        finally:
            if pool is not None and pool is not self.pool:
                pool.shutdown()  # externally-owned pools outlive the run
            if store is not None:
                # segments must never outlive the sweep, whatever happened
                store.close()
        if errors:
            stats.failed = len(errors)
            raise errors[0]

    def _run_pool(self, plan: Sequence[PlannedCell], pending: "list[int]",
                  slots: "list[list[Measurement] | None]", stats: SweepStats) -> None:
        pool_cls = ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
        errors: "list[BaseException]" = []
        with pool_cls(max_workers=min(self.workers, len(pending))) as pool:
            futures: "dict[Future, int]" = {}
            for index in pending:
                planned = plan[index]
                if self.executor == "process":
                    if planned.payload is None:
                        raise ValueError(
                            f"cell {planned.cell.label()} has no picklable payload; "
                            f"use executor='thread'")
                    futures[pool.submit(execute_payload, planned.payload)] = index
                else:
                    futures[pool.submit(planned.execute)] = index
                self._notify_start(planned.cell)
            # Results are committed to the cache as each cell completes, so a
            # sweep killed at any point resumes from the cells that finished.
            # The first failing cell cancels the cells that have not started,
            # but everything already running is still collected and cached.
            try:
                for future in as_completed(futures):
                    if future.cancelled():
                        continue
                    error = future.exception()
                    if error is not None:
                        errors.append(error)
                        for queued in futures:
                            if not queued.done():
                                queued.cancel()
                        continue
                    index = futures[future]
                    measurements = future.result()
                    slots[index] = measurements
                    stats.executed += 1
                    if self.cache is not None:
                        self.cache.store(plan[index].cell, measurements)
                    self._notify(plan[index].cell, measurements, "executed")
                    self._notify_complete(plan[index].cell, measurements,
                                          "executed", None)
            except BaseException:  # e.g. Ctrl-C in the main thread
                for queued in futures:
                    queued.cancel()
                # Cells whose futures already completed did their work: drain
                # them into the cache/slots before propagating, so a resumed
                # sweep does not re-execute finished cells.
                for future, index in futures.items():
                    if (slots[index] is not None or not future.done()
                            or future.cancelled()
                            or future.exception() is not None):
                        continue
                    measurements = future.result()
                    slots[index] = measurements
                    stats.executed += 1
                    if self.cache is not None:
                        self.cache.store(plan[index].cell, measurements)
                    self._notify(plan[index].cell, measurements, "executed")
                    self._notify_complete(plan[index].cell, measurements,
                                          "executed", None)
                raise
        if errors:
            stats.failed = len(errors)
            raise errors[0]


# --------------------------------------------------------------------------- #
# cell execution: one implementation shared by the thread and process paths
# --------------------------------------------------------------------------- #
def execute_cell(cell: Cell, engine, *, runner=None, frame=None, sim=None,
                 pipeline=None, tpch_runner=None,
                 attempt: int = 1) -> "list[Measurement]":
    """Run one cell against resolved components and return its measurements.

    This is the *single* place a cell's coordinates are turned into
    ``measure_*`` calls: the session's thread-pool thunks call it with shared
    components, and :func:`execute_payload` calls it with components rebuilt
    inside a worker process — so both executors produce identical records by
    construction.  The cell's ``backend`` coordinate is realized here too:
    the input frame is converted to the requested physical representation,
    the substrate's active backend is switched for the duration of the cell,
    and every emitted measurement is stamped with the backend it ran on.

    ``attempt`` is the 1-based execution attempt under a retry policy; it
    never influences results — it only feeds the fault-injection hook, which
    is a no-op unless a :class:`~repro.testing.faults.FaultPlan` is active.
    """
    from ..frame.backends import convert_frame, use_backend

    fault_point("execute_cell", cell_id=cell.cell_id, attempt=attempt)
    backend = cell.backend or "object"
    if frame is not None:
        # no-op (same object) when the frame already lives on that backend,
        # e.g. when the session pre-converted it once per dataset
        frame = convert_frame(frame, backend)
    with use_backend(backend):
        measurements = _execute_cell_inner(cell, engine, runner=runner,
                                           frame=frame, sim=sim,
                                           pipeline=pipeline,
                                           tpch_runner=tpch_runner)
    for m in measurements:
        m.backend = backend
    return measurements


def _execute_cell_inner(cell: Cell, engine, *, runner, frame, sim, pipeline,
                        tpch_runner) -> "list[Measurement]":
    if cell.mode == "tpch":
        outcome = tpch_runner.run_query(engine, cell.pipeline)
        return [Measurement(
            engine=cell.engine, dataset=cell.dataset, pipeline=cell.pipeline,
            mode="tpch", step=cell.pipeline, seconds=outcome.seconds,
            rows=outcome.rows, lazy=engine.supports_lazy, failed=outcome.failed,
            failure_reason=outcome.failure_reason, machine=cell.machine)]
    if cell.mode in ("read", "write"):
        return [runner.measure_io(engine, frame, sim, cell.mode, cell.file_format)]
    if cell.mode == "core":
        return runner.measure_function_core(engine, frame, pipeline, sim)
    if cell.mode == "stage":
        return runner.measure_stages(engine, frame, pipeline, sim, lazy=cell.lazy,
                                     stages=list(cell.stages) or None,
                                     streaming=cell.streaming)
    if cell.mode == "full":
        return [runner.measure_full(engine, frame, pipeline, sim, lazy=cell.lazy,
                                    streaming=cell.streaming)]
    raise ValueError(f"unknown cell mode {cell.mode!r}")


@functools.lru_cache(maxsize=2)
def _tpch_data_cached(physical_scale_factor: float, seed: int):
    """Per-worker-process TPC-H data (regeneration is deterministic, so this
    matches the parent's data without pickling the whole database per cell)."""
    from ..tpch.datagen import generate_tpch

    return generate_tpch(physical_scale_factor, seed=seed)


def execute_payload(payload: "dict[str, Any]") -> "list[Measurement]":
    """Re-execute one cell from a self-contained payload in a worker process.

    The payload carries the cell plus everything its measurement needs: the
    machine configuration and optimizer settings (the engine is rebuilt by
    name), the physical frame, the simulation context and the pipeline — or
    the TPC-H scale factor and seed for ``mode="tpch"`` cells.
    """
    from ..core.runner import MatrixRunner
    from ..engines.registry import create_engine

    cell: Cell = payload["cell"]
    engine = create_engine(cell.engine, payload["machine"],
                           optimizer_settings=payload.get("optimizer"))
    runner = MatrixRunner(runs=cell.runs)
    if cell.mode == "tpch":
        from ..tpch.runner import TPCHRunner

        data = _tpch_data_cached(payload["tpch_scale_factor"], payload["tpch_seed"])
        return execute_cell(cell, engine,
                            tpch_runner=TPCHRunner(data, runs=cell.runs))
    return execute_cell(cell, engine, runner=runner, frame=payload["frame"],
                        sim=payload["sim"], pipeline=payload["pipeline"])
