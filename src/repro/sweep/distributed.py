"""Distributed sweeps: shard cells across worker hosts over a TCP protocol.

This is the cross-machine half of the sweep tier (ROADMAP item 1).  A
:class:`SweepCoordinator` owns a planned sweep and a listening socket; each
participating machine runs a :class:`HostWorker` agent
(``python -m repro sweep-worker --connect host:port``) that rebuilds the
identical plan from a wire-serialized :class:`RunSpec`, executes granted
cells on its local :class:`~repro.sweep.scheduler.SweepScheduler` (thread or
process pool), and streams per-cell ``start``/``result`` events back — so
cache commits, ``on_result`` callbacks, resume and profiler contracts are
exactly the single-host ones.

Design decisions, in the order they matter:

* **Stdlib TCP, length-prefixed JSON frames** — same no-new-deps philosophy
  as :mod:`repro.service.http`.  Only cell *ids* and measurement dicts cross
  the wire: plans are deterministic functions of the configuration, so each
  host re-derives frames/pipelines/engines locally instead of pickling them.
* **Content-hash sharding** — pending cells are placed by content hash of
  their dataset coordinate (falling back to ``cell_id`` hashing when there
  are fewer datasets than hosts), and each host's backlog is ordered
  longest-first from ``seconds_hint`` — the same affinity/longest-first
  structure as :func:`repro.sweep.workers.assign_shards`, lifted from
  workers to hosts (see :func:`assign_host_shards`).
* **Pull-based grants + work-stealing** — hosts request work (``ready``) and
  receive small chunks, so unstarted cells stay at the coordinator.  An idle
  host whose backlog is empty steals from the *tail* of the slowest shard
  (largest remaining hint mass): the owner keeps eating its longest cells
  from the front while thieves take the short ones from the back.
* **The shared** :class:`~repro.sweep.cache.SweepCache` **is the coordination
  substrate** — every host commits results to (and checks) the same
  content-addressed store, so a cell committed by any peer is skipped
  everywhere (the multi-process safety this relies on is pinned by tests).
* **PR 9 fault semantics across hosts** — transient failures are retried
  *inside* the owning host by its local ``RetryPolicy`` machinery; a lost
  connection or crashed host charges one attempt against each cell it had
  started (:class:`HostLostError` is a :class:`WorkerCrashError`) and
  re-grants survivors' work, quarantining a cell only when its wire-carried
  attempt budget is exhausted.  ``retry=None`` keeps fail-fast semantics.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import socket
import struct
import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Sequence

from ..config import ExperimentConfig
from ..results import Measurement, ResultSet
from ..simulate.hardware import GpuConfig, MachineConfig
from ..testing.faults import (ConnectionDropFault, FaultPlan,
                              active_fault_plan, fault_point,
                              install_fault_plan)
from .cache import SweepCache
from .cells import Cell
from .resilience import RetryPolicy, WorkerCrashError, quarantine_measurement
from .scheduler import PlannedCell, SweepScheduler, SweepStats
from .workers import DEFAULT_SECONDS_HINT, hint_memory

__all__ = ["ConnectionClosed", "ProtocolError", "HostLostError", "RunSpec",
           "SweepCoordinator", "HostWorker", "send_frame", "recv_frame",
           "assign_host_shards"]

_HEADER = struct.Struct(">I")
#: Frames carry cell ids and measurement dicts, never frames — anything
#: larger than this is a protocol bug, not a big sweep.
MAX_FRAME_BYTES = 64 * 1024 * 1024
#: Cells granted per ``ready`` request: small enough that unstarted work
#: stays stealable at the coordinator, large enough to amortize round trips.
DEFAULT_CHUNK = 4


class ProtocolError(RuntimeError):
    """A malformed or oversized frame on the coordinator↔host link."""


class ConnectionClosed(ProtocolError):
    """The peer closed the link (EOF mid-frame or before one)."""


class HostLostError(WorkerCrashError):
    """A worker host disconnected or missed heartbeats with cells in flight.

    Subclasses :class:`~repro.sweep.resilience.WorkerCrashError` so host loss
    charges a cell's attempt budget exactly like an intra-host worker crash.
    """


# --------------------------------------------------------------------------- #
# framing: 4-byte big-endian length prefix + compact JSON object
# --------------------------------------------------------------------------- #
def send_frame(sock: socket.socket, payload: "dict[str, Any]") -> None:
    """Write one length-prefixed JSON frame."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds "
                            f"{MAX_FRAME_BYTES}")
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            raise ConnectionClosed("connection closed by peer")
        chunks += chunk
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> "dict[str, Any]":
    """Read one frame; raises :class:`ConnectionClosed` on EOF."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        payload = json.loads(_recv_exact(sock, length).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(f"undecodable frame: {err}") from None
    if not isinstance(payload, dict) or "type" not in payload:
        raise ProtocolError("frame is not a typed JSON object")
    return payload


# --------------------------------------------------------------------------- #
# the wire-serializable description a host rebuilds its plan from
# --------------------------------------------------------------------------- #
@dataclass
class RunSpec:
    """Everything a :class:`HostWorker` needs to reconstruct the sweep.

    Plans are deterministic functions of (configuration, plan kwargs): the
    datasets regenerate from the seed, the engines rebuild by name, and
    :meth:`repro.session.Session.plan` enumerates cells in a fixed order —
    so shipping this spec yields the exact cell ids the coordinator holds,
    and only ids ever cross the wire afterwards.
    """

    config: "dict[str, Any]"
    plan_kwargs: "dict[str, Any]"
    cache_dir: "str | None" = None
    retry: "dict[str, Any] | None" = None
    faults: "dict[str, Any] | None" = None
    profile: bool = False

    @staticmethod
    def config_to_wire(config: ExperimentConfig) -> "dict[str, Any]":
        return {"scale": config.scale, "runs": config.runs,
                "seed": config.seed, "backend": config.backend,
                "engines": list(config.engines),
                "tpch_engines": list(config.tpch_engines),
                "datasets": list(config.datasets),
                "machine": asdict(config.machine)}

    @staticmethod
    def config_from_wire(wire: "dict[str, Any]") -> ExperimentConfig:
        machine = dict(wire["machine"])
        gpu = machine.get("gpu")
        machine["gpu"] = GpuConfig(**gpu) if gpu else None
        return ExperimentConfig(
            scale=wire["scale"], runs=wire["runs"], seed=wire["seed"],
            backend=wire["backend"], machine=MachineConfig(**machine),
            engines=list(wire["engines"]),
            tpch_engines=list(wire["tpch_engines"]),
            datasets=list(wire["datasets"]))

    @staticmethod
    def faults_to_wire(plan: "FaultPlan | None") -> "dict[str, Any] | None":
        if plan is None:
            return None
        return {"seed": plan.seed, "counts": dict(plan.counts),
                "flaky_attempts": plan.flaky_attempts,
                "hang_seconds": plan.hang_seconds}

    def to_dict(self) -> "dict[str, Any]":
        return asdict(self)

    @classmethod
    def from_dict(cls, wire: "dict[str, Any]") -> "RunSpec":
        return cls(config=wire["config"], plan_kwargs=wire["plan_kwargs"],
                   cache_dir=wire.get("cache_dir"), retry=wire.get("retry"),
                   faults=wire.get("faults"),
                   profile=bool(wire.get("profile", False)))

    def build_session(self):
        from ..session import Session  # session imports this package

        return Session(self.config_from_wire(self.config))

    def build_plan(self, session) -> "list[PlannedCell]":
        kwargs = dict(self.plan_kwargs)
        mode = kwargs.pop("mode", "full")
        if kwargs.get("stages") is not None:
            kwargs["stages"] = list(kwargs["stages"])
        if kwargs.get("formats") is not None:
            kwargs["formats"] = list(kwargs["formats"])
        return session.plan(mode, **kwargs)

    def retry_policy(self) -> "RetryPolicy | None":
        return RetryPolicy(**self.retry) if self.retry else None

    def fault_plan(self) -> "FaultPlan | None":
        if not self.faults:
            return None
        counts = self.faults["counts"]
        return FaultPlan(seed=self.faults["seed"],
                         kills=counts.get("kill", 0),
                         flaky=counts.get("flaky", 0),
                         hangs=counts.get("hang", 0),
                         corrupt=counts.get("corrupt", 0),
                         drops=counts.get("drop", 0),
                         flaky_attempts=self.faults["flaky_attempts"],
                         hang_seconds=self.faults["hang_seconds"])


# --------------------------------------------------------------------------- #
# sharding: content-hash host buckets, longest-first within each backlog
# --------------------------------------------------------------------------- #
def _hint(cell: Cell, cache: "SweepCache | None") -> float:
    if cache is not None:
        hint = cache.seconds_hint(cell)
        if hint is not None:
            return hint
    hint = hint_memory.lookup(cell)
    return hint if hint is not None else DEFAULT_SECONDS_HINT


def _shard_key(cell: Cell) -> "tuple[str, float]":
    # The coordinate sharded across hosts: all cells of one (dataset, scale)
    # land on one host — the host-level analogue of the dataset-affinity
    # sharding in ``workers.assign_shards`` — so the frame attach, warm
    # engines and the substrate memo's cross-engine dedup are paid once per
    # dataset fleet-wide instead of once per dataset *per host*.
    return (cell.dataset, cell.scale)


def _shard_owners(plan: Sequence[PlannedCell], hosts: int):
    """Return a ``cell -> owning host`` placement function for the plan.

    Distinct shard keys are ranked by their content hash and dealt
    round-robin: content-addressed (no positional accidents), collision-free
    (every host owns work), and derived from the *full* plan — so placement
    is independent of which cells are still pending, which is what keeps
    shards stable under resume.  When the plan holds fewer dataset
    coordinates than hosts the same ranking runs over cell ids instead:
    dataset affinity is moot there (some datasets must be warmed on several
    hosts regardless), and cell-level placement keeps every host seeded
    with owned work instead of starting idle.
    """
    coords: "dict[tuple, str]" = {}
    for planned in plan:
        key = _shard_key(planned.cell)
        if key not in coords:
            coords[key] = hashlib.sha256(
                f"{key[0]}|{key[1]}".encode("utf-8")).hexdigest()
    if len(coords) >= hosts:
        ranked = sorted(coords, key=lambda key: coords[key])
        owners = {key: rank % hosts for rank, key in enumerate(ranked)}
        return lambda cell: owners[_shard_key(cell)]
    cells = {}
    for planned in plan:
        cell_id = planned.cell.cell_id
        if cell_id not in cells:
            cells[cell_id] = hashlib.sha256(
                cell_id.encode("utf-8")).hexdigest()
    ranked = sorted(cells, key=lambda cell_id: cells[cell_id])
    owners = {cell_id: rank % hosts for rank, cell_id in enumerate(ranked)}
    return lambda cell: owners[cell.cell_id]


def assign_host_shards(plan: Sequence[PlannedCell], pending: "Sequence[int]",
                       hosts: int, cache: "SweepCache | None" = None
                       ) -> "list[list[int]]":
    """Shard pending plan indices across ``hosts`` backlogs.

    The host-level analogue of :func:`repro.sweep.workers.assign_shards`:
    placement is by content hash of the cell's dataset coordinate (stable
    under resume — a cell always lands on the same host for a given fleet
    size, so per-host warm state stays useful across reruns, and a dataset's
    substrate work is never duplicated across hosts), and each backlog is
    ordered longest-first from ``seconds_hint`` so stragglers start early
    and the stealable tail holds the short cells.
    """
    if hosts < 1:
        raise ValueError("hosts must be at least 1")
    owner_of = _shard_owners(plan, hosts)
    backlogs: "list[list[int]]" = [[] for _ in range(hosts)]
    for index in pending:
        backlogs[owner_of(plan[index].cell)].append(index)
    for backlog in backlogs:
        backlog.sort(key=lambda index: (-_hint(plan[index].cell, cache), index))
    return backlogs


# --------------------------------------------------------------------------- #
# the coordinator
# --------------------------------------------------------------------------- #
class _HostState:
    """Coordinator-side bookkeeping for one registered worker host."""

    def __init__(self, host_id: int, name: str, sock: socket.socket,
                 workers: int):
        self.host_id = host_id
        self.name = name
        self.sock = sock
        self.workers = workers
        self.alive = True
        self.granted: "set[int]" = set()          # plan indices in flight
        self.granted_attempt: "dict[int, int]" = {}
        #: Datasets this host has been granted cells of: its worker pool has
        #: warm engines/frames for these, so steals prefer them.
        self.warm_datasets: "set[str]" = set()
        self.executed = 0
        self.cached = 0
        self.stolen = 0
        self.quarantined = 0
        self.execute_seconds = 0.0

    def record(self) -> "dict[str, Any]":
        return {"host": self.name, "workers": self.workers,
                "executed": self.executed, "cached": self.cached,
                "stolen": self.stolen, "quarantined": self.quarantined,
                "execute_seconds": round(self.execute_seconds, 4),
                "lost": not self.alive}


class SweepCoordinator:
    """Shards a planned sweep across TCP-registered worker hosts.

    Lifecycle::

        coordinator = SweepCoordinator(plan, spec=spec, hosts=2, cache=cache)
        coordinator.start()           # bind + listen; .address is now known
        ...                           # point `repro sweep-worker` agents at it
        results = coordinator.run()   # schedule, collect, reassemble

    ``hosts`` is the number of shards cells are hashed into (normally the
    fleet size); extra hosts beyond it register fine and work purely as
    stealers.  All scheduling state is owned by the :meth:`run` loop —
    connection handler threads only answer ``ready`` grants (under the same
    lock) and forward events, so ``on_result`` keeps the scheduler's
    "called from the scheduling thread" contract.
    """

    def __init__(self, plan: Sequence[PlannedCell], *, spec: RunSpec,
                 hosts: int, cache: "SweepCache | None" = None,
                 retry: "RetryPolicy | int | None" = None,
                 on_result: "Callable[[Cell, list, str], None] | None" = None,
                 profile: bool = False,
                 bind: "tuple[str, int]" = ("127.0.0.1", 0),
                 chunk: int = DEFAULT_CHUNK,
                 heartbeat_timeout: float = 20.0,
                 start_timeout: float = 120.0):
        if hosts < 1:
            raise ValueError("hosts must be at least 1")
        self.plan = list(plan)
        self.spec = spec
        self.expected_hosts = hosts
        self.cache = cache
        if isinstance(retry, int) and not isinstance(retry, bool):
            retry = RetryPolicy.from_retries(retry) if retry > 0 else None
        self.retry: "RetryPolicy | None" = retry
        self.on_result = on_result
        self.profile = profile
        self.bind = bind
        self.chunk = max(1, chunk)
        self.heartbeat_timeout = heartbeat_timeout
        self.start_timeout = start_timeout

        self.stats = SweepStats(total=len(self.plan), executor="distributed")
        self.address: "tuple[str, int] | None" = None
        self._listener: "socket.socket | None" = None
        self._lock = threading.Lock()
        self._events: "queue.Queue[tuple]" = queue.Queue()
        self._hosts: "list[_HostState]" = []
        self._threads: "list[threading.Thread]" = []
        self._plan_ready = False
        self._abort = False
        self._closed = False
        self._id_to_index = {planned.cell.cell_id: index
                             for index, planned in enumerate(self.plan)}
        # scheduling state (built in run(), mutated only under _lock)
        self._unresolved: "set[int]" = set()
        self._started: "set[int]" = set()
        self._attempts: "dict[int, int]" = {}   # charged (failed) attempts
        self._granted_to: "dict[int, int]" = {}
        self._orphans: "list[int]" = []
        self._backlogs: "list[list[int]]" = []
        self._slots: "list[list[Measurement] | None]" = [None] * len(self.plan)

    # ------------------------------------------------------------------ #
    def start(self) -> "tuple[str, int]":
        """Bind, listen and start accepting hosts; returns the address."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self.bind)
        listener.listen(16)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        acceptor = threading.Thread(target=self._accept_loop,
                                    name="sweep-coordinator-accept", daemon=True)
        acceptor.start()
        return self.address

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:  # listener closed: coordinator shutting down
                return
            handler = threading.Thread(target=self._serve_host, args=(sock,),
                                       name="sweep-coordinator-host", daemon=True)
            handler.start()
            self._threads.append(handler)

    def _serve_host(self, sock: socket.socket) -> None:
        sock.settimeout(self.heartbeat_timeout)
        host: "_HostState | None" = None
        try:
            hello = recv_frame(sock)
            if hello.get("type") != "hello":
                raise ProtocolError(f"expected hello, got {hello.get('type')!r}")
            with self._lock:
                host = _HostState(len(self._hosts),
                                  str(hello.get("name") or f"host-{len(self._hosts)}"),
                                  sock, int(hello.get("workers", 1)))
                self._hosts.append(host)
                self.stats.hosts += 1
            send_frame(sock, {"type": "welcome", "host_id": host.host_id,
                              "spec": self.spec.to_dict(),
                              "profile": self.profile})
            while True:
                frame = recv_frame(sock)
                kind = frame["type"]
                if kind == "ready":
                    send_frame(sock, self._grant(host))
                elif kind in ("start", "result", "grant_done", "fatal"):
                    self._events.put((kind, host, frame))
                elif kind == "heartbeat":
                    pass
                elif kind == "bye":
                    break
                else:
                    raise ProtocolError(f"unexpected frame type {kind!r}")
            with self._lock:
                if host.granted:  # a "bye" with work in flight is a crash
                    raise ConnectionClosed("host left with cells in flight")
                host.alive = False
        except (ProtocolError, OSError, TimeoutError) as err:
            if host is not None:
                self._events.put(("host_lost", host,
                                  {"reason": str(err) or type(err).__name__}))
        finally:
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    def _remaining_hint(self, backlog: "list[int]") -> float:
        return sum(_hint(self.plan[index].cell, self.cache) for index in backlog)

    def _grant(self, host: _HostState) -> "dict[str, Any]":
        """Answer one ``ready`` request (called from the host's handler)."""
        with self._lock:
            if self._abort or (self._plan_ready and not self._unresolved):
                return {"type": "drain"}
            if not self._plan_ready or not host.alive:
                return {"type": "wait", "seconds": 0.1}
            # Endgame: once the unresolved set fits inside one chunk per
            # host, grant single cells.  A time-starved host that sits on a
            # multi-cell grant at the end of the sweep would otherwise
            # stretch the tail by the whole chunk while every other host
            # idles — granted cells are not stealable.
            live = sum(1 for peer in self._hosts if peer.alive) or 1
            chunk = (1 if len(self._unresolved) <= live * self.chunk
                     else self.chunk)
            picks: "list[int]" = []
            stolen = False
            while self._orphans and len(picks) < chunk:
                index = self._orphans.pop(0)
                if index in self._unresolved and index not in self._granted_to:
                    picks.append(index)
            if not picks:
                backlog = (self._backlogs[host.host_id]
                           if host.host_id < len(self._backlogs) else [])
                # Fill the grant in dataset groups (longest-first lead, then
                # its dataset-mates) so each grant lands on the host's pool
                # as few batches warming few coordinates, not one batch per
                # cell.  Scheduling order only — results are plan-ordered.
                while backlog and len(picks) < chunk:
                    lead = backlog.pop(0)
                    picks.append(lead)
                    dataset = self.plan[lead].cell.dataset
                    position = 0
                    while (position < len(backlog)
                           and len(picks) < chunk):
                        if self.plan[backlog[position]].cell.dataset == dataset:
                            picks.append(backlog.pop(position))
                        else:
                            position += 1
            if not picks:
                victims = [b for i, b in enumerate(self._backlogs)
                           if b and i != host.host_id]
                if victims:
                    victim = max(victims, key=self._remaining_hint)
                    # Steal from the short tail, preferring datasets the
                    # thief has already warmed — a cold steal pays the full
                    # engine/frame setup the victim has already amortized.
                    position = len(victim) - 1
                    while position >= 0 and len(picks) < chunk:
                        cell = self.plan[victim[position]].cell
                        if cell.dataset in host.warm_datasets:
                            picks.append(victim.pop(position))
                        position -= 1
                    while victim and len(picks) < chunk:
                        picks.append(victim.pop())
                    stolen = True
                    self.stats.stolen += len(picks)
                    host.stolen += len(picks)
            if not picks:
                return {"type": "wait", "seconds": 0.2}
            cells = []
            for index in picks:
                attempt = self._attempts.get(index, 0) + 1
                self._granted_to[index] = host.host_id
                host.granted.add(index)
                host.granted_attempt[index] = attempt
                host.warm_datasets.add(self.plan[index].cell.dataset)
                cells.append({"cell_id": self.plan[index].cell.cell_id,
                              "attempt": attempt})
            return {"type": "cells", "cells": cells, "stolen": stolen}

    # ------------------------------------------------------------------ #
    def run(self) -> ResultSet:
        """Schedule the plan across hosts; returns results in plan order."""
        if self._listener is None:
            self.start()
        began = time.perf_counter()
        errors: "list[BaseException]" = []
        try:
            fault_plan = active_fault_plan()
            if fault_plan is not None and not fault_plan.bound:
                fault_plan.bind([planned.cell.cell_id for planned in self.plan])
            self.stats.cells = [p.cell.cell_id for p in self.plan]

            pending: "list[int]" = []
            for index, planned in enumerate(self.plan):
                hit = (self.cache.load(planned.cell)
                       if self.cache is not None else None)
                if hit is not None:
                    self._slots[index] = hit
                    self.stats.cached += 1
                    self._notify(planned.cell, hit, "cache")
                else:
                    pending.append(index)
            with self._lock:
                self._unresolved = set(pending)
                self._backlogs = assign_host_shards(
                    self.plan, pending, self.expected_hosts, self.cache)
                self._plan_ready = True

            while True:
                with self._lock:
                    if self._abort or not self._unresolved:
                        break
                try:
                    event = self._events.get(timeout=0.25)
                except queue.Empty:
                    event = None
                if event is not None:
                    self._handle_event(event, errors)
                self._check_liveness(began, errors)
        except BaseException as err:
            errors.insert(0, err)
        finally:
            self.stats.wall_seconds = time.perf_counter() - began
            with self._lock:
                self.stats.distributed = [h.record() for h in self._hosts]
                self.stats.workers = max(
                    (h.workers for h in self._hosts), default=1)
            self.close()
        if errors:
            self.stats.failed = len(errors)
            raise errors[0]
        results = ResultSet()
        for slot in self._slots:
            results.extend(slot or ())
        return results

    def _notify(self, cell: Cell, measurements: "list[Measurement]",
                source: str) -> None:
        if self.on_result is not None:
            self.on_result(cell, measurements, source)

    def _handle_event(self, event: tuple, errors: "list[BaseException]") -> None:
        kind, host, frame = event
        if kind == "start":
            index = self._id_to_index.get(frame.get("cell_id"))
            if index is not None:
                with self._lock:
                    if index in self._unresolved:
                        self._started.add(index)
        elif kind == "result":
            self._handle_result(host, frame)
        elif kind == "grant_done":
            with self._lock:
                self.stats.retries += int(frame.get("retries", 0))
                self.stats.recovered += int(frame.get("recovered", 0))
                self.stats.respawns += int(frame.get("respawns", 0))
                self.stats.batches += int(frame.get("batches", 0))
                self.stats.serialize_seconds += float(frame.get("serialize_seconds", 0.0))
                self.stats.setup_seconds += float(frame.get("setup_seconds", 0.0))
                for record in frame.get("profile", ()):
                    self.stats.profile.append({**record, "host": host.name})
        elif kind == "fatal":
            errors.append(RuntimeError(
                f"worker host {host.name} failed: {frame.get('error')}"))
            with self._lock:
                self._abort = True
        elif kind == "host_lost":
            self._handle_host_lost(host, frame.get("reason", "connection lost"),
                                   errors)

    def _handle_result(self, host: _HostState, frame: "dict[str, Any]") -> None:
        cell_id = frame.get("cell_id")
        index = self._id_to_index.get(cell_id)
        if index is None:
            return
        with self._lock:
            host.granted.discard(index)
            host.granted_attempt.pop(index, None)
            if index not in self._unresolved:
                return  # stale duplicate from a host declared lost
            self._unresolved.discard(index)
            self._started.discard(index)
            self._granted_to.pop(index, None)
            charged = self._attempts.get(index, 0)
        cell = self.plan[index].cell
        measurements = [Measurement.from_dict(m)
                        for m in frame.get("measurements", ())]
        source = frame.get("source", "executed")
        seconds = frame.get("seconds")
        self._slots[index] = measurements
        if source == "executed":
            self.stats.executed += 1
            host.executed += 1
            if seconds is not None:
                self.stats.execute_seconds += seconds
                host.execute_seconds += seconds
                hint_memory.record(cell, seconds)
            if charged > 0:
                self.stats.recovered += 1
            # hosts without a shared cache report committed=False; the
            # coordinator then commits on their behalf so resume still works
            if self.cache is not None and not frame.get("committed", False):
                self.cache.store(cell, measurements, seconds=seconds)
        elif source == "cache":
            self.stats.cached += 1
            host.cached += 1
            if charged > 0:
                self.stats.recovered += 1
        elif source == "quarantined":
            self.stats.quarantined += 1
            host.quarantined += 1
        self._notify(cell, measurements, source)

    def _handle_host_lost(self, host: _HostState, reason: str,
                          errors: "list[BaseException]") -> None:
        with self._lock:
            if not host.alive:
                return
            host.alive = False
            self.stats.hosts_lost += 1
            granted = sorted(host.granted)
            host.granted.clear()
            try:
                host.sock.close()
            except OSError:
                pass
            for index in granted:
                if index not in self._unresolved:
                    continue
                self._granted_to.pop(index, None)
                attempt = host.granted_attempt.pop(index, 0)
                # Every granted cell is in-flight from here: the host may have
                # been anywhere between accepting the grant and sending the
                # result, so charge the attempt like a local worker crash —
                # otherwise a grant that reliably kills its host would be
                # re-granted at attempt 1 forever.
                self._started.discard(index)
                self._attempts[index] = max(self._attempts.get(index, 0),
                                            attempt)
                if self.retry is None:
                    self._abort = True
                    errors.append(HostLostError(
                        f"host {host.name} lost mid-cell ({reason})"))
                    continue
                if self._attempts[index] >= self.retry.max_attempts:
                    self._quarantine_locked(index, HostLostError(reason))
                    continue
                self.stats.retries += 1
                self.stats.reassigned += 1
                self._orphans.append(index)
            host.granted_attempt.clear()

    def _quarantine_locked(self, index: int, error: BaseException) -> None:
        cell = self.plan[index].cell
        measurement = quarantine_measurement(cell, error,
                                             self._attempts.get(index, 0))
        self._slots[index] = [measurement]
        self.stats.quarantined += 1
        self._unresolved.discard(index)
        self._notify(cell, [measurement], "quarantined")

    def _check_liveness(self, began: float, errors: "list[BaseException]") -> None:
        with self._lock:
            if self._abort or not self._unresolved:
                return
            alive = sum(1 for h in self._hosts if h.alive)
            if alive:
                return
            if self._hosts and len(self._hosts) >= self.expected_hosts:
                self._abort = True
                errors.append(RuntimeError(
                    "all worker hosts were lost with "
                    f"{len(self._unresolved)} cell(s) unresolved"))
            elif time.perf_counter() - began > self.start_timeout:
                self._abort = True
                errors.append(RuntimeError(
                    f"no worker host connected within {self.start_timeout:.0f}s"))

    def close(self) -> None:
        """Stop accepting, let connected hosts drain, release sockets."""
        if self._closed:
            return
        self._closed = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        # handler threads answer the hosts' final ready with "drain" and
        # collect their "bye"; give them a moment before cutting sockets
        deadline = time.monotonic() + 5.0
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        with self._lock:
            for host in self._hosts:
                try:
                    host.sock.close()
                except OSError:
                    pass


# --------------------------------------------------------------------------- #
# the worker-host agent
# --------------------------------------------------------------------------- #
class HostWorker:
    """One machine's sweep agent: connects, rebuilds the plan, pulls grants.

    Each grant executes on a local single-host
    :class:`~repro.sweep.scheduler.SweepScheduler` (``--jobs`` workers,
    thread or process pool), so batching, shared-memory transport, retries
    and crash recovery inside the host are exactly the PR 7/9 machinery.
    ``start``/``result`` events stream back per cell; a heartbeat thread
    keeps the link warm while long cells run.
    """

    def __init__(self, host: str, port: int, *, jobs: int = 1,
                 executor: str = "thread", name: "str | None" = None,
                 heartbeat_interval: float = 2.0, session=None):
        self.address = (host, int(port))
        self.jobs = max(1, int(jobs))
        self.executor = executor
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.heartbeat_interval = heartbeat_interval
        #: A pre-built session (forked local agents inherit the parent's,
        #: skipping dataset regeneration).  It must match the coordinator's
        #: wire spec — the plan is still rebuilt from ``spec.plan_kwargs``,
        #: and remote agents always build their own from the spec config.
        self.session = session
        self._sock: "socket.socket | None" = None
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._cache: "SweepCache | None" = None
        self._grant_attempt: "dict[str, int]" = {}
        #: One batch executor for the host's whole lifetime.  Grants are
        #: small (steal granularity), so the per-coordinate warm state —
        #: engines, attached frames, the substrate memo — must live in a
        #: pool that survives grants, or every grant pays full setup again.
        self._pool = None

    def _send(self, payload: "dict[str, Any]") -> None:
        with self._send_lock:
            send_frame(self._sock, payload)

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self._send({"type": "heartbeat"})
            except OSError:
                return

    # ------------------------------------------------------------------ #
    def run(self) -> int:
        """Serve grants until the coordinator drains this host; returns 0."""
        sock = socket.create_connection(self.address, timeout=30)
        sock.settimeout(None)
        self._sock = sock
        heartbeat = threading.Thread(target=self._heartbeat_loop,
                                     name="sweep-worker-heartbeat", daemon=True)
        try:
            self._send({"type": "hello", "name": self.name,
                        "pid": os.getpid(), "workers": self.jobs})
            welcome = recv_frame(sock)
            if welcome.get("type") != "welcome":
                raise ProtocolError(
                    f"expected welcome, got {welcome.get('type')!r}")
            spec = RunSpec.from_dict(welcome["spec"])
            profile = bool(welcome.get("profile", False))
            fault_plan = spec.fault_plan()
            if fault_plan is not None:
                install_fault_plan(fault_plan)
            session = self.session if self.session is not None else spec.build_session()
            plan = spec.build_plan(session)
            # bind to the FULL plan's ids (the coordinator binds the same
            # population), not per grant — otherwise targets would drift
            active = active_fault_plan()
            if active is not None and not active.bound:
                active.bind([planned.cell.cell_id for planned in plan])
            by_id = {planned.cell.cell_id: planned for planned in plan}
            self._cache = SweepCache(spec.cache_dir) if spec.cache_dir else None
            retry = spec.retry_policy()
            heartbeat.start()
            while True:
                self._send({"type": "ready"})
                frame = recv_frame(sock)
                kind = frame["type"]
                if kind == "wait":
                    time.sleep(min(1.0, float(frame.get("seconds", 0.2))))
                elif kind == "drain":
                    break
                elif kind == "cells":
                    self._execute_grant(frame, by_id, retry, profile)
                else:
                    raise ProtocolError(f"unexpected frame type {kind!r}")
            self._send({"type": "bye"})
            return 0
        except ConnectionDropFault:
            self._sever()
            raise  # unreachable: _sever does not return
        except Exception as err:
            try:
                self._send({"type": "fatal", "error": f"{type(err).__name__}: {err}"})
            except OSError:
                pass
            raise
        finally:
            self._stop.set()
            if self._pool is not None:
                try:
                    self._pool.shutdown()
                except Exception:
                    pass
            try:
                sock.close()
            except OSError:
                pass

    def _sever(self) -> None:
        """Act out a severed link: close the socket, then die like a crash.

        This is the ``drop`` fault: the coordinator sees a bare EOF with
        cells in flight — exactly what a network partition or a machine
        losing power looks like — and must reassign to surviving hosts.
        """
        import signal

        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        os.kill(os.getpid(), signal.SIGKILL)

    # ------------------------------------------------------------------ #
    def _ensure_pool(self):
        if self.executor != "thread":
            # Process workers cache frame attachments per shm segment, and
            # segments are re-exported per scheduler run — a process pool
            # outliving its run would pin every grant's segments until
            # shutdown.  Process-executor grants keep per-run pools.
            return None
        if self._pool is None:
            from .workers import ThreadBatchExecutor

            self._pool = ThreadBatchExecutor(self.jobs)
        return self._pool

    def _execute_grant(self, frame: "dict[str, Any]", by_id: "dict[str, PlannedCell]",
                       retry: "RetryPolicy | None", profile: bool) -> None:
        # First-attempt cells run on the persistent pool (warm engines,
        # attached frames, memo survive across grants).  Cells re-granted
        # after a host loss carry a wire attempt > 1: those run per-cell so
        # ``_offset_attempts`` rebases fault/retry numbering — the batch
        # tier's task attempts restart at 1 and must not re-fire one-shot
        # faults that already killed the previous host.
        subplan: "list[PlannedCell]" = []
        regrants: "list[PlannedCell]" = []
        for entry in frame.get("cells", ()):
            cell_id = entry["cell_id"]
            attempt = int(entry.get("attempt", 1))
            planned = by_id.get(cell_id)
            if planned is None:
                raise ProtocolError(
                    f"granted unknown cell {cell_id!r}: the coordinator and "
                    f"this host disagree on the plan (configuration drift?)")
            fault_point("host_link", cell_id=cell_id, attempt=attempt)
            self._grant_attempt[cell_id] = attempt
            if attempt > 1:
                regrants.append(PlannedCell(
                    cell=planned.cell,
                    execute=_offset_attempts(planned.execute, attempt),
                    payload=planned.payload))
            else:
                subplan.append(planned)
        done = {"retries": 0, "recovered": 0, "respawns": 0, "batches": 0,
                "serialize_seconds": 0.0, "setup_seconds": 0.0}
        profiles: "list[dict]" = []
        for part, pooled in ((subplan, True), (regrants, False)):
            if not part:
                continue
            scheduler = SweepScheduler(
                workers=self.jobs if pooled else 1,
                cache=self._cache, executor=self.executor,
                on_complete=self._forward_complete,
                on_start=self._forward_start,
                profile=profile, retry=retry,
                pool=self._ensure_pool() if pooled else None)
            scheduler.run(part)
            stats = scheduler.last_stats
            done["retries"] += stats.retries
            done["recovered"] += stats.recovered
            done["respawns"] += stats.respawns
            done["batches"] += stats.batches
            done["serialize_seconds"] += stats.serialize_seconds
            done["setup_seconds"] += stats.setup_seconds
            profiles.extend(stats.profile)
        self._send({"type": "grant_done", **done, "profile": profiles})

    def _forward_start(self, cell: Cell) -> None:
        self._send({"type": "start", "cell_id": cell.cell_id})

    def _forward_complete(self, cell: Cell, measurements: "list[Measurement]",
                          source: str, seconds: "float | None") -> None:
        # ``seconds`` is the cell's *physical* wall clock measured by the
        # local scheduler — what coordinator hints, profiler totals and
        # cache metadata expect (measurement rows carry simulated time).
        self._send({"type": "result", "cell_id": cell.cell_id,
                    "source": source, "seconds": seconds,
                    "committed": self._cache is not None
                                 and source in ("cache", "executed"),
                    "measurements": [m.to_dict() for m in measurements]})


def _offset_attempts(execute, base: int):
    """Rebase a cell thunk's attempt numbering at the wire-carried attempt.

    Fault injection keys off global attempt numbers (a kill or drop target
    fires only on attempt 1), so a cell re-granted after a host loss must
    not restart its numbering — the fault already fired on the lost host.
    """
    if base <= 1:
        return execute
    def run(attempt: int = 1):
        return execute(attempt=base + attempt - 1)
    return run
