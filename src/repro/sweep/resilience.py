"""Retry, quarantine and crash-recovery policies for fault-tolerant sweeps.

A sweep over dozens of engine × dataset cells should not lose an hour of
work to one flaky engine exception, one hung cell or one killed worker.
This module defines the policy layer the scheduler applies when one is
configured (``retry=`` on :class:`~repro.sweep.scheduler.SweepScheduler` or
``--retries``/``--cell-timeout`` on the CLI):

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministic* jitter (seeded by cell id + attempt, so two runs of the
  same sweep back off identically and chaos tests reproduce bit-for-bit),
  plus an optional per-cell wall-clock timeout;
* :func:`quarantine_measurement` — the error-status
  :class:`~repro.results.Measurement` a poison cell degrades to after its
  attempts are exhausted, so the sweep completes and reports partial
  failure instead of aborting (quarantined cells are never cached: a
  rerun retries them);
* :func:`execute_with_retry` — the sequential-path driver applying a policy
  around a cell thunk;
* :class:`WorkerCrashError` / :class:`CellTimeoutError` — what a crashed
  worker or an expired cell timeout charges against the victim cell's
  attempt budget.

Without a policy the scheduler keeps its historical fail-fast semantics:
the first error aborts the sweep and worker death raises.
"""

from __future__ import annotations

import hashlib
import inspect
import threading
import time
from dataclasses import dataclass

from ..results import Measurement
from .cells import Cell

__all__ = ["RetryPolicy", "WorkerCrashError", "CellTimeoutError",
           "quarantine_measurement", "execute_with_retry"]


class WorkerCrashError(RuntimeError):
    """The worker executing a cell died (crash or injected SIGKILL)."""


class CellTimeoutError(RuntimeError):
    """A cell exceeded the policy's per-cell wall-clock timeout."""


@dataclass(frozen=True)
class RetryPolicy:
    """How many times a cell may run, and how long to wait between tries.

    ``max_attempts`` counts executions, not retries: ``max_attempts=3`` is
    one initial attempt plus up to two retries.  Backoff before retry *n*
    (i.e. after ``n`` failed attempts) is exponential and capped::

        backoff_base * backoff_multiplier ** (n - 1)   (at most backoff_max)

    scaled down by up to ``jitter`` (a fraction) using a hash of
    ``(cell_id, n)`` — deterministic per cell, decorrelated across cells, so
    a retry storm spreads out without making sweeps unreproducible.

    ``cell_timeout`` (seconds) bounds one attempt's wall clock; an expired
    attempt counts as a failure (the process executor kills the worker
    running it, the thread/sequential paths abandon the attempt).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    cell_timeout: "float | None" = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    @classmethod
    def from_retries(cls, retries: int,
                     cell_timeout: "float | None" = None) -> "RetryPolicy":
        """CLI-friendly constructor: ``retries`` extra attempts after the first."""
        return cls(max_attempts=int(retries) + 1, cell_timeout=cell_timeout)

    def backoff_seconds(self, cell_id: str, attempt: int) -> float:
        """Delay before the retry following failed attempt ``attempt`` (1-based)."""
        raw = min(self.backoff_max,
                  self.backoff_base * self.backoff_multiplier ** max(0, attempt - 1))
        if not self.jitter:
            return raw
        digest = hashlib.sha256(f"{cell_id}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2 ** 64  # [0, 1)
        return raw * (1.0 - self.jitter * fraction)


def quarantine_measurement(cell: Cell, error: "BaseException | str",
                           attempts: int) -> Measurement:
    """The error-status record a poison cell contributes to the result set.

    Carries the cell's coordinates so grouping/pivoting still works, plus
    the resilience fields: ``status="error"``, the stringified error, and
    how many attempts were spent.  ``failed=True`` keeps it out of
    ``ResultSet.ok()`` like any organic failure.
    """
    message = str(error) or type(error).__name__ if isinstance(error, BaseException) else str(error)
    return Measurement(
        engine=cell.engine, dataset=cell.dataset, pipeline=cell.pipeline,
        mode=cell.mode, step=cell.file_format, lazy=cell.lazy,
        streaming=cell.streaming, backend=cell.backend or "object",
        machine=cell.machine, failed=True,
        failure_reason=f"quarantined after {attempts} attempt(s): {message}",
        status="error", error=message, attempts=attempts)


def _accepts_attempt(thunk) -> bool:
    try:
        return "attempt" in inspect.signature(thunk).parameters
    except (TypeError, ValueError):  # builtins, partials without signatures
        return False


def _call_attempt(thunk, attempt: int, timeout: "float | None"):
    """Run one attempt, optionally bounded by a wall-clock timeout.

    The timeout runs the thunk on a daemon thread and abandons it on expiry
    (the sequential path has no process to kill); the abandoned attempt may
    finish silently later, but its result is discarded.
    """
    call = (lambda: thunk(attempt=attempt)) if _accepts_attempt(thunk) else thunk
    if not timeout:
        return call()
    outcome: dict = {}

    def target():
        try:
            outcome["value"] = call()
        except BaseException as error:  # transported to the waiting thread
            outcome["error"] = error

    runner = threading.Thread(target=target, name="repro-cell-attempt", daemon=True)
    runner.start()
    runner.join(timeout)
    if runner.is_alive():
        raise CellTimeoutError(f"cell attempt exceeded {timeout:g}s wall-clock timeout")
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


def execute_with_retry(thunk, cell: Cell, policy: RetryPolicy, *,
                       sleep=time.sleep):
    """Apply a retry policy around a cell thunk (the sequential path).

    Returns ``(measurements, attempts, seconds, error)`` where ``seconds``
    is the wall clock of the *successful* attempt only (failed attempts and
    backoff sleeps never pollute cache timing hints).  On exhaustion,
    ``measurements`` is the single quarantine record and ``error`` the last
    exception; on success ``error`` is ``None``.
    """
    last_error: "BaseException | None" = None
    for attempt in range(1, policy.max_attempts + 1):
        started = time.perf_counter()
        try:
            measurements = _call_attempt(thunk, attempt, policy.cell_timeout)
            return measurements, attempt, time.perf_counter() - started, None
        except Exception as error:
            last_error = error
            if attempt < policy.max_attempts:
                sleep(policy.backoff_seconds(cell.cell_id, attempt))
    assert last_error is not None
    return ([quarantine_measurement(cell, last_error, policy.max_attempts)],
            policy.max_attempts, 0.0, last_error)
