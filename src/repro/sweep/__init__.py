"""The sweep scheduler subsystem: cells, persistent cache, worker pools.

``repro.sweep`` turns a matrix slice into independent, hashable
:class:`~repro.sweep.cells.Cell` work units, dispatches them across a worker
pool with deterministic result ordering, and backs them with a
content-addressed on-disk cache so repeated or interrupted sweeps skip the
cells that already completed.  :meth:`repro.session.Session.run` and the
``python -m repro`` CLI (``--jobs``/``--cache-dir``/``--resume``) are built on
top of it.

Parallel sweeps execute through the batched tier of
:mod:`repro.sweep.workers`: cells are grouped into :class:`CellBatch` units
by (dataset, scale, engine), ordered longest-first from recorded wall-clock
hints and dispatched with dataset affinity to persistent workers — process
workers attach zero-copy to shared-memory frame segments
(:mod:`repro.frame.sharing`) instead of unpickling a frame per cell.

Beyond one machine, :mod:`repro.sweep.distributed` shards cells across TCP
worker hosts by content hash with cache-backed dedupe and work-stealing —
``Session.run(hosts=...)`` / CLI ``--hosts`` on the coordinator side,
``python -m repro sweep-worker`` on each host.
"""

from .cache import CACHE_VERSION, SweepCache, default_cache_dir, entry_checksum
from .cells import Cell, context_fingerprint, dataset_fingerprint, pipeline_fingerprint
from .distributed import (
    HostLostError,
    HostWorker,
    RunSpec,
    SweepCoordinator,
    assign_host_shards,
)
from .resilience import (
    CellTimeoutError,
    RetryPolicy,
    WorkerCrashError,
    quarantine_measurement,
)
from .scheduler import (
    PlannedCell,
    SweepScheduler,
    SweepStats,
    execute_cell,
    execute_payload,
    resolve_cache,
)
from .workers import (
    CellBatch,
    CellTask,
    HintMemory,
    ProcessWorkerPool,
    ThreadBatchExecutor,
    assign_shards,
    build_batches,
    hint_memory,
)

__all__ = [
    "Cell",
    "CellBatch",
    "CellTask",
    "CellTimeoutError",
    "HintMemory",
    "HostLostError",
    "HostWorker",
    "PlannedCell",
    "ProcessWorkerPool",
    "RetryPolicy",
    "RunSpec",
    "SweepCache",
    "SweepCoordinator",
    "SweepScheduler",
    "SweepStats",
    "ThreadBatchExecutor",
    "WorkerCrashError",
    "CACHE_VERSION",
    "assign_host_shards",
    "assign_shards",
    "build_batches",
    "context_fingerprint",
    "dataset_fingerprint",
    "entry_checksum",
    "hint_memory",
    "pipeline_fingerprint",
    "default_cache_dir",
    "execute_cell",
    "execute_payload",
    "quarantine_measurement",
    "resolve_cache",
]
