"""The sweep scheduler subsystem: cells, persistent cache, worker pools.

``repro.sweep`` turns a matrix slice into independent, hashable
:class:`~repro.sweep.cells.Cell` work units, dispatches them across a worker
pool with deterministic result ordering, and backs them with a
content-addressed on-disk cache so repeated or interrupted sweeps skip the
cells that already completed.  :meth:`repro.session.Session.run` and the
``python -m repro`` CLI (``--jobs``/``--cache-dir``/``--resume``) are built on
top of it.
"""

from .cache import CACHE_VERSION, SweepCache, default_cache_dir
from .cells import Cell, context_fingerprint, dataset_fingerprint, pipeline_fingerprint
from .scheduler import (
    PlannedCell,
    SweepScheduler,
    SweepStats,
    execute_cell,
    execute_payload,
    resolve_cache,
)

__all__ = [
    "Cell",
    "PlannedCell",
    "SweepCache",
    "SweepScheduler",
    "SweepStats",
    "CACHE_VERSION",
    "context_fingerprint",
    "dataset_fingerprint",
    "pipeline_fingerprint",
    "default_cache_dir",
    "execute_cell",
    "execute_payload",
    "resolve_cache",
]
