"""Persistent batch-execution tier of the sweep scheduler.

The PR 2 process path shipped a pickled frame + sim context inside *every*
cell payload and rebuilt the engine from scratch per cell, so "parallel"
sweeps ran slower than sequential (``BENCH_sweep.json`` flatline).  This
module replaces per-cell dispatch with **batched dispatch to persistent
workers**:

* pending cells are grouped into :class:`CellBatch` units by
  ``(dataset, scale, engine)`` — one frame handle and one warm engine per
  batch — and ordered longest-first using per-cell wall-clock hints
  (:meth:`~repro.sweep.cache.SweepCache.seconds_hint` backed by cache entry
  metadata, with an in-process :class:`HintMemory` fallback);
* batches are sharded across workers **by dataset** (affinity dispatch):
  every batch touching one physical frame lands on the same worker, so the
  frame is attached once and the worker's :class:`~repro.core.memo.
  SubstrateMemo` deduplicates the physical substrate work that the benchmark
  matrix repeats across engines, strategies and runs — this, not raw core
  count, is where the wall-clock win comes from (and it is exactly the
  affinity structure the distributed-sweep roadmap item will reuse);
* process workers receive frames as :class:`~repro.frame.sharing.
  FrameManifest` handles and attach zero-copy to shared-memory segments the
  dispatcher exported once per distinct frame;
* results flow back as per-cell events, drained by the scheduling thread —
  per-cell cache commits (and therefore resume semantics) are unchanged, and
  ``on_result`` callbacks keep firing from the scheduling thread.

Both executors run this tier: ``thread`` workers share one memo and the
session's live frames; ``process`` workers are long-lived forked processes
with per-worker caches of engines, attached frames, TPC-H data and memo.
The sequential path never uses this module — it stays the naive reference
implementation every other strategy is property-tested against.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .cells import Cell

__all__ = ["CellTask", "CellBatch", "HintMemory", "hint_memory", "build_batches",
           "assign_shards", "ThreadBatchExecutor", "ProcessWorkerPool",
           "DEFAULT_SECONDS_HINT"]

#: Assumed duration of a cell nothing is known about (hints only shape
#: scheduling order, never results).
DEFAULT_SECONDS_HINT = 1.0

#: Batch ids are unique across every ``build_batches`` call in the process:
#: a persistent pool (reused across scheduler runs by a worker-host agent)
#: may still hold events from an abandoned thread of an earlier run, and
#: those must never alias a later run's batches.
_batch_ids = itertools.count()


# --------------------------------------------------------------------------- #
# scheduling hints
# --------------------------------------------------------------------------- #
class HintMemory:
    """Process-local memory of recent per-cell wall-clock durations.

    Keyed coarsely by ``(mode, engine, dataset)`` so a hint survives changes
    to run count or scale — it only has to rank cells relative to each other
    for longest-first batch ordering.  The scheduler records every executed
    cell here; :func:`build_batches` consults it when the persistent cache
    has no ``seconds`` metadata for a cell.
    """

    def __init__(self) -> None:
        self._seconds: dict[tuple, float] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(cell: Cell) -> tuple:
        return (cell.mode, cell.engine, cell.dataset)

    def record(self, cell: Cell, seconds: float) -> None:
        with self._lock:
            self._seconds[self._key(cell)] = float(seconds)

    def lookup(self, cell: Cell) -> "float | None":
        with self._lock:
            return self._seconds.get(self._key(cell))


#: The module-level instance the scheduler feeds and consults.
hint_memory = HintMemory()


# --------------------------------------------------------------------------- #
# batches
# --------------------------------------------------------------------------- #
@dataclass
class CellTask:
    """One cell of a batch, with everything a worker needs to execute it."""

    index: int  # slot position in the plan (results land back here)
    cell: Cell
    machine: Any
    optimizer: Any = None
    sim: Any = None
    pipeline: Any = None
    #: Live frame object (thread executor only; never pickled).
    frame: Any = None
    #: Shared-memory handle (process executor only).
    manifest: Any = None
    tpch_scale_factor: "float | None" = None
    tpch_seed: "int | None" = None
    seconds_hint: float = DEFAULT_SECONDS_HINT
    #: Share of the frame's shared-memory export time attributed to this cell
    #: (parent-side bookkeeping for the profiler; not shipped usefully).
    serialize_share: float = 0.0
    #: 1-based execution attempt this dispatch represents (resilient
    #: scheduling re-dispatches a failed cell with an incremented attempt;
    #: fault injection gates on it).
    attempt: int = 1


@dataclass
class CellBatch:
    """Cells sharing one ``(dataset, scale, engine)`` coordinate."""

    batch_id: int
    key: tuple
    tasks: "list[CellTask]" = field(default_factory=list)

    @property
    def seconds_hint(self) -> float:
        return sum(task.seconds_hint for task in self.tasks)

    @property
    def shard_key(self) -> tuple:
        """Affinity key: batches of one dataset stick to one worker."""
        return self.key[:2]  # (dataset, scale)

    def segments(self) -> "set[str]":
        return {task.manifest.segment for task in self.tasks
                if task.manifest is not None}


def _task_from_payload(index: int, payload: "dict[str, Any]",
                       hint: float) -> CellTask:
    return CellTask(
        index=index, cell=payload["cell"], machine=payload["machine"],
        optimizer=payload.get("optimizer"), sim=payload.get("sim"),
        pipeline=payload.get("pipeline"), frame=payload.get("frame"),
        tpch_scale_factor=payload.get("tpch_scale_factor"),
        tpch_seed=payload.get("tpch_seed"), seconds_hint=hint)


def build_batches(plan: Sequence, pending: "Sequence[int]",
                  cache=None) -> "list[CellBatch]":
    """Group pending cells into batches keyed by (dataset, scale, engine).

    Within a batch, cells keep plan order; the batch list itself is returned
    unordered (ordering happens per worker in :func:`assign_shards`).  Each
    task carries its wall-clock hint — cache metadata first, then the
    in-process :data:`hint_memory`, then :data:`DEFAULT_SECONDS_HINT`.
    """
    grouped: "dict[tuple, CellBatch]" = {}
    for index in pending:
        planned = plan[index]
        cell: Cell = planned.cell
        hint = cache.seconds_hint(cell) if cache is not None else None
        if hint is None:
            hint = hint_memory.lookup(cell)
        if hint is None:
            hint = DEFAULT_SECONDS_HINT
        key = (cell.dataset, cell.scale, cell.engine)
        batch = grouped.get(key)
        if batch is None:
            batch = grouped[key] = CellBatch(batch_id=next(_batch_ids), key=key)
        batch.tasks.append(_task_from_payload(index, planned.payload, hint))
    return list(grouped.values())


def assign_shards(batches: "Iterable[CellBatch]",
                  workers: int) -> "list[list[CellBatch]]":
    """Distribute batches across workers with dataset affinity.

    All batches of one dataset form a *shard* and land on the same worker, so
    the frame attaches once and the worker's memo can share substrate work
    across that dataset's engines.  Shards go longest-first onto the
    least-loaded worker; within each worker, batches run longest-first.
    Returns one batch list per worker actually used (≤ ``workers``).
    """
    shards: "dict[tuple, list[CellBatch]]" = {}
    for batch in batches:
        shards.setdefault(batch.shard_key, []).append(batch)
    ordered = sorted(shards.values(),
                     key=lambda group: -sum(b.seconds_hint for b in group))
    used = max(1, min(workers, len(ordered)))
    assignments: "list[list[CellBatch]]" = [[] for _ in range(used)]
    loads = [0.0] * used
    for group in ordered:
        target = loads.index(min(loads))
        assignments[target].extend(group)
        loads[target] += sum(batch.seconds_hint for batch in group)
    for group in assignments:
        group.sort(key=lambda batch: -batch.seconds_hint)
    return assignments


# --------------------------------------------------------------------------- #
# worker-side execution (shared by both executors)
# --------------------------------------------------------------------------- #
class _WorkerState:
    """Per-worker caches: engines, attached frames, TPC-H data, memo.

    Building these is the per-cell setup cost the old path paid 72 times;
    a persistent worker pays it once per distinct coordinate.
    """

    def __init__(self) -> None:
        from ..core.memo import SubstrateMemo

        self.memo = SubstrateMemo()
        self._engines: "dict[tuple, Any]" = {}
        self._frames: "dict[str, Any]" = {}
        self._segments: "list[Any]" = []  # keeps attached SharedMemory alive
        self._runners: "dict[int, Any]" = {}
        self._tpch: "dict[tuple, Any]" = {}
        self._lock = threading.Lock()

    def engine_for(self, task: CellTask):
        key = (task.cell.engine, task.optimizer)
        with self._lock:
            engine = self._engines.get(key)
            if engine is None:
                from ..engines.registry import create_engine

                engine = create_engine(task.cell.engine, task.machine,
                                       optimizer_settings=task.optimizer)
                engine.substrate_memo = self.memo
                self._engines[key] = engine
            return engine

    def frame_for(self, task: CellTask):
        if task.frame is not None:  # thread executor: live shared object
            return task.frame
        if task.manifest is None:
            return None
        with self._lock:
            frame = self._frames.get(task.manifest.segment)
            if frame is None:
                from ..frame.sharing import attach_frame

                frame, shm = attach_frame(task.manifest)
                self._frames[task.manifest.segment] = frame
                self._segments.append(shm)
            return frame

    def runner_for(self, task: CellTask):
        from ..core.runner import MatrixRunner

        with self._lock:
            runner = self._runners.get(task.cell.runs)
            if runner is None:
                runner = self._runners[task.cell.runs] = MatrixRunner(runs=task.cell.runs)
            return runner

    def tpch_runner_for(self, task: CellTask):
        key = (task.tpch_scale_factor, task.tpch_seed, task.cell.runs)
        with self._lock:
            runner = self._tpch.get(key)
            if runner is None:
                from ..tpch.datagen import generate_tpch
                from ..tpch.runner import TPCHRunner

                data = generate_tpch(task.tpch_scale_factor, seed=task.tpch_seed)
                runner = TPCHRunner(data, runs=task.cell.runs)
                self._tpch[key] = runner
            return runner


def _execute_task(task: CellTask, state: _WorkerState):
    """Run one cell against the worker's warm caches.

    Returns ``(measurements, seconds, timings)`` where ``timings`` splits the
    wall clock into ``setup`` (engine build + frame attach, ~0 once warm) and
    ``execute`` (the actual measurement).
    """
    from .scheduler import execute_cell

    started = time.perf_counter()
    engine = state.engine_for(task)
    frame = state.frame_for(task)
    runner = state.runner_for(task)
    tpch_runner = (state.tpch_runner_for(task)
                   if task.cell.mode == "tpch" else None)
    setup = time.perf_counter() - started
    measurements = execute_cell(task.cell, engine, runner=runner, frame=frame,
                                sim=task.sim, pipeline=task.pipeline,
                                tpch_runner=tpch_runner, attempt=task.attempt)
    done = time.perf_counter()
    return measurements, done - started, {"setup": setup,
                                          "execute": done - started - setup}


def _run_batches(worker_id: int, batches, emit, abort, state: _WorkerState,
                 inflight=None) -> None:
    """The worker loop body: execute assigned batches, emit per-cell events.

    Event tuples (drained by the scheduling thread, which owns all cache
    stores and callbacks):

    * ``("start", worker, batch, index)`` — a cell attempt began
    * ``("ok", worker, batch, index, measurements, seconds, timings)``
    * ``("err", worker, batch, index, encoded_exception)``
    * ``("skip", worker, batch, index)`` — abandoned after an abort
    * ``("batch_done", worker, batch)`` — frame refcounts released on this
    * ``("worker_done", worker)``

    ``inflight`` (when given) is a setter recording the plan index currently
    executing in a side channel that survives SIGKILL — queued events can die
    with a killed worker's queue feeder, so crash recovery identifies the
    victim cell from this sentinel, not from the (lossy) ``start`` stream.
    """
    for batch_id, dispatch_ts, tasks in batches:
        batch_started = time.perf_counter()
        for task in tasks:
            if abort.is_set():
                emit(("skip", worker_id, batch_id, task.index))
                continue
            if inflight is not None:
                inflight(task.index)
            emit(("start", worker_id, batch_id, task.index))
            try:
                measurements, seconds, timings = _execute_task(task, state)
                timings["dispatch"] = max(0.0, batch_started - dispatch_ts)
                emit(("ok", worker_id, batch_id, task.index, measurements,
                      seconds, timings))
            except BaseException as error:  # transported, re-raised by parent
                emit(("err", worker_id, batch_id, task.index,
                      _encode_error(error)))
            finally:
                if inflight is not None:
                    inflight(-1)
        emit(("batch_done", worker_id, batch_id))
    emit(("worker_done", worker_id))


def _encode_error(error: BaseException):
    try:
        return pickle.dumps(error)
    except Exception:
        return f"{type(error).__name__}: {error}"


def decode_error(encoded) -> BaseException:
    if isinstance(encoded, bytes):
        try:
            return pickle.loads(encoded)
        except Exception:
            return RuntimeError("worker failed with an unpicklable exception")
    return RuntimeError(str(encoded))


# --------------------------------------------------------------------------- #
# the two pool flavours
# --------------------------------------------------------------------------- #
# Both pools expose the same lifecycle to the scheduler: ``submit`` for the
# initial shard assignment, ``dispatch`` for later single batches (retries,
# stolen cells), ``get_event`` to drain, and the crash-recovery trio —
# ``check_workers`` (ids needing recovery), ``kill`` (force-fail a worker,
# e.g. on a cell timeout) and ``respawn`` (fresh queue + fresh worker under
# the same id).  Workers stay alive when idle and exit on a ``None``
# sentinel, which ``shutdown`` sends.


class ThreadBatchExecutor:
    """Batched thread pool: workers share one memo and live frames.

    Threads cannot beat the GIL on this numpy-light substrate; what the
    batched thread path buys over per-cell futures is the shared
    :class:`SubstrateMemo` (cross-engine/cross-run dedup) and batch-ordered
    dispatch. Zero serialization: tasks reference the session's own objects.

    A thread cannot be killed, so ``kill`` *abandons* it: the thread keeps
    running as a daemon (it may finish its hung cell and even later batches,
    whose events the scheduler ignores as stale) while a replacement thread
    with a fresh queue takes over its worker id.
    """

    def __init__(self, workers: int):
        self.workers = workers
        self.events: "queue.Queue" = queue.Queue()
        self.abort = threading.Event()
        self._state = _WorkerState()  # shared; SubstrateMemo is thread-safe
        self._queues: "list[queue.Queue]" = [queue.Queue() for _ in range(workers)]
        #: Per-worker in-flight sentinel cells; respawn swaps in a fresh cell
        #: so an abandoned thread keeps writing to its detached one.
        self._inflight: "list[list[int]]" = [[-1] for _ in range(workers)]
        self._threads = [self._spawn(worker_id) for worker_id in range(workers)]
        self._failed: "set[int]" = set()
        self._abandoned: "list[tuple[threading.Thread, queue.Queue]]" = []

    def _spawn(self, worker_id: int) -> threading.Thread:
        holder = self._inflight[worker_id]
        thread = threading.Thread(
            target=_run_batches, name=f"sweep-worker-{worker_id}",
            args=(worker_id, iter(self._queues[worker_id].get, None),
                  self.events.put, self.abort, self._state),
            kwargs={"inflight": lambda index: holder.__setitem__(0, index)},
            daemon=True)
        thread.start()
        return thread

    def inflight(self, worker_id: int) -> int:
        """Plan index the worker is executing right now (-1 when idle)."""
        return self._inflight[worker_id][0]

    def submit(self, assignments: "list[list[CellBatch]]") -> None:
        now = time.perf_counter()
        for worker_id, group in enumerate(assignments):
            for batch in group:
                self._queues[worker_id].put((batch.batch_id, now, batch.tasks))

    def dispatch(self, worker_id: int, batch: CellBatch) -> None:
        self._queues[worker_id].put(
            (batch.batch_id, time.perf_counter(), batch.tasks))

    def get_event(self, timeout: float):
        return self.events.get(timeout=timeout)

    def check_workers(self) -> "list[int]":
        """Worker ids needing recovery (killed/abandoned, not yet respawned)."""
        return sorted(self._failed)

    def kill(self, worker_id: int) -> None:
        """Mark a (presumably hung) worker for abandonment."""
        self._failed.add(worker_id)

    def respawn(self, worker_id: int) -> None:
        self._failed.discard(worker_id)
        self._abandoned.append((self._threads[worker_id], self._queues[worker_id]))
        self._queues[worker_id] = queue.Queue()
        self._inflight[worker_id] = [-1]  # detach the abandoned thread's cell
        self._threads[worker_id] = self._spawn(worker_id)

    def alive(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def terminate(self) -> None:
        self.abort.set()

    def shutdown(self) -> None:
        self.abort.set()
        for task_queue in self._queues:
            task_queue.put(None)
        for _, task_queue in self._abandoned:
            task_queue.put(None)  # lets an eventually-unblocked thread exit
        for thread in self._threads:
            thread.join(timeout=30)
        # abandoned threads are never joined: they may be hung forever


class ProcessWorkerPool:
    """Long-lived forked worker processes with per-worker task queues.

    Workers inherit the parent's code/state via ``fork`` where available and
    keep engines, attached shared-memory frames, TPC-H data and the memo warm
    across every batch they are assigned.  The parent never sends a frame
    through a queue — only :class:`~repro.frame.sharing.FrameManifest`
    handles travel.

    Crash recovery: a worker that dies (crash, OOM kill, injected SIGKILL,
    or :meth:`kill` on a cell timeout) is reported by :meth:`check_workers`
    via its exit code; :meth:`respawn` forks a replacement under the same id
    with a *fresh* task queue (the dead reader's queue may hold undrainable
    state) — the replacement rebuilds its warm caches (engines, attached
    frames, memo) lazily on the first cell it executes.
    """

    def __init__(self, workers: int):
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        self.workers = workers
        self.abort = self._ctx.Event()
        self._results = self._ctx.Queue()
        self._tasks = [self._ctx.Queue() for _ in range(workers)]
        #: Shared-memory in-flight sentinels: a SIGKILLed worker's queued
        #: events can be lost with its queue feeder thread, but the Value it
        #: wrote before executing survives — crash recovery reads the victim
        #: cell from here.
        self._inflight = [self._ctx.Value("i", -1) for _ in range(workers)]
        self._retired: "list[Any]" = []  # queues of respawned workers
        self._procs = [self._spawn(worker_id) for worker_id in range(workers)]

    def _spawn(self, worker_id: int):
        proc = self._ctx.Process(
            target=self._worker_main, name=f"sweep-worker-{worker_id}",
            args=(worker_id, self._tasks[worker_id], self._results, self.abort,
                  self._inflight[worker_id]),
            daemon=True)
        proc.start()
        return proc

    @staticmethod
    def _worker_main(worker_id, task_queue, result_queue, abort, inflight) -> None:
        from ..testing.faults import fault_point, mark_worker_process

        mark_worker_process()  # enables SIGKILL injection in this process
        fault_point("worker_start", cell_id=None, worker_id=worker_id)
        state = _WorkerState()

        def mark(index: int) -> None:
            with inflight.get_lock():
                inflight.value = index

        batches = iter(task_queue.get, None)  # None is the shutdown sentinel
        _run_batches(worker_id, batches, result_queue.put, abort, state,
                     inflight=mark)

    def inflight(self, worker_id: int) -> int:
        """Plan index the worker is executing right now (-1 when idle)."""
        return self._inflight[worker_id].value

    def submit(self, assignments: "list[list[CellBatch]]") -> None:
        for worker_id, group in enumerate(assignments):
            for batch in group:
                dispatch_ts = time.perf_counter()
                self._tasks[worker_id].put(
                    (batch.batch_id, dispatch_ts, batch.tasks))

    def dispatch(self, worker_id: int, batch: CellBatch) -> None:
        self._tasks[worker_id].put(
            (batch.batch_id, time.perf_counter(), batch.tasks))

    def get_event(self, timeout: float):
        return self._results.get(timeout=timeout)

    def check_workers(self) -> "list[int]":
        """Worker ids whose process died without a clean sentinel exit."""
        return [worker_id for worker_id, proc in enumerate(self._procs)
                if not proc.is_alive() and proc.exitcode not in (None, 0)]

    def kill(self, worker_id: int) -> None:
        """SIGKILL a worker (cell-timeout enforcement); recover via respawn."""
        proc = self._procs[worker_id]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5)

    def respawn(self, worker_id: int) -> None:
        old = self._procs[worker_id]
        old.join(timeout=1)
        retired = self._tasks[worker_id]
        # The dead worker's queue may still hold undrained batches; with no
        # reader left, its feeder thread would block on the full pipe and the
        # atexit finalizer would join it forever — drop the data instead.
        retired.cancel_join_thread()
        self._retired.append(retired)
        self._tasks[worker_id] = self._ctx.Queue()
        self._inflight[worker_id] = self._ctx.Value("i", -1)
        self._procs[worker_id] = self._spawn(worker_id)

    def alive(self) -> bool:
        return any(proc.is_alive() for proc in self._procs)

    def terminate(self) -> None:
        self.abort.set()
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()

    def shutdown(self) -> None:
        self.abort.set()
        for task_queue in self._tasks:
            try:
                task_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - closed queue
                pass
        for proc in self._procs:
            proc.join(timeout=10)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=5)
        for task_queue in self._tasks + self._retired:
            task_queue.close()
        self._results.close()
