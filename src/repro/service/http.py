"""A tiny HTTP/1.1 layer over :mod:`asyncio` streams — no dependencies.

The benchmark service speaks plain HTTP/JSON so any client (curl, a browser,
the bundled :mod:`repro.service.client`) can talk to it, but it deliberately
implements only the slice of the protocol it needs:

* requests are parsed into a :class:`Request` (method, path, query string,
  headers, body) with hard caps on header count and body size;
* handlers return a :class:`Response` (a JSON document) or an
  :class:`NDJSONStream` (an async iterator of JSON-able dicts written as one
  line each — the ``/jobs/<id>/stream`` incremental-results format);
* connections are persistent HTTP/1.1: JSON responses carry a
  ``Content-Length`` and the connection is reused for the next request until
  the client sends ``Connection: close``, ``IDLE_TIMEOUT`` seconds pass
  between requests, or ``MAX_REQUESTS`` have been served.  Streams carry no
  ``Content-Length`` and are terminated by closing the connection, which is
  what lets clients read incremental results line-by-line until EOF.

Handler errors surface as JSON error documents: raise :class:`HTTPError` for
a deliberate status (400/404/429/...), anything else becomes a 500.  A parse
error closes the connection after the error document (framing is lost); a
handler error keeps it open.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Awaitable, Callable, Mapping
from urllib.parse import parse_qsl, urlsplit

__all__ = ["Request", "Response", "NDJSONStream", "HTTPError", "serve_connection"]

#: Upper bounds keeping a single malformed client from exhausting the server.
MAX_HEADER_LINES = 100
MAX_LINE_BYTES = 16 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Keep-alive bounds: an idle persistent connection is closed after
#: ``IDLE_TIMEOUT`` seconds without a new request, and any connection is
#: retired after ``MAX_REQUESTS`` requests so misbehaving clients cannot pin
#: a server task forever.
IDLE_TIMEOUT = 30.0
MAX_REQUESTS = 100

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class HTTPError(Exception):
    """A deliberate HTTP failure raised by handlers (becomes a JSON error).

    ``headers`` adds response headers (e.g. ``Retry-After`` on a 429);
    any other keyword lands in the JSON error document.
    """

    def __init__(self, status: int, message: str,
                 headers: "Mapping[str, str] | None" = None, **extra: Any):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        self.extra = extra


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict[str, Any]:
        """The body as a JSON object (empty body → ``{}``)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as err:
            raise HTTPError(400, f"request body is not valid JSON: {err}") from None
        if not isinstance(payload, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return payload


@dataclass
class Response:
    """A JSON response document."""

    status: int = 200
    payload: "Mapping[str, Any] | None" = None
    headers: dict[str, str] = field(default_factory=dict)


@dataclass
class NDJSONStream:
    """A streamed response: one JSON document per line, closed at the end."""

    lines: AsyncIterator[Mapping[str, Any]]
    status: int = 200


Handler = Callable[[Request], "Awaitable[Response | NDJSONStream]"]


async def _read_request(reader: asyncio.StreamReader) -> "Request | None":
    """Parse one request off the wire (``None`` when the peer closed first)."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].upper().startswith("HTTP/"):
        raise HTTPError(400, f"malformed request line: {request_line!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        line = await reader.readline()
        if len(line) > MAX_LINE_BYTES:
            raise HTTPError(400, "header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HTTPError(400, "too many header lines")

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HTTPError(400, f"bad Content-Length: {length!r}") from None
        if n > MAX_BODY_BYTES:
            raise HTTPError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(n) if n else b""
    return Request(method=method, path=split.path or "/", query=query,
                   headers=headers, body=body)


def _encode_head(status: int, headers: "Mapping[str, str]") -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def _write_json(writer: asyncio.StreamWriter, response: Response,
                      *, close: bool) -> None:
    body = json.dumps(dict(response.payload or {}), indent=2).encode("utf-8") + b"\n"
    headers = {"Content-Type": "application/json",
               "Content-Length": str(len(body)),
               "Connection": "close" if close else "keep-alive",
               **response.headers}
    writer.write(_encode_head(response.status, headers) + body)
    await writer.drain()


async def _write_stream(writer: asyncio.StreamWriter, stream: NDJSONStream) -> None:
    headers = {"Content-Type": "application/x-ndjson", "Connection": "close"}
    writer.write(_encode_head(stream.status, headers))
    await writer.drain()
    async for line in stream.lines:
        writer.write(json.dumps(dict(line)).encode("utf-8") + b"\n")
        await writer.drain()


def _error_response(err: HTTPError) -> Response:
    payload = {"error": {"status": err.status, "message": err.message, **err.extra}}
    return Response(status=err.status, payload=payload, headers=dict(err.headers))


async def serve_connection(handler: Handler, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter, *,
                           idle_timeout: float = IDLE_TIMEOUT,
                           max_requests: int = MAX_REQUESTS) -> None:
    """Serve requests on one persistent connection until it retires.

    The connection closes when the client asks (``Connection: close``),
    goes quiet for ``idle_timeout`` seconds, has used up ``max_requests``
    requests, a request fails to parse (framing is lost), or the response
    is an NDJSON stream (terminated by the close).
    """
    served = 0
    try:
        while served < max_requests:
            try:
                request = await asyncio.wait_for(_read_request(reader),
                                                 timeout=idle_timeout)
            except (TimeoutError, asyncio.TimeoutError):
                return  # idle keep-alive connection timed out
            except asyncio.CancelledError:
                return  # server shutting down with the connection parked idle
            except HTTPError as err:
                # A parse failure loses the request framing: answer it, then
                # drop the connection rather than misread what follows.
                try:
                    await _write_json(writer, _error_response(err), close=True)
                except (ConnectionError, asyncio.CancelledError):
                    pass
                return
            except (ConnectionError, asyncio.IncompleteReadError):
                return  # the peer went away mid-request; nothing to answer
            if request is None:
                return
            served += 1
            close = (served >= max_requests
                     or request.headers.get("connection", "").lower() == "close")
            try:
                response = await handler(request)
            except HTTPError as err:
                response = _error_response(err)
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            except Exception as err:  # noqa: BLE001 — a handler bug must not kill the server
                response = _error_response(HTTPError(500, f"{type(err).__name__}: {err}"))
            try:
                if isinstance(response, NDJSONStream):
                    await _write_stream(writer, response)
                    return  # streams are terminated by the close
                await _write_json(writer, response, close=close)
            except (ConnectionError, asyncio.CancelledError):
                return  # the peer hung up mid-response (or the server is stopping)
            if close:
                return
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
