"""The benchmark service: one warm :class:`~repro.session.Session` behind HTTP.

``BenchmarkService`` is the paper's decision aid turned into a long-running
product: a single warm session (datasets generated, engines built) serves
``run``/``advise``/``explain`` requests from many concurrent clients over the
shared sweep cache.  The architecture is sync-core / async-edge: all engine
and session work stays synchronous and runs in worker threads via
``asyncio.to_thread``; the event loop only parses HTTP, schedules jobs and
streams results.

Endpoints
---------

* ``POST /run``     — sweep a matrix slice (``mode``/``engines``/``datasets``/
  ``pipelines``/``lazy``/``streaming`` as in :meth:`Session.run`).  Returns
  ``202`` with a job id by default, or the full result with ``"wait": true``.
* ``POST /advise``  — rank engine × strategy candidates (cost model only,
  nothing executed).  Waits by default.
* ``POST /explain`` — annotated pre/post-optimization logical plans for a
  dataset's pipelines.  Waits by default.
* ``GET /jobs/<id>``        — job summary (and result once done).
* ``GET /jobs/<id>/stream`` — NDJSON event stream: one line per completed
  cell as the sweep progresses, terminated by an ``end`` summary line.
* ``GET /healthz`` / ``GET /stats`` — liveness and counters (jobs, tenants,
  cache, single-flight).

Every request names a tenant (default ``"public"``).  Tenants get their own
FIFO queue, fair round-robin dispatch and a memory budget enforced through
the :class:`~repro.simulate.memory.MemoryModel` *before* admission: a job
whose estimated peak would push its tenant over budget is rejected with HTTP
429 and never touches the worker pool.  Identical concurrent cells are
deduplicated by the :class:`~repro.service.singleflight.SingleFlight` layer
keyed on cell content hashes, so a stampede of identical requests executes
each unique cell exactly once and shares the result through the
:class:`~repro.sweep.cache.SweepCache`.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from typing import Any, Mapping, Sequence

from .. import __version__
from ..config import ExperimentConfig
from ..engines.base import EngineUnavailableError
from ..session import _MODE_ALIASES, Session
from ..simulate.memory import MemoryModel, SimulatedOOMError
from ..sweep import PlannedCell, resolve_cache
from .http import HTTPError, NDJSONStream, Request, Response, serve_connection
from .jobs import Job, JobStore
from .scheduler import JobScheduler, MemoryBudgetExceeded, RateLimitExceeded
from .singleflight import SingleFlight

__all__ = ["BenchmarkService", "ServiceHandle", "launch_in_thread", "DEFAULT_PORT"]

DEFAULT_PORT = 8642
_GIB = 1024 ** 3

#: Fraction of the dataset the heaviest pipeline operator is assumed to touch
#: when estimating a run job's peak for admission (mirrors
#: :meth:`MemoryModel.fits_pipeline`'s default heavy-op fraction).
_HEAVY_OP_FRACTION = 0.3


def _parse_tenants(tenants: "Sequence[str] | Mapping[str, float | None] | None"
                   ) -> "dict[str, tuple[float | None, float | None]]":
    """Normalize the tenants argument to ``{name: (budget_gb, rate_rps)}``.

    Accepts a mapping of ``{name: budget_gb}``, or an iterable of names
    where each name may carry an inline budget and rate as ``name=GiB:RPS``
    (the ``--tenants a=2:10,b=2,c=:5,d`` CLI form — either part may be
    empty, meaning the default budget / no rate limit).
    """
    if tenants is None:
        return {}
    if isinstance(tenants, Mapping):
        return {name: (budget, None) for name, budget in tenants.items()}
    out: "dict[str, tuple[float | None, float | None]]" = {}
    for item in tenants:
        name, _, spec = str(item).partition("=")
        budget_text, _, rate_text = spec.partition(":")
        try:
            budget = float(budget_text) if budget_text else None
            rate = float(rate_text) if rate_text else None
        except ValueError:
            raise ValueError(f"bad tenant spec {item!r}; expected "
                             f"name, name=GB or name=GB:RPS") from None
        out[name.strip()] = (budget, rate)
    return out


class BenchmarkService:
    """A multi-tenant benchmark-as-a-service server over one warm session."""

    def __init__(self, config: "ExperimentConfig | None" = None, *,
                 session: "Session | None" = None,
                 cache: "bool | str | object | None" = True,
                 workers: int = 4,
                 tenants: "Sequence[str] | Mapping[str, float | None] | None" = None,
                 memory_budget_gb: "float | None" = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.session = session if session is not None else Session(
            config or ExperimentConfig(scale=0.05, runs=1))
        self.cache = resolve_cache(cache)
        self.flight = SingleFlight()
        self.jobs = JobStore()
        default_budget = int(memory_budget_gb * _GIB) if memory_budget_gb else None
        self.scheduler = JobScheduler(self._execute_job, workers=workers,
                                      default_budget_bytes=default_budget)
        for name, (budget_gb, rate) in _parse_tenants(tenants).items():
            budget = int(budget_gb * _GIB) if budget_gb is not None else default_budget
            self.scheduler.tenant(name, budget_bytes=budget, rate_per_second=rate)
        self.host = host
        self.port = port
        self.requests = 0
        #: Cells whose thunk actually ran (the "exactly once" counter: cache
        #: hits and single-flight followers never increment it).
        self.cell_executions = 0
        self._exec_lock = threading.Lock()
        self._server: "asyncio.base_events.Server | None" = None
        self.started_at: "float | None" = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, *, warm: bool = True) -> "BenchmarkService":
        """Warm the session, start the scheduler and bind the listener."""
        if warm:
            await asyncio.to_thread(self.session.warm)
        await self.scheduler.start()
        self._server = await asyncio.start_server(self._on_connection,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        await serve_connection(self._dispatch, reader, writer)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: Request) -> "Response | NDJSONStream":
        self.requests += 1
        parts = [p for p in request.path.split("/") if p]
        if request.path == "/healthz":
            self._require(request, "GET")
            return Response(payload={"ok": True, "version": __version__,
                                     "uptime_seconds": self._uptime()})
        if request.path == "/stats":
            self._require(request, "GET")
            return Response(payload=self.stats())
        if parts and parts[0] == "jobs":
            if len(parts) == 2 and request.method == "DELETE":
                return self._cancel_job(parts[1])
            self._require(request, "GET")
            if len(parts) == 2:
                return self._job_response(parts[1], request)
            if len(parts) == 3 and parts[2] == "stream":
                return NDJSONStream(self._job(parts[1]).follow())
            raise HTTPError(404, f"no such resource: {request.path}")
        if len(parts) == 1 and parts[0] in ("run", "advise", "explain"):
            self._require(request, "POST")
            return await self._submit(parts[0], request)
        raise HTTPError(404, f"no such resource: {request.path}")

    @staticmethod
    def _require(request: Request, method: str) -> None:
        if request.method != method:
            raise HTTPError(405, f"{request.path} only accepts {method}")

    def _job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise HTTPError(404, f"unknown job {job_id!r}")
        return job

    def _cancel_job(self, job_id: str) -> Response:
        """``DELETE /jobs/<id>``: cancel a queued or running job.

        Idempotent — deleting an already-finished (or already-cancelled) job
        returns its current summary with ``cancelled: false`` rather than an
        error; only an unknown id is a 404.
        """
        job = self._job(job_id)
        changed = self.scheduler.cancel(job)
        return Response(payload={"job": job.to_dict(), "cancelled": changed})

    def _job_response(self, job_id: str, request: Request) -> Response:
        job = self._job(job_id)
        payload: dict[str, Any] = {"job": job.to_dict()}
        if job.state == "done" and request.query.get("result", "1") != "0":
            payload["result"] = job.result
        return Response(payload=payload)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    async def _submit(self, kind: str, request: Request) -> Response:
        body = request.json()
        tenant = str(body.get("tenant") or "public")
        wait = bool(body.get("wait", kind != "run"))
        params = {k: v for k, v in body.items() if k not in ("tenant", "wait")}
        self._validate(kind, params)
        job = self.jobs.create(tenant=tenant, kind=kind, params=params)
        if kind == "run":
            job.estimated_bytes = await asyncio.to_thread(
                self._estimate_run_bytes, params)
        try:
            self.scheduler.submit(job)
        except RateLimitExceeded as err:
            retry_after = max(1, math.ceil(err.retry_after))
            raise HTTPError(429, str(err),
                            headers={"Retry-After": str(retry_after)},
                            job=job.to_dict(),
                            retry_after=err.retry_after) from None
        except MemoryBudgetExceeded as err:
            raise HTTPError(429, str(err), job=job.to_dict()) from None
        if not wait:
            return Response(status=202, payload={"job": job.to_dict()})
        await job.wait()
        if job.state == "failed":
            raise HTTPError(500, job.error, job=job.to_dict())
        return Response(payload={"job": job.to_dict(), "result": job.result})

    @staticmethod
    def _validate(kind: str, params: "Mapping[str, Any]") -> None:
        if kind == "run":
            mode = params.get("mode", "full")
            if mode not in _MODE_ALIASES or _MODE_ALIASES[mode] == "tpch":
                raise HTTPError(400, f"unknown run mode {mode!r}; expected one of "
                                     f"{sorted(m for m in _MODE_ALIASES if m != 'tpch')}")
        if kind == "explain" and not params.get("dataset"):
            raise HTTPError(400, "explain needs a 'dataset' (and optional 'pipeline')")

    def _estimate_run_bytes(self, params: "Mapping[str, Any]") -> int:
        """Memory-model peak of the worst cell of a run request.

        Cells execute sequentially within one job, so the job's footprint is
        the maximum — not the sum — over its (dataset, engine) combinations.
        Engines unavailable on this machine contribute nothing; predicted
        OOMs still count their required bytes (an admitted job may legally
        *measure* an OOM, but it must fit the tenant's budget to try).
        """
        session = self.session
        model = MemoryModel(session.config.machine)
        datasets = params.get("datasets") or list(session.config.datasets)
        engines = params.get("engines") or list(session.engines)
        peak = 0
        for dataset in datasets:
            sim = session.context_for(dataset)
            heavy_bytes = int(sim.dataset_bytes * _HEAVY_OP_FRACTION)
            for engine_name in engines:
                try:
                    profile = session._engine(engine_name).profile
                except EngineUnavailableError:
                    continue
                try:
                    outcome = model.assess(profile, "pipeline", heavy_bytes,
                                           sim.dataset_bytes, pipeline_scope=True)
                    required = outcome.peak_bytes + outcome.spilled_bytes
                except SimulatedOOMError as err:
                    required = err.required_bytes
                peak = max(peak, required)
        return peak

    # ------------------------------------------------------------------ #
    # job execution (runs on the loop; blocking work goes to threads)
    # ------------------------------------------------------------------ #
    async def _execute_job(self, job: Job) -> Any:
        if job.kind == "advise":
            return await asyncio.to_thread(self._advise, job.params)
        if job.kind == "explain":
            return await asyncio.to_thread(self._explain, job.params)
        return await self._run_sweep(job)

    async def _run_sweep(self, job: Job) -> dict[str, Any]:
        plan = await asyncio.to_thread(self._plan, job.params)
        job.total_cells = len(plan)
        job.add_event({"event": "planned", "cells": len(plan)})
        measurements: list[dict[str, Any]] = []
        for index, planned in enumerate(plan):
            records, source = await self._execute_cell(planned)
            job.count_cell(source)
            measurements.extend(records)
            job.add_event({"event": "cell", "index": index,
                           "cell": planned.cell.label(),
                           "cell_id": planned.cell.cell_id, "source": source,
                           "measurements": records})
        return {"measurements": measurements,
                "cells": {"total": job.total_cells, "executed": job.executed,
                          "cached": job.cached, "shared": job.shared}}

    def _plan(self, params: "Mapping[str, Any]") -> "list[PlannedCell]":
        kwargs: dict[str, Any] = {}
        for key in ("engines", "datasets", "pipelines", "formats", "stages"):
            if params.get(key) is not None:
                kwargs[key] = list(params[key])
        for key in ("lazy", "streaming"):
            if key in params:
                kwargs[key] = params[key]
        return self.session.plan(params.get("mode", "full"), **kwargs)

    async def _execute_cell(self, planned: PlannedCell
                            ) -> "tuple[list[dict[str, Any]], str]":
        """One cell's records and how they were obtained (executed/cache/shared)."""
        if self.cache is not None:
            hit = await asyncio.to_thread(self.cache.load, planned.cell)
            if hit is not None:
                return [m.to_dict() for m in hit], "cache"
        result, shared = await self.flight.run(
            planned.cell.cell_id, lambda: self._execute_and_store(planned))
        return [m.to_dict() for m in result], "shared" if shared else "executed"

    def _execute_and_store(self, planned: PlannedCell):
        # Re-check the cache inside the flight: a caller that missed the cache
        # just before a previous flight stored the cell must not re-execute.
        if self.cache is not None:
            hit = self.cache.load(planned.cell)
            if hit is not None:
                return hit
        measurements = planned.execute()
        with self._exec_lock:
            self.cell_executions += 1
        if self.cache is not None:
            self.cache.store(planned.cell, measurements)
        return measurements

    # ------------------------------------------------------------------ #
    def _advise(self, params: "Mapping[str, Any]") -> dict[str, Any]:
        if params.get("tpch"):
            reports = self.session.advise_tpch(engines=params.get("engines"),
                                               queries=params.get("queries"))
        else:
            reports = self.session.advise(engines=params.get("engines"),
                                          datasets=params.get("datasets"),
                                          pipelines=params.get("pipelines"))
        return {"reports": [report.to_dict() for report in reports]}

    def _explain(self, params: "Mapping[str, Any]") -> dict[str, Any]:
        from ..plan.advisor import pipeline_plan

        session = self.session
        dataset = str(params["dataset"])
        generated = session.dataset(dataset)
        sim = session.context_for(dataset)
        wanted = params.get("pipeline")
        pipelines = session._select_pipelines(
            dataset, [wanted] if wanted is not None else None)
        plans = []
        for pipeline in pipelines:
            lazy = pipeline_plan(generated.frame, pipeline)
            plans.append({
                "dataset": dataset, "pipeline": pipeline.name,
                "unoptimized": lazy.explain(stats=True, row_scale=sim.row_scale),
                "optimized": lazy.explain(optimized=True, stats=True,
                                          row_scale=sim.row_scale),
            })
        return {"plans": plans}

    # ------------------------------------------------------------------ #
    def _uptime(self) -> "float | None":
        return None if self.started_at is None else time.time() - self.started_at

    def stats(self) -> dict[str, Any]:
        config = self.session.config
        return {
            "ok": True,
            "version": __version__,
            "uptime_seconds": self._uptime(),
            "requests": self.requests,
            "cell_executions": self.cell_executions,
            "jobs": self.jobs.counts(),
            "scheduler": self.scheduler.stats(),
            "single_flight": self.flight.stats(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "session": {"scale": config.scale, "runs": config.runs,
                        "machine": config.machine.name,
                        "engines": list(config.engines),
                        "datasets": list(config.datasets)},
        }


# --------------------------------------------------------------------------- #
# embedding helper: run a service in a background thread (tests, CI, benches)
# --------------------------------------------------------------------------- #
class ServiceHandle:
    """A service running on its own event loop in a daemon thread."""

    def __init__(self, **kwargs: Any):
        self._kwargs = kwargs
        self.service: "BenchmarkService | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop: "asyncio.Event | None" = None
        self._ready = threading.Event()
        self._error: "BaseException | None" = None
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-service")

    def start(self, timeout: float = 60.0) -> "ServiceHandle":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("service did not come up in time")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error}") from self._error
        return self

    def _main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.service = await BenchmarkService(**self._kwargs).start()
        except BaseException as err:  # noqa: BLE001 — reported to the caller
            self._error = err
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.service.stop()

    @property
    def port(self) -> int:
        assert self.service is not None
        return self.service.port

    @property
    def client(self):
        from .client import ServiceClient

        assert self.service is not None
        return ServiceClient(host=self.service.host, port=self.service.port)

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def launch_in_thread(*, timeout: float = 60.0, **kwargs: Any) -> ServiceHandle:
    """Start a :class:`BenchmarkService` in a daemon thread and wait for it.

    Keyword arguments are forwarded to the service constructor.  Returns a
    :class:`ServiceHandle` exposing ``.service``, ``.port``, a ready-made
    ``.client`` and ``.stop()`` (also usable as a context manager).
    """
    return ServiceHandle(**kwargs).start(timeout)
