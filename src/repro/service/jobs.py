"""Job records of the benchmark service.

Every API request that does work — ``run``, ``advise``, ``explain`` — becomes
one :class:`Job`: a tenant-owned unit the scheduler queues, dispatches and
accounts.  Jobs expose their lifecycle twice:

* as a summary document (:meth:`Job.to_dict`) served by ``GET /jobs/<id>``;
* as an append-only event log (:meth:`Job.add_event` / :meth:`Job.follow`)
  streamed by ``GET /jobs/<id>/stream`` as NDJSON — one event per completed
  cell, so clients see incremental results while a sweep is still running.

All mutation happens on the service's event loop, so no locking is needed;
:meth:`Job.follow` uses the swap-an-Event pattern to wake any number of
concurrent stream readers without missing appends.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Any, AsyncIterator, Mapping

__all__ = ["Job", "JobStore", "JOB_STATES"]

#: Lifecycle: queued → running → done | failed | cancelled; rejected never
#: ran, cancelled jobs were withdrawn (``DELETE /jobs/<id>``) before or
#: during execution.
JOB_STATES = ("queued", "running", "done", "failed", "rejected", "cancelled")


class Job:
    """One unit of service work: a run sweep, an advise call or an explain."""

    def __init__(self, job_id: str, tenant: str, kind: str,
                 params: "Mapping[str, Any] | None" = None):
        self.id = job_id
        self.tenant = tenant
        self.kind = kind
        self.params = dict(params or {})
        self.state = "queued"
        self.created = time.time()
        self.started: "float | None" = None
        self.finished: "float | None" = None
        #: Peak bytes the memory model predicts for this job (admission unit).
        self.estimated_bytes = 0
        self.total_cells = 0
        #: Per-source cell counters (how each cell's result was obtained).
        self.executed = 0
        self.cached = 0
        self.shared = 0
        self.error = ""
        #: Set by the scheduler when a client cancels a *running* job, so the
        #: runner's CancelledError can be told apart from server shutdown.
        self.cancel_requested = False
        self.result: Any = None
        self.events: list[dict[str, Any]] = []
        self._done = asyncio.Event()
        self._change = asyncio.Event()

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        return self.state in ("done", "failed", "rejected", "cancelled")

    @property
    def wall_seconds(self) -> "float | None":
        if self.started is None:
            return None
        return (self.finished or time.time()) - self.started

    def mark_running(self) -> None:
        self.state = "running"
        self.started = time.time()
        self._notify()

    def count_cell(self, source: str) -> None:
        """Account one completed cell by its result source."""
        if source == "cache":
            self.cached += 1
        elif source == "shared":
            self.shared += 1
        else:
            self.executed += 1

    def add_event(self, event: "Mapping[str, Any]") -> None:
        self.events.append({"job": self.id, **event})
        self._notify()

    def finish(self, state: str, result: Any = None, error: str = "") -> None:
        self.state = state
        self.finished = time.time()
        self.result = result
        self.error = error
        self._notify()
        self._done.set()

    def _notify(self) -> None:
        # swap-and-set: every reader holding the old Event wakes exactly once
        previous, self._change = self._change, asyncio.Event()
        previous.set()

    # ------------------------------------------------------------------ #
    async def wait(self) -> "Job":
        await self._done.wait()
        return self

    async def follow(self, from_index: int = 0) -> AsyncIterator[dict[str, Any]]:
        """Yield events as they are appended, ending once the job is done.

        Replays history first, so following a finished job returns its full
        event log.  The final yielded line is an ``end`` event carrying the
        job summary.
        """
        index = from_index
        while True:
            change = self._change  # snapshot before draining, so no append is lost
            while index < len(self.events):
                yield self.events[index]
                index += 1
            if self.done:
                break
            await change.wait()
        yield {"job": self.id, "event": "end", "summary": self.to_dict()}

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "id": self.id, "tenant": self.tenant, "kind": self.kind,
            "state": self.state, "params": dict(self.params),
            "created": self.created, "started": self.started,
            "finished": self.finished, "wall_seconds": self.wall_seconds,
            "estimated_bytes": self.estimated_bytes,
            "cells": {"total": self.total_cells, "executed": self.executed,
                      "cached": self.cached, "shared": self.shared},
            "events": len(self.events),
        }
        if self.error:
            out["error"] = self.error
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Job({self.id!r}, tenant={self.tenant!r}, kind={self.kind!r}, state={self.state!r})"


class JobStore:
    """Ordered id → :class:`Job` registry with bounded retention.

    Finished jobs beyond ``keep_finished`` are evicted oldest-first, so a
    long-running server does not accumulate every job it ever served; live
    (queued/running) jobs are never evicted.
    """

    def __init__(self, keep_finished: int = 512):
        self.keep_finished = keep_finished
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._counter = 0
        self.created_total = 0

    def create(self, tenant: str, kind: str,
               params: "Mapping[str, Any] | None" = None) -> Job:
        self._counter += 1
        self.created_total += 1
        job = Job(f"job-{self._counter:06d}", tenant=tenant, kind=kind, params=params)
        self._jobs[job.id] = job
        self._evict()
        return job

    def get(self, job_id: str) -> "Job | None":
        return self._jobs.get(job_id)

    def _evict(self) -> None:
        finished = [job_id for job_id, job in self._jobs.items() if job.done]
        for job_id in finished[:max(0, len(finished) - self.keep_finished)]:
            del self._jobs[job_id]

    def counts(self) -> dict[str, int]:
        """Jobs currently retained, by state (plus the lifetime total)."""
        out = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            out[job.state] = out.get(job.state, 0) + 1
        out["total_created"] = self.created_total
        return out

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self):
        return iter(self._jobs.values())
