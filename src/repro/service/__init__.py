"""Benchmark-as-a-service: an async HTTP/JSON server over the shared sweep cache.

``repro.service`` turns the single-shot :class:`~repro.session.Session` into
the paper's product shape — a long-running decision aid serving "which
dataframe engine should I use for this pipeline?" to many concurrent clients:

* :class:`~repro.service.app.BenchmarkService` — the asyncio server
  (``POST /run``/``/advise``/``/explain``, job status and NDJSON result
  streaming, health and stats) over one warm session;
* :class:`~repro.service.scheduler.JobScheduler` — per-tenant FIFO queues,
  fair round-robin dispatch onto a bounded worker pool, memory-model
  admission control and token-bucket rate limits (over-budget or throttled
  tenants get 429 — the latter with ``Retry-After`` — others are
  unaffected);
* :class:`~repro.service.singleflight.SingleFlight` — cache-stampede
  protection keyed on cell content hashes: identical concurrent requests
  execute each unique cell exactly once and share the result through the
  persistent :class:`~repro.sweep.cache.SweepCache`;
* :class:`~repro.service.client.ServiceClient` — a thin stdlib HTTP client
  used by the tests, the CI smoke job and the service benchmark.

Start a server with ``python -m repro serve`` or embed one with
:func:`~repro.service.app.launch_in_thread`.
"""

from .app import DEFAULT_PORT, BenchmarkService, ServiceHandle, launch_in_thread
from .client import ServiceClient, ServiceError
from .jobs import Job, JobStore
from .scheduler import JobScheduler, MemoryBudgetExceeded, RateLimitExceeded, Tenant
from .singleflight import SingleFlight

__all__ = [
    "BenchmarkService",
    "ServiceHandle",
    "ServiceClient",
    "ServiceError",
    "Job",
    "JobStore",
    "JobScheduler",
    "MemoryBudgetExceeded",
    "RateLimitExceeded",
    "Tenant",
    "SingleFlight",
    "DEFAULT_PORT",
    "launch_in_thread",
]
