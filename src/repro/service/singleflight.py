"""Cache-stampede protection: at most one in-flight execution per cell.

When many clients submit the same sweep slice concurrently, every job plans
the same content-addressed cells.  The persistent
:class:`~repro.sweep.cache.SweepCache` only helps *after* the first execution
has been stored — without coordination, N concurrent jobs would execute each
cold cell N times before any of them gets to write it.  ``SingleFlight``
closes that gap with the classic single-flight contract keyed on
:attr:`~repro.sweep.cells.Cell.cell_id`:

* the first caller to reach a key becomes the **leader**: its thunk runs in a
  worker thread (:func:`asyncio.to_thread`);
* every caller that arrives while the leader is in flight becomes a
  **follower**: it awaits the leader's future and shares the result without
  executing anything;
* when the flight lands the key is released, so later callers (which will hit
  the now-warm cache first) start a fresh flight only if the cache misses.

Combined with a cache re-check inside the leader's thunk this guarantees
*exactly one* underlying execution per unique cell, no matter how many
clients race (the service's acceptance criterion).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, TypeVar

__all__ = ["SingleFlight"]

T = TypeVar("T")


class SingleFlight:
    """Deduplicates concurrent executions of identical keyed work.

    Single-event-loop object: all bookkeeping happens on the loop, only the
    thunk itself runs in a worker thread.
    """

    def __init__(self) -> None:
        self._inflight: "dict[str, asyncio.Future]" = {}
        #: Flights started (one execution each, unless the thunk short-circuits).
        self.leaders = 0
        #: Calls that piggybacked on another caller's in-flight execution.
        self.followers = 0

    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    async def run(self, key: str, thunk: Callable[[], T]) -> "tuple[T, bool]":
        """Run ``thunk`` in a worker thread, once per concurrently-seen key.

        Returns ``(result, shared)``: ``shared`` is ``True`` when this caller
        received another caller's result instead of executing.  A leader's
        exception propagates to every follower of that flight, but does not
        poison later flights for the same key.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.followers += 1
            # shield: a cancelled follower must not cancel the shared flight
            return await asyncio.shield(existing), True

        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.leaders += 1
        try:
            result = await asyncio.to_thread(thunk)
        except BaseException as err:
            future.set_exception(err)
            future.exception()  # consumed here; followers hold their own refs
            raise
        else:
            future.set_result(result)
            return result, False
        finally:
            self._inflight.pop(key, None)

    def stats(self) -> dict[str, Any]:
        return {"leaders": self.leaders, "followers": self.followers,
                "in_flight": self.in_flight}

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SingleFlight(leaders={self.leaders}, "
                f"followers={self.followers}, in_flight={self.in_flight})")
