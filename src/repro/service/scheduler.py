"""Multi-tenant job scheduling: per-tenant queues, fair dispatch, budgets.

The service must behave when "millions of users" share one machine, which
means three properties the plain ``asyncio`` task soup does not give you:

* **isolation** — every tenant owns a FIFO queue; one tenant flooding the
  server queues behind itself, not in front of everyone else;
* **fairness** — a single dispatcher drains the queues round-robin onto a
  bounded worker pool, so K tenants with pending jobs each get ~1/K of the
  worker slots regardless of arrival order;
* **admission control** — a ``run`` job is charged its memory-model estimate
  (:meth:`repro.service.app.BenchmarkService._estimate_run_bytes`) against
  its tenant's budget for as long as it is queued or running.  A job that
  would push its tenant over budget is rejected at submit time
  (:class:`MemoryBudgetExceeded` → HTTP 429) without touching anyone else's
  queue — the over-budget tenant degrades, the machine does not.  Tenants
  may additionally carry a token-bucket rate limit (``rate_per_second`` +
  ``burst``): submissions past the bucket are rejected with
  :class:`RateLimitExceeded` → HTTP 429 + ``Retry-After``.

Everything here runs on the event loop; the actual blocking work happens
inside the ``runner`` coroutine the service provides (which uses
``asyncio.to_thread`` around ``Session`` work).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from .jobs import Job

__all__ = ["Tenant", "JobScheduler", "MemoryBudgetExceeded", "RateLimitExceeded"]


class RateLimitExceeded(RuntimeError):
    """A tenant submitted faster than its token bucket refills."""

    def __init__(self, tenant: str, rate_per_second: float, retry_after: float):
        self.tenant = tenant
        self.rate_per_second = rate_per_second
        self.retry_after = retry_after
        super().__init__(
            f"tenant {tenant!r} over rate limit ({rate_per_second:g} "
            f"requests/s); retry in {retry_after:.2f}s")


class MemoryBudgetExceeded(RuntimeError):
    """A job's estimated memory would push its tenant over budget."""

    def __init__(self, tenant: str, requested_bytes: int, committed_bytes: int,
                 budget_bytes: int):
        self.tenant = tenant
        self.requested_bytes = requested_bytes
        self.committed_bytes = committed_bytes
        self.budget_bytes = budget_bytes
        gib = 1024 ** 3
        super().__init__(
            f"tenant {tenant!r} over memory budget: job needs "
            f"{requested_bytes / gib:.3f} GiB with {committed_bytes / gib:.3f} GiB "
            f"already committed, budget is {budget_bytes / gib:.3f} GiB")


@dataclass
class Tenant:
    """Per-tenant queue and accounting."""

    name: str
    #: ``None`` = unlimited.
    budget_bytes: "int | None" = None
    #: Sum of the estimates of this tenant's queued + running jobs.
    committed_bytes: int = 0
    queue: "deque[Job]" = field(default_factory=deque)
    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    #: Token-bucket rate limit; ``None`` = unlimited submissions.
    rate_per_second: "float | None" = None
    #: Bucket capacity (defaults to ``max(1, rate_per_second)`` when unset).
    burst: "float | None" = None
    tokens: float = 0.0
    refilled_at: float = 0.0
    throttled: int = 0

    def take_token(self, now: "float | None" = None) -> float:
        """Consume one token; returns 0.0, or the seconds until one refills.

        A return greater than zero means the submission must be rejected and
        retried after that many seconds (the token was *not* consumed).
        """
        if self.rate_per_second is None or self.rate_per_second <= 0:
            return 0.0
        now = time.monotonic() if now is None else now
        capacity = self.burst if self.burst is not None else max(1.0, self.rate_per_second)
        if self.refilled_at == 0.0:
            self.tokens = capacity  # first submission: a full bucket
        else:
            elapsed = max(0.0, now - self.refilled_at)
            self.tokens = min(capacity, self.tokens + elapsed * self.rate_per_second)
        self.refilled_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate_per_second

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "budget_bytes": self.budget_bytes,
                "committed_bytes": self.committed_bytes,
                "queued": len(self.queue), "submitted": self.submitted,
                "rejected": self.rejected, "completed": self.completed,
                "rate_per_second": self.rate_per_second,
                "throttled": self.throttled}


class JobScheduler:
    """Fair round-robin dispatch of tenant jobs onto a bounded worker pool."""

    def __init__(self, runner: Callable[[Job], Awaitable[Any]], *,
                 workers: int = 4, default_budget_bytes: "int | None" = None):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self._runner = runner
        self.workers = workers
        self.default_budget_bytes = default_budget_bytes
        self.tenants: dict[str, Tenant] = {}
        self._order: list[str] = []
        self._next = 0
        self._queued = asyncio.Event()
        self._slots = asyncio.Semaphore(workers)
        self._dispatcher: "asyncio.Task | None" = None
        self._running: "set[asyncio.Task]" = set()
        self._job_tasks: "dict[str, asyncio.Task]" = {}
        self.dispatched = 0
        self.cancelled = 0

    # ------------------------------------------------------------------ #
    def tenant(self, name: str, budget_bytes: "int | None | object" = ...,
               rate_per_second: "float | None | object" = ...) -> Tenant:
        """Get or register a tenant (new tenants get the default budget)."""
        state = self.tenants.get(name)
        if state is None:
            state = Tenant(name=name, budget_bytes=self.default_budget_bytes)
            self.tenants[name] = state
            self._order.append(name)
        if budget_bytes is not ...:
            state.budget_bytes = budget_bytes  # type: ignore[assignment]
        if rate_per_second is not ...:
            state.rate_per_second = rate_per_second  # type: ignore[assignment]
        return state

    def submit(self, job: Job) -> Job:
        """Queue a job, enforcing the tenant's rate limit and memory budget.

        Raises :class:`RateLimitExceeded` when the tenant's token bucket is
        empty, or :class:`MemoryBudgetExceeded` when the tenant's committed
        estimate plus this job's would exceed the tenant's budget (in both
        cases the job is marked rejected).  Other tenants are unaffected
        either way.
        """
        tenant = self.tenant(job.tenant)
        tenant.submitted += 1
        retry_after = tenant.take_token()
        if retry_after > 0:
            tenant.rejected += 1
            tenant.throttled += 1
            error = RateLimitExceeded(tenant.name, tenant.rate_per_second or 0.0,
                                      retry_after)
            job.finish("rejected", error=str(error))
            raise error
        if (tenant.budget_bytes is not None
                and tenant.committed_bytes + job.estimated_bytes > tenant.budget_bytes):
            tenant.rejected += 1
            error = MemoryBudgetExceeded(tenant.name, job.estimated_bytes,
                                         tenant.committed_bytes, tenant.budget_bytes)
            job.finish("rejected", error=str(error))
            raise error
        tenant.committed_bytes += job.estimated_bytes
        tenant.queue.append(job)
        self._queued.set()
        return job

    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(self._dispatch(), name="job-dispatcher")

    async def stop(self) -> None:
        """Cancel the dispatcher and any in-flight jobs."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for task in list(self._running):
            task.cancel()
        if self._running:
            await asyncio.gather(*self._running, return_exceptions=True)

    async def _dispatch(self) -> None:
        while True:
            await self._slots.acquire()
            job = self._pick()
            while job is None:
                self._queued.clear()
                if any(t.queue for t in self.tenants.values()):
                    self._queued.set()  # raced with a submit between pick and clear
                await self._queued.wait()
                job = self._pick()
            self.dispatched += 1
            task = asyncio.create_task(self._run(job), name=f"job-{job.id}")
            self._running.add(task)
            self._job_tasks[job.id] = task
            task.add_done_callback(self._running.discard)
            task.add_done_callback(
                lambda _task, job_id=job.id: self._job_tasks.pop(job_id, None))

    def _pick(self) -> "Job | None":
        """Next job, round-robin over tenants with non-empty queues."""
        count = len(self._order)
        for offset in range(count):
            name = self._order[(self._next + offset) % count]
            queue = self.tenants[name].queue
            if queue:
                self._next = (self._next + offset + 1) % count
                return queue.popleft()
        return None

    def cancel(self, job: Job) -> bool:
        """Cancel a job: dequeue it if queued, interrupt it if running.

        Idempotent — returns ``True`` when this call changed anything
        (the job was dequeued, or a cancellation was delivered to its
        running task), ``False`` when the job had already finished.  A
        queued job is removed from its tenant's queue and its memory
        estimate released immediately; a running job has
        :attr:`Job.cancel_requested` set so :meth:`_run` records
        ``cancelled`` rather than a shutdown failure.
        """
        if job.done:
            return False
        tenant = self.tenants.get(job.tenant)
        if job.state == "queued" and tenant is not None and job in tenant.queue:
            tenant.queue.remove(job)
            tenant.committed_bytes -= job.estimated_bytes
            tenant.completed += 1
            self.cancelled += 1
            job.finish("cancelled", error="cancelled by client")
            return True
        task = self._job_tasks.get(job.id)
        if task is not None and not task.done():
            job.cancel_requested = True
            self.cancelled += 1
            task.cancel()
            return True
        return False

    async def _run(self, job: Job) -> None:
        try:
            job.mark_running()
            result = await self._runner(job)
            job.finish("done", result=result)
        except asyncio.CancelledError:
            if job.cancel_requested:
                job.finish("cancelled", error="cancelled by client")
            else:
                job.finish("failed", error="cancelled: server shutting down")
                raise
        except Exception as err:  # noqa: BLE001 — one bad job must not kill the pool
            job.finish("failed", error=f"{type(err).__name__}: {err}")
        finally:
            tenant = self.tenants[job.tenant]
            tenant.committed_bytes -= job.estimated_bytes
            tenant.completed += 1
            self._slots.release()

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "running": len(self._running),
            "queued": sum(len(t.queue) for t in self.tenants.values()),
            "dispatched": self.dispatched,
            "cancelled": self.cancelled,
            "tenants": {name: t.to_dict() for name, t in self.tenants.items()},
        }
