"""Multi-tenant job scheduling: per-tenant queues, fair dispatch, budgets.

The service must behave when "millions of users" share one machine, which
means three properties the plain ``asyncio`` task soup does not give you:

* **isolation** — every tenant owns a FIFO queue; one tenant flooding the
  server queues behind itself, not in front of everyone else;
* **fairness** — a single dispatcher drains the queues round-robin onto a
  bounded worker pool, so K tenants with pending jobs each get ~1/K of the
  worker slots regardless of arrival order;
* **admission control** — a ``run`` job is charged its memory-model estimate
  (:meth:`repro.service.app.BenchmarkService._estimate_run_bytes`) against
  its tenant's budget for as long as it is queued or running.  A job that
  would push its tenant over budget is rejected at submit time
  (:class:`MemoryBudgetExceeded` → HTTP 429) without touching anyone else's
  queue — the over-budget tenant degrades, the machine does not.

Everything here runs on the event loop; the actual blocking work happens
inside the ``runner`` coroutine the service provides (which uses
``asyncio.to_thread`` around ``Session`` work).
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from .jobs import Job

__all__ = ["Tenant", "JobScheduler", "MemoryBudgetExceeded"]


class MemoryBudgetExceeded(RuntimeError):
    """A job's estimated memory would push its tenant over budget."""

    def __init__(self, tenant: str, requested_bytes: int, committed_bytes: int,
                 budget_bytes: int):
        self.tenant = tenant
        self.requested_bytes = requested_bytes
        self.committed_bytes = committed_bytes
        self.budget_bytes = budget_bytes
        gib = 1024 ** 3
        super().__init__(
            f"tenant {tenant!r} over memory budget: job needs "
            f"{requested_bytes / gib:.3f} GiB with {committed_bytes / gib:.3f} GiB "
            f"already committed, budget is {budget_bytes / gib:.3f} GiB")


@dataclass
class Tenant:
    """Per-tenant queue and accounting."""

    name: str
    #: ``None`` = unlimited.
    budget_bytes: "int | None" = None
    #: Sum of the estimates of this tenant's queued + running jobs.
    committed_bytes: int = 0
    queue: "deque[Job]" = field(default_factory=deque)
    submitted: int = 0
    rejected: int = 0
    completed: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "budget_bytes": self.budget_bytes,
                "committed_bytes": self.committed_bytes,
                "queued": len(self.queue), "submitted": self.submitted,
                "rejected": self.rejected, "completed": self.completed}


class JobScheduler:
    """Fair round-robin dispatch of tenant jobs onto a bounded worker pool."""

    def __init__(self, runner: Callable[[Job], Awaitable[Any]], *,
                 workers: int = 4, default_budget_bytes: "int | None" = None):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self._runner = runner
        self.workers = workers
        self.default_budget_bytes = default_budget_bytes
        self.tenants: dict[str, Tenant] = {}
        self._order: list[str] = []
        self._next = 0
        self._queued = asyncio.Event()
        self._slots = asyncio.Semaphore(workers)
        self._dispatcher: "asyncio.Task | None" = None
        self._running: "set[asyncio.Task]" = set()
        self._job_tasks: "dict[str, asyncio.Task]" = {}
        self.dispatched = 0
        self.cancelled = 0

    # ------------------------------------------------------------------ #
    def tenant(self, name: str, budget_bytes: "int | None | object" = ...) -> Tenant:
        """Get or register a tenant (new tenants get the default budget)."""
        state = self.tenants.get(name)
        if state is None:
            state = Tenant(name=name, budget_bytes=self.default_budget_bytes)
            self.tenants[name] = state
            self._order.append(name)
        if budget_bytes is not ...:
            state.budget_bytes = budget_bytes  # type: ignore[assignment]
        return state

    def submit(self, job: Job) -> Job:
        """Queue a job, enforcing its tenant's memory budget at admission.

        Raises :class:`MemoryBudgetExceeded` (and marks the job rejected)
        when the tenant's committed estimate plus this job's would exceed the
        tenant's budget.  Other tenants are unaffected either way.
        """
        tenant = self.tenant(job.tenant)
        tenant.submitted += 1
        if (tenant.budget_bytes is not None
                and tenant.committed_bytes + job.estimated_bytes > tenant.budget_bytes):
            tenant.rejected += 1
            error = MemoryBudgetExceeded(tenant.name, job.estimated_bytes,
                                         tenant.committed_bytes, tenant.budget_bytes)
            job.finish("rejected", error=str(error))
            raise error
        tenant.committed_bytes += job.estimated_bytes
        tenant.queue.append(job)
        self._queued.set()
        return job

    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(self._dispatch(), name="job-dispatcher")

    async def stop(self) -> None:
        """Cancel the dispatcher and any in-flight jobs."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for task in list(self._running):
            task.cancel()
        if self._running:
            await asyncio.gather(*self._running, return_exceptions=True)

    async def _dispatch(self) -> None:
        while True:
            await self._slots.acquire()
            job = self._pick()
            while job is None:
                self._queued.clear()
                if any(t.queue for t in self.tenants.values()):
                    self._queued.set()  # raced with a submit between pick and clear
                await self._queued.wait()
                job = self._pick()
            self.dispatched += 1
            task = asyncio.create_task(self._run(job), name=f"job-{job.id}")
            self._running.add(task)
            self._job_tasks[job.id] = task
            task.add_done_callback(self._running.discard)
            task.add_done_callback(
                lambda _task, job_id=job.id: self._job_tasks.pop(job_id, None))

    def _pick(self) -> "Job | None":
        """Next job, round-robin over tenants with non-empty queues."""
        count = len(self._order)
        for offset in range(count):
            name = self._order[(self._next + offset) % count]
            queue = self.tenants[name].queue
            if queue:
                self._next = (self._next + offset + 1) % count
                return queue.popleft()
        return None

    def cancel(self, job: Job) -> bool:
        """Cancel a job: dequeue it if queued, interrupt it if running.

        Idempotent — returns ``True`` when this call changed anything
        (the job was dequeued, or a cancellation was delivered to its
        running task), ``False`` when the job had already finished.  A
        queued job is removed from its tenant's queue and its memory
        estimate released immediately; a running job has
        :attr:`Job.cancel_requested` set so :meth:`_run` records
        ``cancelled`` rather than a shutdown failure.
        """
        if job.done:
            return False
        tenant = self.tenants.get(job.tenant)
        if job.state == "queued" and tenant is not None and job in tenant.queue:
            tenant.queue.remove(job)
            tenant.committed_bytes -= job.estimated_bytes
            tenant.completed += 1
            self.cancelled += 1
            job.finish("cancelled", error="cancelled by client")
            return True
        task = self._job_tasks.get(job.id)
        if task is not None and not task.done():
            job.cancel_requested = True
            self.cancelled += 1
            task.cancel()
            return True
        return False

    async def _run(self, job: Job) -> None:
        try:
            job.mark_running()
            result = await self._runner(job)
            job.finish("done", result=result)
        except asyncio.CancelledError:
            if job.cancel_requested:
                job.finish("cancelled", error="cancelled by client")
            else:
                job.finish("failed", error="cancelled: server shutting down")
                raise
        except Exception as err:  # noqa: BLE001 — one bad job must not kill the pool
            job.finish("failed", error=f"{type(err).__name__}: {err}")
        finally:
            tenant = self.tenants[job.tenant]
            tenant.committed_bytes -= job.estimated_bytes
            tenant.completed += 1
            self._slots.release()

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "running": len(self._running),
            "queued": sum(len(t.queue) for t in self.tenants.values()),
            "dispatched": self.dispatched,
            "cancelled": self.cancelled,
            "tenants": {name: t.to_dict() for name, t in self.tenants.items()},
        }
