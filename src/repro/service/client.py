"""A thin blocking HTTP client for the benchmark service (stdlib only).

Used by the test suite, the CI smoke job and the service benchmark; it is
also the reference for talking to the server from any other HTTP client.
The client keeps one persistent HTTP/1.1 connection per thread and reuses
it across requests (reconnecting transparently when the server retires it),
JSON in, JSON out; ``stream()`` iterates the NDJSON event lines of a
running job on a dedicated connection.

    from repro.service.client import ServiceClient

    client = ServiceClient(port=8642)
    client.wait_until_ready()
    result = client.run(mode="full", engines=["pandas", "polars"],
                        datasets=["athlete"], wait=True)
    reports = client.advise(datasets=["athlete"])
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from typing import Any, Iterator, Mapping

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str, payload: "Mapping[str, Any] | None" = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.payload = dict(payload or {})


#: Transport-level failures worth one retry: the server answered nothing, so
#: retrying a request is safe for GET/DELETE and, for this service, for the
#: idempotent POST endpoints too (identical cells deduplicate through the
#: cache and single-flight layers).  A :class:`ServiceError` is *never*
#: retried — the server answered, retrying would double-submit.
_RETRYABLE = (ConnectionResetError, ConnectionRefusedError, BrokenPipeError,
              ConnectionAbortedError, http.client.RemoteDisconnected,
              socket.timeout)


class ServiceClient:
    """Blocking JSON client for one :class:`~repro.service.app.BenchmarkService`.

    Every request carries a socket timeout, and a request that dies at the
    transport layer (connection reset, refused, broken pipe, timeout) is
    retried ``retries`` times with ``retry_backoff``-second pauses before
    the error propagates.  Non-2xx *responses* raise :class:`ServiceError`
    immediately — the server spoke, so there is nothing to retry.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 120.0, retries: int = 1,
                 retry_backoff: float = 0.2):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.retry_backoff = retry_backoff
        self._local = threading.local()
        self._opened = 0
        self._opened_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    @property
    def connections_opened(self) -> int:
        """How many TCP connections this client has opened (all threads)."""
        return self._opened

    def close(self) -> None:
        """Close this thread's persistent connection (if any)."""
        self._discard_connection()

    def request(self, method: str, path: str,
                payload: "Mapping[str, Any] | None" = None) -> dict[str, Any]:
        """One request → the parsed JSON document (raises on non-2xx)."""
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except _RETRYABLE:
                if attempt >= self.retries:
                    raise
                attempt += 1
                time.sleep(self.retry_backoff * attempt)

    def _connection(self) -> "tuple[http.client.HTTPConnection, bool]":
        """This thread's persistent connection, opening one if needed."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection, False
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        self._local.connection = connection
        with self._opened_lock:
            self._opened += 1
        return connection, True

    def _discard_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        self._local.connection = None
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass

    def _request_once(self, method: str, path: str,
                      payload: "Mapping[str, Any] | None" = None) -> dict[str, Any]:
        connection, fresh = self._connection()
        try:
            return self._send(connection, method, path, payload)
        except _RETRYABLE:
            self._discard_connection()
            if fresh:
                raise
            # A reused keep-alive socket the server had already retired
            # (idle timeout, max-requests cap): reconnect once, silently —
            # this is connection churn, not a request failure.
            connection, _ = self._connection()
            try:
                return self._send(connection, method, path, payload)
            except _RETRYABLE:
                self._discard_connection()
                raise
        except ServiceError:
            raise  # the response was fully read; the socket is still clean
        except BaseException:
            # Anything else may leave the socket mid-response; don't reuse it.
            self._discard_connection()
            raise

    def _send(self, connection: http.client.HTTPConnection, method: str,
              path: str, payload: "Mapping[str, Any] | None") -> dict[str, Any]:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        document = self._decode(response.read())
        if (response.getheader("Connection") or "").lower() == "close":
            self._discard_connection()
        if response.status >= 400:
            error = document.get("error", {}) if isinstance(document, dict) else {}
            raise ServiceError(response.status,
                               error.get("message", "request failed"), document)
        return document

    @staticmethod
    def _decode(raw: bytes) -> dict[str, Any]:
        try:
            return json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            return {"raw": raw.decode("utf-8", "replace")}

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict[str, Any]:
        return self.request("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self.request("GET", "/stats")

    def run(self, *, tenant: str = "public", wait: bool = True,
            **params: Any) -> dict[str, Any]:
        """Submit a sweep (``mode``/``engines``/``datasets``/``lazy``/...).

        With ``wait=True`` (default) blocks until done and returns
        ``{"job": ..., "result": {"measurements": [...], "cells": ...}}``;
        with ``wait=False`` returns the 202 job summary immediately.
        """
        return self.request("POST", "/run",
                            {"tenant": tenant, "wait": wait, **params})

    def advise(self, *, tenant: str = "public", wait: bool = True,
               **params: Any) -> dict[str, Any]:
        return self.request("POST", "/advise",
                            {"tenant": tenant, "wait": wait, **params})

    def explain(self, dataset: str, pipeline: "str | None" = None, *,
                tenant: str = "public", **params: Any) -> dict[str, Any]:
        body: dict[str, Any] = {"tenant": tenant, "dataset": dataset, **params}
        if pipeline is not None:
            body["pipeline"] = pipeline
        return self.request("POST", "/explain", body)

    def job(self, job_id: str, *, result: bool = True) -> dict[str, Any]:
        suffix = "" if result else "?result=0"
        return self.request("GET", f"/jobs/{job_id}{suffix}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``DELETE /jobs/<id>``: cancel a queued or running job.

        Idempotent: cancelling a finished job returns its summary with
        ``cancelled: false``; only an unknown id raises (404).
        """
        return self.request("DELETE", f"/jobs/{job_id}")

    def wait_for_job(self, job_id: str, *, poll_seconds: float = 0.05,
                     timeout: float = 120.0) -> dict[str, Any]:
        """Poll ``/jobs/<id>`` until the job leaves the queued/running states."""
        deadline = time.monotonic() + timeout
        while True:
            document = self.job(job_id)
            if document["job"]["state"] not in ("queued", "running"):
                return document
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {document['job']['state']} "
                                   f"after {timeout}s")
            time.sleep(poll_seconds)

    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield the NDJSON event lines of a job until its ``end`` line."""
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            connection.request("GET", f"/jobs/{job_id}/stream")
            response = connection.getresponse()
            if response.status >= 400:
                document = self._decode(response.read())
                error = document.get("error", {}) if isinstance(document, dict) else {}
                raise ServiceError(response.status,
                                   error.get("message", "stream failed"), document)
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    # ------------------------------------------------------------------ #
    def wait_until_ready(self, timeout: float = 60.0,
                         poll_seconds: float = 0.2) -> dict[str, Any]:
        """Block until ``/healthz`` answers (for freshly-spawned servers)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (ConnectionError, socket.timeout, OSError, ServiceError):
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"service at {self.host}:{self.port} not ready "
                        f"after {timeout}s") from None
                time.sleep(poll_seconds)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ServiceClient({self.host!r}, port={self.port})"
