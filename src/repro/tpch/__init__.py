"""TPC-H substrate: synthetic data generator, the 22 queries, and the runner
used to reproduce Figure 7."""

from .datagen import TPCHData, generate_tpch
from .queries import QUERIES, get_query, query_names
from .runner import TPCHQueryResult, TPCHRunner
from .schema import (
    FIXED_TABLES,
    TABLE_CARDINALITY_PER_SF,
    TABLE_NAMES,
    TPCH_NOMINAL_SCALE_FACTOR,
    rows_at_scale,
)

__all__ = [
    "TPCHData",
    "generate_tpch",
    "QUERIES",
    "get_query",
    "query_names",
    "TPCHRunner",
    "TPCHQueryResult",
    "TABLE_CARDINALITY_PER_SF",
    "FIXED_TABLES",
    "TABLE_NAMES",
    "TPCH_NOMINAL_SCALE_FACTOR",
    "rows_at_scale",
]
