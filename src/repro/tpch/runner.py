"""TPC-H execution and pricing across the simulated engines (Figure 7).

Every query is executed physically once per engine on the generated sample —
lazy engines (Spark SQL, Spark PD, Polars, DuckDB) run the optimized plan,
eager engines run the unoptimized one — and the operators that actually ran
are priced by each engine's cost model at the nominal scale factor (SF 10 in
the paper).  The physical results are also returned so tests can check that
every engine computes the same answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engines.base import BaseEngine, SimulationContext
from ..frame.frame import DataFrame
from ..plan.optimizer import OptimizerSettings
from ..simulate.clock import RunReport, trimmed_mean
from ..simulate.memory import SimulatedOOMError
from .datagen import TPCHData
from .queries import QUERIES, get_query

__all__ = ["TPCHQueryResult", "TPCHRunner"]


@dataclass
class TPCHQueryResult:
    """Outcome of one (engine, query) pair."""

    engine: str
    query: str
    seconds: float
    rows: int = 0
    failed: bool = False
    failure_reason: str = ""
    frame: DataFrame | None = field(default=None, repr=False)


class TPCHRunner:
    """Runs the 22 queries on one or more engines."""

    def __init__(self, data: TPCHData, runs: int = 3):
        self.data = data
        self.runs = max(1, runs)

    # ------------------------------------------------------------------ #
    def simulation_context(self, engine: BaseEngine) -> SimulationContext:
        """Context pricing the whole TPC-H database at the nominal scale."""
        total_physical = self.data.total_physical_rows()
        nominal_rows = int(total_physical * self.data.row_scale)
        dataset_bytes = self.data.nominal_memory_bytes()
        return SimulationContext(
            machine=engine.machine,
            nominal_rows=nominal_rows,
            physical_rows=total_physical,
            dataset_bytes=dataset_bytes,
            csv_bytes=int(dataset_bytes * 1.2),
            parquet_bytes=int(dataset_bytes * 0.4),
            column_bytes={},
            dataset_name=f"tpch-sf{self.data.nominal_scale_factor:g}",
            runs=self.runs,
        )

    # ------------------------------------------------------------------ #
    def run_query(self, engine: BaseEngine, query: str,
                  keep_frame: bool = False) -> TPCHQueryResult:
        """Execute one query on one engine and price it."""
        builder = get_query(query)
        sim = self.simulation_context(engine)
        lazy = engine.supports_lazy
        settings = engine.optimizer_settings if lazy else OptimizerSettings.all_disabled()
        try:
            per_run: list[float] = []
            frame: DataFrame | None = None
            for run_index in range(self.runs):
                plan = builder(self.data)
                frame, stats = plan.collect_with_stats(settings, optimize_plan=lazy,
                                                       cost_model=engine.cost_model,
                                                       profile=engine.profile)
                report = RunReport(engine=engine.name, label=query)
                engine._price_plan_stats(stats, sim, run_index, report, pipeline_scope=False)
                per_run.append(report.total_seconds)
            return TPCHQueryResult(
                engine=engine.name, query=query, seconds=trimmed_mean(per_run),
                rows=frame.num_rows if frame is not None else 0,
                frame=frame if keep_frame else None,
            )
        except SimulatedOOMError as oom:
            return TPCHQueryResult(engine=engine.name, query=query, seconds=float("inf"),
                                   failed=True, failure_reason=str(oom))

    # ------------------------------------------------------------------ #
    def run_all(self, engine: BaseEngine, queries: list[str] | None = None,
                keep_frames: bool = False) -> dict[str, TPCHQueryResult]:
        """Run every query (or a subset) on one engine."""
        names = queries or list(QUERIES)
        return {name: self.run_query(engine, name, keep_frame=keep_frames) for name in names}

    def run_matrix(self, engines: dict[str, BaseEngine],
                   queries: list[str] | None = None) -> dict[str, dict[str, TPCHQueryResult]]:
        """Figure 7: every engine × every query."""
        return {name: self.run_all(engine, queries) for name, engine in engines.items()}
