"""Synthetic TPC-H data generator (a small stand-in for ``dbgen``).

Generates the eight TPC-H tables at a configurable *physical* scale factor
with the schema, key relationships and value domains needed by the 22 queries:
foreign keys are always valid, dates span 1992-1998, prices/discounts/taxes
follow the specification's ranges, and string fields (comments, part names,
phone numbers) have realistic shapes.  Dates are stored as DATETIME columns
(epoch nanoseconds) so query predicates compare numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frame.column import Column
from ..frame.datetimes import NS_PER_DAY, date_to_ns
from ..frame.dtypes import DATETIME, FLOAT64, INT64, STRING
from ..frame.frame import DataFrame
from .schema import (
    NATIONS,
    ORDER_STATUS,
    PRIORITIES,
    REGIONS,
    RETURN_FLAGS,
    SEGMENTS,
    SHIP_MODES,
    TPCH_NOMINAL_SCALE_FACTOR,
    rows_at_scale,
)

__all__ = ["TPCHData", "generate_tpch"]

_START_DATE = date_to_ns(1992, 1, 1)
_END_DATE = date_to_ns(1998, 8, 2)
_P_TYPES_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_P_TYPES_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_P_TYPES_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_CONTAINERS_1 = ["SM", "MED", "LG", "JUMBO", "WRAP"]
_CONTAINERS_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
_COLORS = ["almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
           "blanched", "blue", "blush", "brown", "burlywood", "chartreuse", "chocolate",
           "coral", "cornflower", "cream", "cyan", "dark", "deep", "dim", "dodger",
           "firebrick", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green",
           "grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace", "lavender"]
_COMMENT_WORDS = ["carefully", "quickly", "furiously", "slyly", "blithely", "requests",
                  "deposits", "packages", "accounts", "instructions", "theodolites",
                  "pending", "final", "express", "special", "regular", "ironic", "even",
                  "bold", "silent", "unusual", "sleep", "haggle", "nag", "wake"]


@dataclass
class TPCHData:
    """The eight generated tables plus scale metadata."""

    tables: dict[str, DataFrame]
    physical_scale_factor: float
    nominal_scale_factor: float = TPCH_NOMINAL_SCALE_FACTOR

    def __getitem__(self, name: str) -> DataFrame:
        return self.tables[name]

    @property
    def row_scale(self) -> float:
        """Nominal rows / physical rows (same ratio for every scaled table)."""
        return self.nominal_scale_factor / self.physical_scale_factor

    def total_physical_rows(self) -> int:
        return sum(t.num_rows for t in self.tables.values())

    def nominal_memory_bytes(self) -> int:
        return int(sum(t.memory_usage() for t in self.tables.values()) * self.row_scale)


class _Generator:
    """Internal helper holding the RNG and shared sampling routines."""

    def __init__(self, seed: int):
        self.rng = np.random.default_rng(seed)

    def pick(self, values: list[str], n: int) -> list[str]:
        idx = self.rng.integers(0, len(values), size=n)
        return [values[i] for i in idx]

    def comment(self, n: int, words: int = 6) -> Column:
        picks = self.rng.integers(0, len(_COMMENT_WORDS), size=(n, words))
        values = [" ".join(_COMMENT_WORDS[j] for j in row) for row in picks]
        return Column.from_values(values, STRING)

    def money(self, n: int, low: float, high: float) -> Column:
        values = np.round(self.rng.uniform(low, high, size=n), 2)
        return Column(values, FLOAT64)

    def dates(self, n: int, start_ns: int = _START_DATE, end_ns: int = _END_DATE) -> Column:
        days = (end_ns - start_ns) // NS_PER_DAY
        offsets = self.rng.integers(0, days + 1, size=n)
        values = start_ns + offsets * NS_PER_DAY
        return Column(values.astype(np.int64), DATETIME)

    def phone(self, n: int) -> Column:
        country = self.rng.integers(10, 35, size=n)
        a = self.rng.integers(100, 1000, size=n)
        b = self.rng.integers(100, 1000, size=n)
        c = self.rng.integers(1000, 10000, size=n)
        values = [f"{cc}-{x}-{y}-{z}" for cc, x, y, z in zip(country, a, b, c)]
        return Column.from_values(values, STRING)


def _region(gen: _Generator) -> DataFrame:
    return DataFrame({
        "r_regionkey": Column.from_values(list(range(len(REGIONS))), INT64),
        "r_name": Column.from_values(REGIONS, STRING),
        "r_comment": gen.comment(len(REGIONS)),
    })


def _nation(gen: _Generator) -> DataFrame:
    return DataFrame({
        "n_nationkey": Column.from_values(list(range(len(NATIONS))), INT64),
        "n_name": Column.from_values([name for name, _ in NATIONS], STRING),
        "n_regionkey": Column.from_values([region for _, region in NATIONS], INT64),
        "n_comment": gen.comment(len(NATIONS)),
    })


def _supplier(gen: _Generator, rows: int) -> DataFrame:
    keys = list(range(1, rows + 1))
    return DataFrame({
        "s_suppkey": Column.from_values(keys, INT64),
        "s_name": Column.from_values([f"Supplier#{k:09d}" for k in keys], STRING),
        "s_address": gen.comment(rows, words=3),
        "s_nationkey": Column(gen.rng.integers(0, len(NATIONS), size=rows).astype(np.int64), INT64),
        "s_phone": gen.phone(rows),
        "s_acctbal": gen.money(rows, -999.99, 9999.99),
        "s_comment": gen.comment(rows),
    })


def _customer(gen: _Generator, rows: int) -> DataFrame:
    keys = list(range(1, rows + 1))
    return DataFrame({
        "c_custkey": Column.from_values(keys, INT64),
        "c_name": Column.from_values([f"Customer#{k:09d}" for k in keys], STRING),
        "c_address": gen.comment(rows, words=3),
        "c_nationkey": Column(gen.rng.integers(0, len(NATIONS), size=rows).astype(np.int64), INT64),
        "c_phone": gen.phone(rows),
        "c_acctbal": gen.money(rows, -999.99, 9999.99),
        "c_mktsegment": Column.from_values(gen.pick(SEGMENTS, rows), STRING),
        "c_comment": gen.comment(rows),
    })


def _part(gen: _Generator, rows: int) -> DataFrame:
    keys = list(range(1, rows + 1))
    names = [" ".join(gen.pick(_COLORS, 3)) for _ in range(rows)]
    types = [f"{a} {b} {c}" for a, b, c in zip(gen.pick(_P_TYPES_1, rows),
                                               gen.pick(_P_TYPES_2, rows),
                                               gen.pick(_P_TYPES_3, rows))]
    containers = [f"{a} {b}" for a, b in zip(gen.pick(_CONTAINERS_1, rows),
                                             gen.pick(_CONTAINERS_2, rows))]
    return DataFrame({
        "p_partkey": Column.from_values(keys, INT64),
        "p_name": Column.from_values(names, STRING),
        "p_mfgr": Column.from_values([f"Manufacturer#{int(v)}" for v in
                                      gen.rng.integers(1, 6, size=rows)], STRING),
        "p_brand": Column.from_values([f"Brand#{int(v)}{int(w)}" for v, w in
                                       zip(gen.rng.integers(1, 6, size=rows),
                                           gen.rng.integers(1, 6, size=rows))], STRING),
        "p_type": Column.from_values(types, STRING),
        "p_size": Column(gen.rng.integers(1, 51, size=rows).astype(np.int64), INT64),
        "p_container": Column.from_values(containers, STRING),
        "p_retailprice": gen.money(rows, 900.0, 2000.0),
        "p_comment": gen.comment(rows, words=3),
    })


def _partsupp(gen: _Generator, rows: int, part_rows: int, supplier_rows: int) -> DataFrame:
    partkeys = gen.rng.integers(1, part_rows + 1, size=rows).astype(np.int64)
    suppkeys = gen.rng.integers(1, supplier_rows + 1, size=rows).astype(np.int64)
    return DataFrame({
        "ps_partkey": Column(partkeys, INT64),
        "ps_suppkey": Column(suppkeys, INT64),
        "ps_availqty": Column(gen.rng.integers(1, 10_000, size=rows).astype(np.int64), INT64),
        "ps_supplycost": gen.money(rows, 1.0, 1000.0),
        "ps_comment": gen.comment(rows),
    })


def _orders(gen: _Generator, rows: int, customer_rows: int) -> DataFrame:
    keys = list(range(1, rows + 1))
    return DataFrame({
        "o_orderkey": Column.from_values(keys, INT64),
        "o_custkey": Column(gen.rng.integers(1, customer_rows + 1, size=rows).astype(np.int64), INT64),
        "o_orderstatus": Column.from_values(gen.pick(ORDER_STATUS, rows), STRING),
        "o_totalprice": gen.money(rows, 1_000.0, 450_000.0),
        "o_orderdate": gen.dates(rows, _START_DATE, date_to_ns(1998, 8, 2)),
        "o_orderpriority": Column.from_values(gen.pick(PRIORITIES, rows), STRING),
        "o_clerk": Column.from_values([f"Clerk#{int(v):09d}" for v in
                                       gen.rng.integers(1, 1001, size=rows)], STRING),
        "o_shippriority": Column.from_values([0] * rows, INT64),
        "o_comment": gen.comment(rows),
    })


def _lineitem(gen: _Generator, rows: int, orders_rows: int, part_rows: int,
              supplier_rows: int) -> DataFrame:
    orderkeys = gen.rng.integers(1, orders_rows + 1, size=rows).astype(np.int64)
    quantity = gen.rng.integers(1, 51, size=rows).astype(np.float64)
    extendedprice = np.round(quantity * gen.rng.uniform(900.0, 2000.0, size=rows), 2)
    discount = np.round(gen.rng.uniform(0.0, 0.10, size=rows), 2)
    tax = np.round(gen.rng.uniform(0.0, 0.08, size=rows), 2)
    shipdate = gen.dates(rows)
    commit_offset = gen.rng.integers(1, 90, size=rows) * NS_PER_DAY
    receipt_offset = gen.rng.integers(1, 30, size=rows) * NS_PER_DAY
    return DataFrame({
        "l_orderkey": Column(orderkeys, INT64),
        "l_partkey": Column(gen.rng.integers(1, part_rows + 1, size=rows).astype(np.int64), INT64),
        "l_suppkey": Column(gen.rng.integers(1, supplier_rows + 1, size=rows).astype(np.int64), INT64),
        "l_linenumber": Column(gen.rng.integers(1, 8, size=rows).astype(np.int64), INT64),
        "l_quantity": Column(quantity, FLOAT64),
        "l_extendedprice": Column(extendedprice, FLOAT64),
        "l_discount": Column(discount, FLOAT64),
        "l_tax": Column(tax, FLOAT64),
        "l_returnflag": Column.from_values(gen.pick(RETURN_FLAGS, rows), STRING),
        "l_linestatus": Column.from_values(gen.pick(["F", "O"], rows), STRING),
        "l_shipdate": shipdate,
        "l_commitdate": Column(shipdate.values + commit_offset.astype(np.int64), DATETIME),
        "l_receiptdate": Column(shipdate.values + receipt_offset.astype(np.int64), DATETIME),
        "l_shipinstruct": Column.from_values(gen.pick(["DELIVER IN PERSON", "COLLECT COD",
                                                       "NONE", "TAKE BACK RETURN"], rows), STRING),
        "l_shipmode": Column.from_values(gen.pick(SHIP_MODES, rows), STRING),
        "l_comment": gen.comment(rows, words=4),
    })


def generate_tpch(physical_scale_factor: float = 0.002, seed: int = 42,
                  nominal_scale_factor: float = TPCH_NOMINAL_SCALE_FACTOR) -> TPCHData:
    """Generate all eight TPC-H tables at a small physical scale factor.

    The default physical SF of 0.002 yields ~12k lineitem rows — enough for
    every query to produce non-trivial results while staying laptop-fast.
    """
    if physical_scale_factor <= 0:
        raise ValueError("physical_scale_factor must be positive")
    gen = _Generator(seed)
    supplier_rows = rows_at_scale("supplier", physical_scale_factor)
    part_rows = rows_at_scale("part", physical_scale_factor)
    partsupp_rows = rows_at_scale("partsupp", physical_scale_factor)
    customer_rows = rows_at_scale("customer", physical_scale_factor)
    orders_rows = rows_at_scale("orders", physical_scale_factor)
    lineitem_rows = rows_at_scale("lineitem", physical_scale_factor)

    tables = {
        "region": _region(gen),
        "nation": _nation(gen),
        "supplier": _supplier(gen, supplier_rows),
        "customer": _customer(gen, customer_rows),
        "part": _part(gen, part_rows),
        "partsupp": _partsupp(gen, partsupp_rows, part_rows, supplier_rows),
        "orders": _orders(gen, orders_rows, customer_rows),
        "lineitem": _lineitem(gen, lineitem_rows, orders_rows, part_rows, supplier_rows),
    }
    return TPCHData(tables=tables, physical_scale_factor=physical_scale_factor,
                    nominal_scale_factor=nominal_scale_factor)
