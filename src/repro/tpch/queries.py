"""The 22 TPC-H queries expressed against the dataframe API.

Each query is a function taking a :class:`~repro.tpch.datagen.TPCHData` and
returning a :class:`~repro.plan.builder.LazyFrame`, mirroring the publicly
available Pandas translation of the TPC-H suite the paper relies on: the same
logical plan is executed by every engine, and lazy engines additionally
optimize it.  Correlated sub-queries are expressed the standard way — as
aggregations joined back to the outer query.

A few queries simplify cosmetic details (string concatenations in output
columns, exotic tie-breaking in ORDER BY) without changing the relational
structure: the joins, filters, aggregations and their ordering are preserved,
which is what the runtime comparison depends on.
"""

from __future__ import annotations

from typing import Callable

from ..frame.datetimes import date_to_ns
from ..frame.expressions import col, lit
from ..frame.frame import DataFrame
from ..plan.builder import LazyFrame
from .datagen import TPCHData

__all__ = ["QUERIES", "get_query", "query_names"]


def _lazy(data: TPCHData, table: str) -> LazyFrame:
    return LazyFrame.from_frame(data[table])


def _date(year: int, month: int = 1, day: int = 1) -> int:
    return date_to_ns(year, month, day)


# --------------------------------------------------------------------------- #
# Q1 - Q6
# --------------------------------------------------------------------------- #
def q01(data: TPCHData) -> LazyFrame:
    """Pricing summary report: aggregates over recently shipped line items."""
    return (
        _lazy(data, "lineitem")
        .filter(col("l_shipdate") <= _date(1998, 9, 2))
        .with_column("disc_price", col("l_extendedprice") * (lit(1) - col("l_discount")))
        .with_column("charge",
                     col("l_extendedprice") * (lit(1) - col("l_discount")) * (lit(1) + col("l_tax")))
        .group_agg(["l_returnflag", "l_linestatus"], {
            "l_quantity": ["sum", "mean"],
            "l_extendedprice": ["sum", "mean"],
            "disc_price": "sum",
            "charge": "sum",
            "l_discount": "mean",
            "l_orderkey": "count",
        })
        .sort(["l_returnflag", "l_linestatus"])
    )


def q02(data: TPCHData) -> LazyFrame:
    """Minimum-cost supplier for brass parts of size 15 in Europe."""
    europe_suppliers = (
        _lazy(data, "supplier")
        .join(_lazy(data, "nation"), left_on="s_nationkey", right_on="n_nationkey")
        .join(_lazy(data, "region"), left_on="n_regionkey", right_on="r_regionkey")
        .filter(col("r_name") == "EUROPE")
    )
    candidate = (
        _lazy(data, "partsupp")
        .join(europe_suppliers, left_on="ps_suppkey", right_on="s_suppkey")
        .join(_lazy(data, "part"), left_on="ps_partkey", right_on="p_partkey")
        .filter((col("p_size") == 15) & col("p_type").str_contains("BRASS$"))
    )
    min_cost = candidate.group_agg("ps_partkey", {"ps_supplycost": "min"})
    return (
        candidate
        .join(min_cost.select(["ps_partkey", "ps_supplycost"]),
              on="ps_partkey", suffix="_min")
        .filter(col("ps_supplycost") == col("ps_supplycost_min"))
        .select(["s_acctbal", "s_name", "n_name", "ps_partkey", "p_mfgr", "s_phone"])
        .sort(["s_acctbal", "n_name", "s_name"], ascending=[False, True, True])
        .limit(100)
    )


def q03(data: TPCHData) -> LazyFrame:
    """Unshipped orders with the highest revenue for one market segment."""
    customers = _lazy(data, "customer").filter(col("c_mktsegment") == "BUILDING")
    orders = _lazy(data, "orders").filter(col("o_orderdate") < _date(1995, 3, 15))
    lineitems = _lazy(data, "lineitem").filter(col("l_shipdate") > _date(1995, 3, 15))
    return (
        lineitems
        .join(orders, left_on="l_orderkey", right_on="o_orderkey")
        .join(customers, left_on="o_custkey", right_on="c_custkey")
        .with_column("revenue", col("l_extendedprice") * (lit(1) - col("l_discount")))
        .group_agg(["l_orderkey", "o_orderdate", "o_shippriority"], {"revenue": "sum"})
        .sort(["revenue", "o_orderdate"], ascending=[False, True])
        .limit(10)
    )


def q04(data: TPCHData) -> LazyFrame:
    """Order-priority count for orders with at least one late line item."""
    late = (
        _lazy(data, "lineitem")
        .filter(col("l_commitdate") < col("l_receiptdate"))
        .select(["l_orderkey"])
        .distinct()
    )
    return (
        _lazy(data, "orders")
        .filter((col("o_orderdate") >= _date(1993, 7, 1)) &
                (col("o_orderdate") < _date(1993, 10, 1)))
        .join(late, left_on="o_orderkey", right_on="l_orderkey")
        .group_agg("o_orderpriority", {"o_orderkey": "count"})
        .sort("o_orderpriority")
    )


def q05(data: TPCHData) -> LazyFrame:
    """Local supplier revenue per Asian nation."""
    return (
        _lazy(data, "lineitem")
        .join(_lazy(data, "orders"), left_on="l_orderkey", right_on="o_orderkey")
        .join(_lazy(data, "customer"), left_on="o_custkey", right_on="c_custkey")
        .join(_lazy(data, "supplier"), left_on="l_suppkey", right_on="s_suppkey")
        .filter(col("c_nationkey") == col("s_nationkey"))
        .join(_lazy(data, "nation"), left_on="s_nationkey", right_on="n_nationkey")
        .join(_lazy(data, "region"), left_on="n_regionkey", right_on="r_regionkey")
        .filter((col("r_name") == "ASIA") &
                (col("o_orderdate") >= _date(1994, 1, 1)) &
                (col("o_orderdate") < _date(1995, 1, 1)))
        .with_column("revenue", col("l_extendedprice") * (lit(1) - col("l_discount")))
        .group_agg("n_name", {"revenue": "sum"})
        .sort("revenue", ascending=False)
    )


def q06(data: TPCHData) -> LazyFrame:
    """Forecast revenue change from a small discount band (highly selective)."""
    return (
        _lazy(data, "lineitem")
        .filter((col("l_shipdate") >= _date(1994, 1, 1)) &
                (col("l_shipdate") < _date(1995, 1, 1)) &
                (col("l_discount") >= 0.05) & (col("l_discount") <= 0.07) &
                (col("l_quantity") < 24))
        .with_column("revenue", col("l_extendedprice") * col("l_discount"))
        .with_column("bucket", lit(1))
        .group_agg("bucket", {"revenue": "sum"})
    )


# --------------------------------------------------------------------------- #
# Q7 - Q11
# --------------------------------------------------------------------------- #
def q07(data: TPCHData) -> LazyFrame:
    """Volume shipping between two nations (France / Germany)."""
    suppliers = (
        _lazy(data, "supplier")
        .join(_lazy(data, "nation").select(["n_nationkey", "n_name"]),
              left_on="s_nationkey", right_on="n_nationkey")
    )
    customers = (
        _lazy(data, "customer")
        .join(_lazy(data, "nation").select(["n_nationkey", "n_name"]),
              left_on="c_nationkey", right_on="n_nationkey")
        .map_frame(lambda f: f.rename({"n_name": "cust_nation"}), label="map",
                   needs=["n_name"], barrier=False)
    )
    return (
        _lazy(data, "lineitem")
        .filter((col("l_shipdate") >= _date(1995, 1, 1)) & (col("l_shipdate") <= _date(1996, 12, 31)))
        .join(_lazy(data, "orders"), left_on="l_orderkey", right_on="o_orderkey")
        .join(customers, left_on="o_custkey", right_on="c_custkey")
        .join(suppliers, left_on="l_suppkey", right_on="s_suppkey")
        .filter(((col("n_name") == "FRANCE") & (col("cust_nation") == "GERMANY")) |
                ((col("n_name") == "GERMANY") & (col("cust_nation") == "FRANCE")))
        .with_column("volume", col("l_extendedprice") * (lit(1) - col("l_discount")))
        .with_column("l_year", col("l_shipdate").dt_component("year"))
        .group_agg(["n_name", "cust_nation", "l_year"], {"volume": "sum"})
        .sort(["n_name", "cust_nation", "l_year"])
    )


def q08(data: TPCHData) -> LazyFrame:
    """National market share for one part type in one region."""
    parts = _lazy(data, "part").filter(col("p_type").str_contains("ECONOMY ANODIZED STEEL"))
    america_customers = (
        _lazy(data, "customer")
        .join(_lazy(data, "nation").select(["n_nationkey", "n_regionkey"]),
              left_on="c_nationkey", right_on="n_nationkey")
        .join(_lazy(data, "region"), left_on="n_regionkey", right_on="r_regionkey")
        .filter(col("r_name") == "AMERICA")
        .select(["c_custkey"])
    )
    supplier_nation = (
        _lazy(data, "supplier")
        .join(_lazy(data, "nation").select(["n_nationkey", "n_name"]),
              left_on="s_nationkey", right_on="n_nationkey")
        .select(["s_suppkey", "n_name"])
    )
    return (
        _lazy(data, "lineitem")
        .join(parts.select(["p_partkey"]), left_on="l_partkey", right_on="p_partkey")
        .join(_lazy(data, "orders"), left_on="l_orderkey", right_on="o_orderkey")
        .filter((col("o_orderdate") >= _date(1995, 1, 1)) & (col("o_orderdate") <= _date(1996, 12, 31)))
        .join(america_customers, left_on="o_custkey", right_on="c_custkey")
        .join(supplier_nation, left_on="l_suppkey", right_on="s_suppkey")
        .with_column("volume", col("l_extendedprice") * (lit(1) - col("l_discount")))
        .with_column("o_year", col("o_orderdate").dt_component("year"))
        .group_agg(["o_year", "n_name"], {"volume": "sum"})
        .sort(["o_year", "n_name"])
    )


def q09(data: TPCHData) -> LazyFrame:
    """Product-type profit measure, by nation and year."""
    green_parts = _lazy(data, "part").filter(col("p_name").str_contains("green"))
    return (
        _lazy(data, "lineitem")
        .join(green_parts.select(["p_partkey"]), left_on="l_partkey", right_on="p_partkey")
        .join(_lazy(data, "partsupp"),
              left_on=["l_partkey", "l_suppkey"], right_on=["ps_partkey", "ps_suppkey"])
        .join(_lazy(data, "supplier").select(["s_suppkey", "s_nationkey"]),
              left_on="l_suppkey", right_on="s_suppkey")
        .join(_lazy(data, "nation").select(["n_nationkey", "n_name"]),
              left_on="s_nationkey", right_on="n_nationkey")
        .join(_lazy(data, "orders").select(["o_orderkey", "o_orderdate"]),
              left_on="l_orderkey", right_on="o_orderkey")
        .with_column("amount",
                     col("l_extendedprice") * (lit(1) - col("l_discount")) -
                     col("ps_supplycost") * col("l_quantity"))
        .with_column("o_year", col("o_orderdate").dt_component("year"))
        .group_agg(["n_name", "o_year"], {"amount": "sum"})
        .sort(["n_name", "o_year"], ascending=[True, False])
    )


def q10(data: TPCHData) -> LazyFrame:
    """Customers who returned items, ranked by lost revenue."""
    return (
        _lazy(data, "lineitem")
        .filter(col("l_returnflag") == "R")
        .join(_lazy(data, "orders"), left_on="l_orderkey", right_on="o_orderkey")
        .filter((col("o_orderdate") >= _date(1993, 10, 1)) & (col("o_orderdate") < _date(1994, 1, 1)))
        .join(_lazy(data, "customer"), left_on="o_custkey", right_on="c_custkey")
        .join(_lazy(data, "nation").select(["n_nationkey", "n_name"]),
              left_on="c_nationkey", right_on="n_nationkey")
        .with_column("revenue", col("l_extendedprice") * (lit(1) - col("l_discount")))
        .group_agg(["c_custkey", "c_name", "c_acctbal", "c_phone", "n_name"],
                   {"revenue": "sum"})
        .sort("revenue", ascending=False)
        .limit(20)
    )


def q11(data: TPCHData) -> LazyFrame:
    """Most important stock held by suppliers of one nation (Germany)."""
    german = (
        _lazy(data, "partsupp")
        .join(_lazy(data, "supplier").select(["s_suppkey", "s_nationkey"]),
              left_on="ps_suppkey", right_on="s_suppkey")
        .join(_lazy(data, "nation").select(["n_nationkey", "n_name"]),
              left_on="s_nationkey", right_on="n_nationkey")
        .filter(col("n_name") == "GERMANY")
        .with_column("value", col("ps_supplycost") * col("ps_availqty"))
    )
    return (
        german
        .group_agg("ps_partkey", {"value": "sum"})
        .sort("value", ascending=False)
        .limit(200)
    )


# --------------------------------------------------------------------------- #
# Q12 - Q17
# --------------------------------------------------------------------------- #
def q12(data: TPCHData) -> LazyFrame:
    """Shipping-mode effect on late deliveries for two modes."""
    return (
        _lazy(data, "lineitem")
        .filter(col("l_shipmode").is_in(["MAIL", "SHIP"]) &
                (col("l_commitdate") < col("l_receiptdate")) &
                (col("l_shipdate") < col("l_commitdate")) &
                (col("l_receiptdate") >= _date(1994, 1, 1)) &
                (col("l_receiptdate") < _date(1995, 1, 1)))
        .join(_lazy(data, "orders").select(["o_orderkey", "o_orderpriority"]),
              left_on="l_orderkey", right_on="o_orderkey")
        .with_column("high_line",
                     col("o_orderpriority").is_in(["1-URGENT", "2-HIGH"]))
        .with_column("low_line", ~col("o_orderpriority").is_in(["1-URGENT", "2-HIGH"]))
        .map_frame(_cast_bool_to_int(["high_line", "low_line"]), label="map",
                   needs=["high_line", "low_line"], barrier=False)
        .group_agg("l_shipmode", {"high_line": "sum", "low_line": "sum"})
        .sort("l_shipmode")
    )


def q13(data: TPCHData) -> LazyFrame:
    """Distribution of customers by number of (non-complaint) orders."""
    orders = (
        _lazy(data, "orders")
        .filter(~col("o_comment").str_contains("special.*requests"))
        .group_agg("o_custkey", {"o_orderkey": "count"})
        .map_frame(lambda f: f.rename({"o_orderkey": "c_count"}), label="map",
                   needs=["o_orderkey"], barrier=False)
    )
    return (
        _lazy(data, "customer").select(["c_custkey"])
        .join(orders, left_on="c_custkey", right_on="o_custkey", how="left")
        .fill_nulls({"c_count": 0})
        .group_agg("c_count", {"c_custkey": "count"})
        .sort(["c_custkey", "c_count"], ascending=[False, False])
    )


def q14(data: TPCHData) -> LazyFrame:
    """Share of promotional revenue in one month."""
    return (
        _lazy(data, "lineitem")
        .filter((col("l_shipdate") >= _date(1995, 9, 1)) & (col("l_shipdate") < _date(1995, 10, 1)))
        .join(_lazy(data, "part").select(["p_partkey", "p_type"]),
              left_on="l_partkey", right_on="p_partkey")
        .with_column("revenue", col("l_extendedprice") * (lit(1) - col("l_discount")))
        .with_column("is_promo", col("p_type").str_startswith("PROMO"))
        .map_frame(_promo_ratio, label="map", needs=["revenue", "is_promo"], barrier=True)
    )


def q15(data: TPCHData) -> LazyFrame:
    """Top supplier by revenue over one quarter."""
    revenue = (
        _lazy(data, "lineitem")
        .filter((col("l_shipdate") >= _date(1996, 1, 1)) & (col("l_shipdate") < _date(1996, 4, 1)))
        .with_column("rev", col("l_extendedprice") * (lit(1) - col("l_discount")))
        .group_agg("l_suppkey", {"rev": "sum"})
    )
    return (
        revenue
        .map_frame(_keep_max("rev"), label="map", needs=["rev"], barrier=True)
        .join(_lazy(data, "supplier").select(["s_suppkey", "s_name", "s_address", "s_phone"]),
              left_on="l_suppkey", right_on="s_suppkey")
        .sort("l_suppkey")
    )


def q16(data: TPCHData) -> LazyFrame:
    """Supplier counts per part attribute combination, excluding complainers."""
    complainers = (
        _lazy(data, "supplier")
        .filter(col("s_comment").str_contains("carefully.*requests"))
        .select(["s_suppkey"])
    )
    return (
        _lazy(data, "partsupp")
        .join(_lazy(data, "part"), left_on="ps_partkey", right_on="p_partkey")
        .filter((col("p_brand") != "Brand#45") &
                (~col("p_type").str_startswith("MEDIUM POLISHED")) &
                col("p_size").is_in([49, 14, 23, 45, 19, 3, 36, 9]))
        .join(complainers, left_on="ps_suppkey", right_on="s_suppkey", how="anti")
        .group_agg(["p_brand", "p_type", "p_size"], {"ps_suppkey": "nunique"})
        .sort(["ps_suppkey", "p_brand", "p_type", "p_size"],
              ascending=[False, True, True, True])
    )


def q17(data: TPCHData) -> LazyFrame:
    """Average yearly revenue lost if small orders were not filled."""
    target_parts = (
        _lazy(data, "part")
        .filter((col("p_brand") == "Brand#23") & (col("p_container") == "MED BOX"))
        .select(["p_partkey"])
    )
    lineitem = _lazy(data, "lineitem").join(target_parts, left_on="l_partkey",
                                            right_on="p_partkey")
    avg_quantity = (
        lineitem.group_agg("l_partkey", {"l_quantity": "mean"})
        .map_frame(lambda f: f.rename({"l_quantity": "avg_qty"}), label="map",
                   needs=["l_quantity"], barrier=False)
    )
    return (
        lineitem
        .join(avg_quantity, on="l_partkey")
        .filter(col("l_quantity") < col("avg_qty") * 0.2)
        .with_column("bucket", lit(1))
        .group_agg("bucket", {"l_extendedprice": "sum"})
    )


# --------------------------------------------------------------------------- #
# Q18 - Q22
# --------------------------------------------------------------------------- #
def q18(data: TPCHData) -> LazyFrame:
    """Large-volume customers (orders above a total quantity threshold)."""
    big_orders = (
        _lazy(data, "lineitem")
        .group_agg("l_orderkey", {"l_quantity": "sum"})
        .filter(col("l_quantity") > 300)
        .map_frame(lambda f: f.rename({"l_quantity": "total_qty"}), label="map",
                   needs=["l_quantity"], barrier=False)
    )
    return (
        big_orders
        .join(_lazy(data, "orders"), left_on="l_orderkey", right_on="o_orderkey")
        .join(_lazy(data, "customer").select(["c_custkey", "c_name"]),
              left_on="o_custkey", right_on="c_custkey")
        .select(["c_name", "o_custkey", "l_orderkey", "o_orderdate", "o_totalprice", "total_qty"])
        .sort(["o_totalprice", "o_orderdate"], ascending=[False, True])
        .limit(100)
    )


def q19(data: TPCHData) -> LazyFrame:
    """Discounted revenue for three brand/container/quantity combinations."""
    joined = (
        _lazy(data, "lineitem")
        .filter(col("l_shipmode").is_in(["AIR", "REG AIR"]) &
                (col("l_shipinstruct") == "DELIVER IN PERSON"))
        .join(_lazy(data, "part"), left_on="l_partkey", right_on="p_partkey")
    )
    predicate = (
        ((col("p_brand") == "Brand#12") & col("p_container").str_contains("SM") &
         (col("l_quantity") >= 1) & (col("l_quantity") <= 11) & (col("p_size") <= 5)) |
        ((col("p_brand") == "Brand#23") & col("p_container").str_contains("MED") &
         (col("l_quantity") >= 10) & (col("l_quantity") <= 20) & (col("p_size") <= 10)) |
        ((col("p_brand") == "Brand#34") & col("p_container").str_contains("LG") &
         (col("l_quantity") >= 20) & (col("l_quantity") <= 30) & (col("p_size") <= 15))
    )
    return (
        joined
        .filter(predicate)
        .with_column("revenue", col("l_extendedprice") * (lit(1) - col("l_discount")))
        .with_column("bucket", lit(1))
        .group_agg("bucket", {"revenue": "sum"})
    )


def q20(data: TPCHData) -> LazyFrame:
    """Suppliers with excess stock of forest parts in Canada."""
    forest_parts = _lazy(data, "part").filter(col("p_name").str_startswith("forest")) \
                                      .select(["p_partkey"])
    shipped = (
        _lazy(data, "lineitem")
        .filter((col("l_shipdate") >= _date(1994, 1, 1)) & (col("l_shipdate") < _date(1995, 1, 1)))
        .group_agg(["l_partkey", "l_suppkey"], {"l_quantity": "sum"})
        .map_frame(lambda f: f.rename({"l_quantity": "shipped_qty"}), label="map",
                   needs=["l_quantity"], barrier=False)
    )
    excess = (
        _lazy(data, "partsupp")
        .join(forest_parts, left_on="ps_partkey", right_on="p_partkey")
        .join(shipped, left_on=["ps_partkey", "ps_suppkey"], right_on=["l_partkey", "l_suppkey"],
              how="left")
        .fill_nulls({"shipped_qty": 0.0})
        .filter(col("ps_availqty") > col("shipped_qty") * 0.5)
        .select(["ps_suppkey"])
        .distinct()
    )
    return (
        _lazy(data, "supplier")
        .join(_lazy(data, "nation").select(["n_nationkey", "n_name"]),
              left_on="s_nationkey", right_on="n_nationkey")
        .filter(col("n_name") == "CANADA")
        .join(excess, left_on="s_suppkey", right_on="ps_suppkey", how="semi")
        .select(["s_name", "s_address"])
        .sort("s_name")
    )


def q21(data: TPCHData) -> LazyFrame:
    """Suppliers who kept multi-supplier orders waiting (Saudi Arabia)."""
    late_lines = (
        _lazy(data, "lineitem")
        .filter(col("l_receiptdate") > col("l_commitdate"))
        .join(_lazy(data, "orders").select(["o_orderkey", "o_orderstatus"]),
              left_on="l_orderkey", right_on="o_orderkey")
        .filter(col("o_orderstatus") == "F")
    )
    suppliers_per_order = (
        _lazy(data, "lineitem")
        .group_agg("l_orderkey", {"l_suppkey": "nunique"})
        .map_frame(lambda f: f.rename({"l_suppkey": "suppliers_in_order"}), label="map",
                   needs=["l_suppkey"], barrier=False)
    )
    return (
        late_lines
        .join(suppliers_per_order, on="l_orderkey")
        .filter(col("suppliers_in_order") > 1)
        .join(_lazy(data, "supplier").select(["s_suppkey", "s_name", "s_nationkey"]),
              left_on="l_suppkey", right_on="s_suppkey")
        .join(_lazy(data, "nation").select(["n_nationkey", "n_name"]),
              left_on="s_nationkey", right_on="n_nationkey")
        .filter(col("n_name") == "SAUDI ARABIA")
        .group_agg("s_name", {"l_orderkey": "nunique"})
        .sort(["l_orderkey", "s_name"], ascending=[False, True])
        .limit(100)
    )


def q22(data: TPCHData) -> LazyFrame:
    """Customers from selected country codes with no orders but good balance."""
    country_codes = ["13", "31", "23", "29", "30", "18", "17"]
    customers = (
        _lazy(data, "customer")
        .with_column("cntrycode", col("c_phone").apply(lambda v: v[:2], dtype="string"))
        .filter(col("cntrycode").is_in(country_codes))
    )
    with_orders = _lazy(data, "orders").select(["o_custkey"]).distinct()
    return (
        customers
        .join(with_orders, left_on="c_custkey", right_on="o_custkey", how="anti")
        .map_frame(_filter_above_global_mean, label="map",
                   needs=["c_acctbal", "cntrycode"], barrier=True)
        .group_agg("cntrycode", {"c_acctbal": ["count", "sum"]})
        .sort("cntrycode")
    )


# --------------------------------------------------------------------------- #
# helpers used by map_frame steps
# --------------------------------------------------------------------------- #
def _cast_bool_to_int(columns: list[str]) -> Callable[[DataFrame], DataFrame]:
    def mapper(frame: DataFrame) -> DataFrame:
        return frame.cast({name: "int64" for name in columns if name in frame.columns})
    return mapper


def _promo_ratio(frame: DataFrame) -> DataFrame:
    """Final scalar of Q14: 100 * promo revenue / total revenue."""
    revenue = frame["revenue"]
    promo_mask = frame["is_promo"].to_numpy_bool()
    total = revenue.sum()
    promo = revenue.filter(promo_mask).sum()
    ratio = 100.0 * promo / total if total else 0.0
    return DataFrame({"promo_revenue_pct": [ratio]})


def _keep_max(column: str) -> Callable[[DataFrame], DataFrame]:
    def mapper(frame: DataFrame) -> DataFrame:
        top = frame[column].max()
        if top is None:
            return frame
        return frame.filter(frame[column].ge(top))
    return mapper


def _filter_above_global_mean(frame: DataFrame) -> DataFrame:
    """Q22 inner predicate: keep customers above the positive-balance mean."""
    positive = frame["c_acctbal"].filter(frame["c_acctbal"].gt(0.0).to_numpy_bool())
    threshold = positive.mean() or 0.0
    return frame.filter(frame["c_acctbal"].gt(threshold).to_numpy_bool())


QUERIES: dict[str, Callable[[TPCHData], LazyFrame]] = {
    f"q{i:02d}": fn for i, fn in enumerate(
        [q01, q02, q03, q04, q05, q06, q07, q08, q09, q10, q11,
         q12, q13, q14, q15, q16, q17, q18, q19, q20, q21, q22], start=1)
}


def query_names() -> list[str]:
    """The 22 query identifiers, in order (``q01`` ... ``q22``)."""
    return list(QUERIES)


def get_query(name: str) -> Callable[[TPCHData], LazyFrame]:
    """Look up a query builder by identifier."""
    try:
        return QUERIES[name]
    except KeyError:
        raise KeyError(f"unknown TPC-H query {name!r}; expected q01..q22") from None
