"""TPC-H schema constants.

The eight tables of the TPC-H benchmark with their nominal cardinalities per
scale factor (SF).  The paper runs the 22 queries at SF 10 — the largest scale
that fits the 40 GB of GPU memory — so that is the nominal scale the cost
model prices; the physical generator produces a much smaller sample.
"""

from __future__ import annotations

__all__ = ["TABLE_CARDINALITY_PER_SF", "FIXED_TABLES", "TABLE_NAMES", "rows_at_scale",
           "REGIONS", "NATIONS", "SEGMENTS", "PRIORITIES", "SHIP_MODES", "RETURN_FLAGS",
           "ORDER_STATUS", "TPCH_NOMINAL_SCALE_FACTOR"]

#: Rows per unit scale factor (TPC-H specification, section 4.2.3).
TABLE_CARDINALITY_PER_SF: dict[str, int] = {
    "supplier": 10_000,
    "part": 200_000,
    "partsupp": 800_000,
    "customer": 150_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Tables whose size does not depend on the scale factor.
FIXED_TABLES: dict[str, int] = {
    "nation": 25,
    "region": 5,
}

TABLE_NAMES = tuple(TABLE_CARDINALITY_PER_SF) + tuple(FIXED_TABLES)

#: The scale factor the paper evaluates (TPC-H 10 GB).
TPCH_NOMINAL_SCALE_FACTOR = 10.0

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: (nation, region index) pairs, following the TPC-H nation table.
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
RETURN_FLAGS = ["R", "A", "N"]
ORDER_STATUS = ["F", "O", "P"]


def rows_at_scale(table: str, scale_factor: float) -> int:
    """Nominal row count of a table at the given scale factor."""
    if table in FIXED_TABLES:
        return FIXED_TABLES[table]
    if table in TABLE_CARDINALITY_PER_SF:
        return max(1, int(TABLE_CARDINALITY_PER_SF[table] * scale_factor))
    raise KeyError(f"unknown TPC-H table {table!r}; available: {TABLE_NAMES}")
