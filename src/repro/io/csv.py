"""CSV reader and writer for the substrate.

The reader supports the features the paper's I/O stage exercises:

* schema inference from a configurable sample of rows (or an explicit schema);
* chunked reading (the strategy Vaex and DataTable use to bound memory);
* projection (``columns=...``), which the lazy engines' projection pushdown
  exploits to avoid materializing unused columns;
* empty strings decoded as nulls.

The writer streams rows out in chunks and never materializes the textual
representation of the whole frame.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..frame.column import Column
from ..frame.datetimes import ns_to_datetime, parse_datetime_scalar
from ..frame.dtypes import BOOL, DATETIME, DType, FLOAT64, INT64, STRING
from ..frame.errors import IOFormatError
from ..frame.frame import DataFrame, concat_rows
from .schema import Schema, infer_schema

__all__ = ["read_csv", "write_csv", "scan_csv_chunks", "csv_row_count"]

_TRUE = {"true", "t", "yes", "1"}
_FALSE = {"false", "f", "no", "0"}


def _decode_cell(text: str | None, dtype: DType):
    if text is None:
        return None
    value = text.strip()
    if not value:
        return None
    try:
        if dtype is INT64:
            return int(float(value)) if "." in value or "e" in value.lower() else int(value)
        if dtype is FLOAT64:
            return float(value)
        if dtype is BOOL:
            lowered = value.lower()
            if lowered in _TRUE:
                return True
            if lowered in _FALSE:
                return False
            return None
        if dtype is DATETIME:
            return parse_datetime_scalar(value)
    except ValueError:
        return None
    return value


def _rows_to_frame(header: Sequence[str], rows: list[Sequence[str]], schema: Schema,
                   columns: Sequence[str] | None) -> DataFrame:
    wanted = list(columns) if columns is not None else list(header)
    positions = {name: i for i, name in enumerate(header)}
    data: dict[str, Column] = {}
    for name in wanted:
        if name not in positions:
            raise IOFormatError(f"column {name!r} not present in CSV header")
        dtype = schema[name] if name in schema else STRING
        pos = positions[name]
        decoded = [_decode_cell(row[pos] if pos < len(row) else None, dtype) for row in rows]
        data[name] = Column.from_values(decoded, dtype)
    return DataFrame(data)


def scan_csv_chunks(
    path: "str | Path",
    chunk_rows: int = 50_000,
    columns: Sequence[str] | None = None,
    schema: Schema | None = None,
    delimiter: str = ",",
    sample_rows: int = 1000,
) -> Iterator[DataFrame]:
    """Yield the CSV file as a sequence of DataFrame chunks.

    This is the streaming entry point used by the Vaex- and DataTable-style
    engines; :func:`read_csv` simply concatenates the chunks.
    """
    path = Path(path)
    if not path.exists():
        raise IOFormatError(f"CSV file not found: {path}")
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise IOFormatError(f"CSV file {path} is empty") from None
        header = [h.strip() for h in header]

        buffered: list[Sequence[str]] = []
        if schema is None:
            for row in reader:
                buffered.append(row)
                if len(buffered) >= sample_rows:
                    break
            schema = infer_schema(header, buffered)

        chunk: list[Sequence[str]] = []
        emitted = False
        for row in buffered:
            chunk.append(row)
            if len(chunk) >= chunk_rows:
                yield _rows_to_frame(header, chunk, schema, columns)
                emitted = True
                chunk = []
        for row in reader:
            chunk.append(row)
            if len(chunk) >= chunk_rows:
                yield _rows_to_frame(header, chunk, schema, columns)
                emitted = True
                chunk = []
        if chunk or not emitted:
            yield _rows_to_frame(header, chunk, schema, columns)


def read_csv(
    path: "str | Path",
    columns: Sequence[str] | None = None,
    schema: Schema | None = None,
    delimiter: str = ",",
    chunk_rows: int = 100_000,
) -> DataFrame:
    """Read a CSV file into a DataFrame (the ``read`` preparator)."""
    chunks = list(scan_csv_chunks(path, chunk_rows=chunk_rows, columns=columns,
                                  schema=schema, delimiter=delimiter))
    if len(chunks) == 1:
        return chunks[0]
    return concat_rows(chunks)


def _encode_cell(value, dtype: DType) -> str:
    if value is None:
        return ""
    if dtype is DATETIME:
        return ns_to_datetime(int(value)).strftime("%Y-%m-%d %H:%M:%S")
    if dtype is BOOL:
        return "true" if value else "false"
    if dtype is FLOAT64:
        return repr(float(value))
    return str(value)


def write_csv(frame: DataFrame, path: "str | Path", delimiter: str = ",",
              chunk_rows: int = 100_000) -> int:
    """Write a DataFrame to CSV (the ``write`` preparator); returns bytes written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    dtypes = frame.dtypes
    names = frame.columns
    lists = {name: frame[name].to_list() for name in names}
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(names)
        for start in range(0, frame.num_rows, chunk_rows):
            stop = min(frame.num_rows, start + chunk_rows)
            for i in range(start, stop):
                writer.writerow([_encode_cell(lists[name][i], dtypes[name]) for name in names])
    return path.stat().st_size


def csv_row_count(path: "str | Path") -> int:
    """Number of data rows in a CSV file (cheap line count, header excluded)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return max(0, sum(1 for _ in handle) - 1)
