"""Schema description and inference for files on disk.

A :class:`Schema` maps column names to logical dtypes and can be inferred from
a sample of textual values (CSV) or stored alongside the columnar binary
format.  Inference follows the conservative strategy the dataframe libraries
in the paper use for CSV ingestion: try integer, then float, then boolean,
then datetime, otherwise string; a column with any unparseable value falls
back to string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..frame.datetimes import parse_datetime_scalar
from ..frame.dtypes import BOOL, DATETIME, DType, FLOAT64, INT64, STRING, parse_dtype

__all__ = ["Schema", "infer_value_dtype", "infer_schema"]

_TRUE_LITERALS = {"true", "false", "t", "f", "yes", "no"}


@dataclass
class Schema:
    """Ordered mapping of column name to logical dtype."""

    fields: dict[str, DType]

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, "DType | str"]) -> "Schema":
        return cls({name: parse_dtype(dtype) for name, dtype in mapping.items()})

    @property
    def names(self) -> list[str]:
        return list(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __getitem__(self, name: str) -> DType:
        return self.fields[name]

    def __contains__(self, name: str) -> bool:
        return name in self.fields

    def __iter__(self):
        return iter(self.fields.items())

    def select(self, names: Sequence[str]) -> "Schema":
        return Schema({name: self.fields[name] for name in names if name in self.fields})

    def to_dict(self) -> dict[str, str]:
        return {name: dtype.value for name, dtype in self.fields.items()}

    @classmethod
    def from_dict(cls, mapping: Mapping[str, str]) -> "Schema":
        return cls.from_mapping(mapping)


def infer_value_dtype(text: str) -> DType:
    """Dtype of a single textual value (empty strings are treated as nulls)."""
    value = text.strip()
    if not value:
        return FLOAT64  # null-only contributions default to float
    lowered = value.lower()
    if lowered in _TRUE_LITERALS:
        return BOOL
    try:
        int(value)
        return INT64
    except ValueError:
        pass
    try:
        float(value)
        return FLOAT64
    except ValueError:
        pass
    if parse_datetime_scalar(value) is not None and len(value) >= 6:
        return DATETIME
    return STRING


_PROMOTION = {
    (INT64, FLOAT64): FLOAT64,
    (FLOAT64, INT64): FLOAT64,
    (BOOL, INT64): INT64,
    (INT64, BOOL): INT64,
    (BOOL, FLOAT64): FLOAT64,
    (FLOAT64, BOOL): FLOAT64,
}


def _merge(current: DType | None, new: DType) -> DType:
    if current is None or current == new:
        return new
    promoted = _PROMOTION.get((current, new))
    if promoted is not None:
        return promoted
    return STRING


def infer_schema(header: Sequence[str], sample_rows: Iterable[Sequence[str]]) -> Schema:
    """Infer a schema from a CSV header and a sample of parsed rows."""
    merged: list[DType | None] = [None] * len(header)
    saw_value = [False] * len(header)
    for row in sample_rows:
        for i, cell in enumerate(row[: len(header)]):
            if cell is None or not cell.strip():
                continue
            saw_value[i] = True
            merged[i] = _merge(merged[i], infer_value_dtype(cell))
    fields: dict[str, DType] = {}
    for name, dtype, seen in zip(header, merged, saw_value):
        fields[name] = dtype if (dtype is not None and seen) else STRING if not seen else dtype
        if fields[name] is None:
            fields[name] = STRING
    return Schema(fields)
