"""``rparquet``: a minimal columnar binary file format.

The paper's I/O experiments (Figures 3 and 4) compare CSV against Parquet.
Parquet itself (and pyarrow) is unavailable in this environment, so this
module implements a small columnar format that preserves the properties the
comparison depends on:

* **column-oriented layout** — each column is stored contiguously, so reading
  a projection only touches the requested columns (unlike CSV);
* **typed, binary encoding** — numeric columns are raw little-endian numpy
  buffers, strings are length-prefixed UTF-8, nulls are a packed validity
  bitmap; no text parsing is needed on read;
* **lightweight compression** — buffers are compressed with zlib, mirroring
  Parquet's smaller on-disk footprint and its extra encode/decode cost;
* **embedded schema + row count metadata**, so schema inference is free.

File layout::

    magic "RPQ1" | uvarint header_len | JSON header | column blocks ...

The JSON header stores, per column: name, dtype, compressed sizes and offsets
of the validity and data blocks.  Categorical columns are materialized as
strings on write (like Parquet's dictionary pages being transparent).
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Sequence

import numpy as np

from ..frame.column import Column
from ..frame.dtypes import (
    BOOL,
    CATEGORICAL,
    DATETIME,
    DType,
    FLOAT64,
    INT64,
    STRING,
    parse_dtype,
)
from ..frame.errors import IOFormatError
from ..frame.frame import DataFrame
from .schema import Schema

__all__ = ["write_rparquet", "read_rparquet", "read_rparquet_schema"]

_MAGIC = b"RPQ1"
_NUMERIC_STORAGE = {INT64: "<i8", FLOAT64: "<f8", BOOL: "<u1", DATETIME: "<i8"}


def _encode_validity(validity: np.ndarray) -> bytes:
    return zlib.compress(np.packbits(validity).tobytes(), level=1)


def _decode_validity(blob: bytes, length: int) -> np.ndarray:
    packed = np.frombuffer(zlib.decompress(blob), dtype=np.uint8)
    return np.unpackbits(packed)[:length].astype(bool)


def _encode_data(column: Column) -> tuple[bytes, str]:
    dtype = column.dtype
    if dtype is CATEGORICAL:
        column = column.cast(STRING)
        dtype = STRING
    if dtype in _NUMERIC_STORAGE:
        buffer = np.ascontiguousarray(column.values, dtype=np.dtype(_NUMERIC_STORAGE[dtype])).tobytes()
        return zlib.compress(buffer, level=1), dtype.value
    # strings: length-prefixed UTF-8, nulls as zero-length entries
    parts: list[bytes] = []
    for value, ok in zip(column.to_string_array(), column.validity):
        encoded = value.encode("utf-8") if (ok and value is not None) else b""
        parts.append(struct.pack("<I", len(encoded)))
        parts.append(encoded)
    return zlib.compress(b"".join(parts), level=1), STRING.value


def _decode_data(blob: bytes, dtype: DType, length: int, validity: np.ndarray) -> Column:
    raw = zlib.decompress(blob)
    if dtype in _NUMERIC_STORAGE:
        values = np.frombuffer(raw, dtype=np.dtype(_NUMERIC_STORAGE[dtype])).copy()
        if dtype is BOOL:
            values = values.astype(bool)
        elif dtype is INT64 or dtype is DATETIME:
            values = values.astype(np.int64)
        else:
            values = values.astype(np.float64)
        return Column(values[:length], dtype, validity)
    values = np.empty(length, dtype=object)
    offset = 0
    for i in range(length):
        (size,) = struct.unpack_from("<I", raw, offset)
        offset += 4
        text = raw[offset:offset + size].decode("utf-8") if size else None
        offset += size
        values[i] = text if validity[i] else None
    return Column(values, STRING, validity)


def write_rparquet(frame: DataFrame, path: "str | Path") -> int:
    """Write a DataFrame in the rparquet columnar format; returns bytes written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blocks: list[bytes] = []
    header: dict = {"num_rows": frame.num_rows, "columns": []}
    offset = 0
    for name in frame.columns:
        column = frame[name]
        validity_blob = _encode_validity(column.validity)
        data_blob, stored_dtype = _encode_data(column)
        header["columns"].append({
            "name": name,
            "dtype": stored_dtype,
            "validity_offset": offset,
            "validity_size": len(validity_blob),
            "data_offset": offset + len(validity_blob),
            "data_size": len(data_blob),
        })
        blocks.append(validity_blob)
        blocks.append(data_blob)
        offset += len(validity_blob) + len(data_blob)
    header_blob = json.dumps(header).encode("utf-8")
    with path.open("wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<I", len(header_blob)))
        handle.write(header_blob)
        for block in blocks:
            handle.write(block)
    return path.stat().st_size


def _read_header(path: Path) -> tuple[dict, int]:
    with path.open("rb") as handle:
        magic = handle.read(4)
        if magic != _MAGIC:
            raise IOFormatError(f"{path} is not an rparquet file (bad magic {magic!r})")
        (header_len,) = struct.unpack("<I", handle.read(4))
        header = json.loads(handle.read(header_len).decode("utf-8"))
        return header, 8 + header_len


def read_rparquet_schema(path: "str | Path") -> Schema:
    """Read only the embedded schema (no column data is touched)."""
    header, _ = _read_header(Path(path))
    return Schema.from_mapping({c["name"]: c["dtype"] for c in header["columns"]})


def read_rparquet(path: "str | Path", columns: Sequence[str] | None = None) -> DataFrame:
    """Read an rparquet file, optionally projecting a subset of columns."""
    path = Path(path)
    if not path.exists():
        raise IOFormatError(f"rparquet file not found: {path}")
    header, base_offset = _read_header(path)
    num_rows = header["num_rows"]
    wanted = list(columns) if columns is not None else [c["name"] for c in header["columns"]]
    available = {c["name"]: c for c in header["columns"]}
    missing = [name for name in wanted if name not in available]
    if missing:
        raise IOFormatError(f"columns not present in {path}: {missing}")
    data: dict[str, Column] = {}
    with path.open("rb") as handle:
        for name in wanted:
            meta = available[name]
            dtype = parse_dtype(meta["dtype"])
            handle.seek(base_offset + meta["validity_offset"])
            validity = _decode_validity(handle.read(meta["validity_size"]), num_rows)
            handle.seek(base_offset + meta["data_offset"])
            data[name] = _decode_data(handle.read(meta["data_size"]), dtype, num_rows, validity)
    return DataFrame(data)
