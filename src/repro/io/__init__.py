"""File I/O for the substrate: CSV and the rparquet columnar binary format."""

from .csv import csv_row_count, read_csv, scan_csv_chunks, write_csv
from .rparquet import read_rparquet, read_rparquet_schema, write_rparquet
from .schema import Schema, infer_schema, infer_value_dtype

__all__ = [
    "read_csv",
    "scan_columns",
    "write_csv",
    "scan_csv_chunks",
    "csv_row_count",
    "read_rparquet",
    "write_rparquet",
    "read_rparquet_schema",
    "Schema",
    "infer_schema",
    "infer_value_dtype",
]


def scan_columns(path, file_format: str = "csv") -> list[str]:
    """Column names present in a file, read from its header/schema alone.

    Used by plan executors to record the pre-projection width of a FileScan
    (the read-side saving of projection pushdown) without paying for a full
    read.
    """
    if file_format in ("csv", "CSV"):
        import csv as _csv

        with open(path, newline="") as handle:
            return next(_csv.reader(handle), [])
    if file_format in ("rparquet", "parquet"):
        return read_rparquet_schema(path).names
    raise ValueError(f"unknown file format {file_format!r}")


def read_any(path, file_format: str = "csv", columns=None):
    """Dispatch helper used by FileScan execution: read CSV or rparquet."""
    if file_format in ("csv", "CSV"):
        return read_csv(path, columns=columns)
    if file_format in ("rparquet", "parquet"):
        return read_rparquet(path, columns=columns)
    raise ValueError(f"unknown file format {file_format!r}")


def write_any(frame, path, file_format: str = "csv") -> int:
    """Dispatch helper: write CSV or rparquet; returns bytes written."""
    if file_format in ("csv", "CSV"):
        return write_csv(frame, path)
    if file_format in ("rparquet", "parquet"):
        return write_rparquet(frame, path)
    raise ValueError(f"unknown file format {file_format!r}")
