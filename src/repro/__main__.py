"""``python -m repro`` — run a slice of the evaluation matrix from the shell.

Examples::

    # full-pipeline timings for two engines on one dataset
    python -m repro --mode full --engines pandas,polars --datasets taxi \
        --scale 0.2 --runs 1 --out results.json

    # the Figure 3 I/O read matrix, written as CSV
    python -m repro --mode read --datasets athlete,taxi --csv io.csv

    # a TPC-H subset
    python -m repro --mode tpch --queries q01,q06 --engines pandas,polars,duckdb

    # parallel sweep over 4 workers, resumable through the persistent cache
    python -m repro --scale 0.05 --jobs 4 --cache-dir .repro-cache
    python -m repro --scale 0.05 --jobs 4 --cache-dir .repro-cache --resume

    # persistent process workers over shared-memory frames, with the sweep
    # profiler's per-cell timing breakdown and machine-readable stats
    python -m repro --jobs 4 --executor process --profile --stats-out stats.json

    # the out-of-core scenario: 2 GiB of RAM — eager engines OOM, streaming
    # engines finish by spilling breaker partitions to disk
    python -m repro --scale 0.05 --memory-limit 2 --streaming both

    # the advisor: predicted-fastest engine × strategy per pipeline, from the
    # statistics layer and the cost model alone — nothing is executed
    python -m repro advise --scale 0.05
    python -m repro advise --tpch --queries q03,q06 --explain

    # the benchmark service: run/advise/explain over HTTP from one warm
    # session, with per-tenant queues, memory budgets and rate limits
    python -m repro serve --port 8642 --tenants team-a=4:10,team-b --memory-limit 8

    # a distributed sweep: shard cells across 2 local worker-host processes
    # (content-hash sharding, shared cache, work-stealing)
    python -m repro --scale 0.05 --hosts 2 --jobs 2 --executor process \
        --cache-dir .repro-cache

    # ... or across real machines: listen, then start one agent per host
    python -m repro --hosts wait:2 --bind 0.0.0.0:7341 --cache-dir /nfs/cache
    python -m repro sweep-worker --connect coordinator:7341 --jobs 4

The selected slice is executed through :class:`repro.Session`; the collected
:class:`~repro.results.ResultSet` is printed as a seconds table (plus the
speedup over Pandas when the baseline took part) and can be saved with
``--out`` (JSON) and/or ``--csv``.

Exit codes are consistent across subcommands: ``0`` success, ``1`` a run that
failed or produced no measurements, ``2`` usage errors (including unknown
subcommands and unknown engines/datasets/queries).
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .config import ExperimentConfig
from .experiments.fig8_out_of_core import constrained_machine
from .experiments.tables import format_table
from .results import ResultSet
from .session import Session
from .simulate.hardware import LAPTOP, PAPER_SERVER, SERVER, WORKSTATION
from .sweep import SweepCache

__all__ = ["main"]

_MACHINES = {
    "laptop": LAPTOP,
    "workstation": WORKSTATION,
    "server": SERVER,
    "paper-server": PAPER_SERVER,
}


#: Subcommands accepted after ``python -m repro`` (anything else exits 2).
_SUBCOMMANDS = ("advise", "serve", "sweep-worker")


def _csv_list(text: str) -> list[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _add_version(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--version", "-V", action="version",
                        version=f"repro {__version__}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a slice of the engine × dataset × pipeline matrix")
    _add_version(parser)
    parser.add_argument("--mode", default="full",
                        choices=["full", "stage", "core", "read", "write", "tpch"],
                        help="measurement mode (default: full)")
    parser.add_argument("--engines", type=_csv_list, default=None, metavar="A,B,...",
                        help="engines to run (default: the paper's engine set)")
    parser.add_argument("--datasets", type=_csv_list, default=None, metavar="A,B,...",
                        help="datasets to run (default: all four)")
    parser.add_argument("--queries", type=_csv_list, default=None, metavar="q01,...",
                        help="TPC-H queries (mode=tpch only; default: all 22)")
    parser.add_argument("--lazy", default="auto",
                        choices=["auto", "eager", "lazy", "both"],
                        help="evaluation strategy for lazy-capable engines")
    parser.add_argument("--streaming", nargs="?", const="on", default=None,
                        choices=["on", "both"],
                        help="morsel-driven streaming execution: bare flag (or "
                             "'on') streams on streaming-capable engines, "
                             "'both' measures a streaming variant next to the "
                             "eager/lazy cells")
    parser.add_argument("--backend", default="object", choices=["object", "dict"],
                        help="physical column backend of the substrate: "
                             "'object' (reference representation) or 'dict' "
                             "(dictionary-encoded strings with vectorized "
                             "join/groupby kernels); part of each cell's "
                             "cache address (default: object)")
    parser.add_argument("--machine", default="paper-server", choices=sorted(_MACHINES),
                        help="machine configuration (default: paper-server)")
    parser.add_argument("--memory-limit", type=float, default=None, metavar="GB",
                        help="cap the machine's RAM at this many GiB (the fig8 "
                             "out-of-core scenario: eager engines OOM, "
                             "streaming engines spill)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="physical sample scale (default: 0.25)")
    parser.add_argument("--runs", type=int, default=2,
                        help="simulated measurement repetitions (default: 2)")
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker-pool size for the sweep scheduler; results "
                             "are identical for any value (default: 1)")
    parser.add_argument("--executor", default="thread", choices=["thread", "process"],
                        help="worker-pool flavour (default: thread)")
    parser.add_argument("--hosts", default=None, metavar="SPEC",
                        help="distribute the sweep across worker hosts: a "
                             "count like '2' spawns that many local "
                             "'sweep-worker' agents (each with --jobs pool "
                             "workers), 'wait:N' listens for N external "
                             "agents on --bind, and they mix: 'local:2,wait:1'")
    parser.add_argument("--bind", default=None, metavar="HOST:PORT",
                        help="coordinator listen address for --hosts "
                             "(default: 127.0.0.1 on an ephemeral port)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent result-cache location (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep from the cache "
                             "(resuming is automatic whenever the cache is "
                             "enabled; this flag makes the intent explicit and "
                             "refuses to combine with --no-cache)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry each failing cell up to N times with "
                             "exponential backoff before quarantining it as a "
                             "failed measurement; with --executor process this "
                             "also respawns crashed workers and reassigns "
                             "their cells (default: 0 = historical fail-fast)")
    parser.add_argument("--cell-timeout", type=float, default=None, metavar="S",
                        help="per-cell wall-clock budget in seconds; a cell "
                             "over budget counts as a failed attempt under "
                             "the --retries policy")
    parser.add_argument("--inject-faults", default=None, metavar="SPEC",
                        help="deterministic fault injection for testing the "
                             "resilience machinery, e.g. "
                             "'kill:1,flaky:2,corrupt:1' (kinds: kill = "
                             "SIGKILL a process worker mid-cell, flaky = one "
                             "transient exception, hang = stall past "
                             "--cell-timeout, corrupt = flip bytes in the "
                             "cell's cache entry, drop = sever a "
                             "coordinator<->host link under --hosts); seeded "
                             "from --seed")
    parser.add_argument("--profile", action="store_true",
                        help="print the sweep profiler's per-cell "
                             "dispatch/serialize/setup/execute/cache timing "
                             "breakdown after the results")
    parser.add_argument("--stats-out", default=None, metavar="stats.json",
                        help="write the sweep scheduler statistics (cell "
                             "counts plus the executed-vs-overhead wall-clock "
                             "split) as JSON")
    parser.add_argument("--out", default=None, metavar="results.json",
                        help="write the ResultSet as JSON")
    parser.add_argument("--csv", default=None, metavar="results.csv",
                        help="write the ResultSet as CSV")
    return parser


def _render(results: ResultSet, mode: str) -> str:
    if not results:
        return "(no measurements)"
    if mode in ("core", "read", "write"):
        rows_key = ("dataset", "stage", "step")
    elif mode == "stage":
        rows_key = ("dataset", "pipeline", "stage")
    else:  # full, tpch
        rows_key = ("dataset", "pipeline")
    # when some engine was measured under several strategies (--lazy both /
    # --streaming both), keep eager, lazy and streaming rows apart
    strategies_by_engine: dict[str, set[str]] = {}
    for m in results.ok():
        strategies_by_engine.setdefault(m.engine, set()).add(m.strategy)
    mixed = any(len(flags) > 1 for flags in strategies_by_engine.values())
    if mixed:
        rows_key = rows_key + ("strategy",)
    table = results.ok().pivot(rows=rows_key, cols="engine", value="seconds", agg="mean")
    engine_order = results.engines()
    rendered = []
    for row_key, per_engine in table.items():
        row = dict(zip(rows_key, row_key if isinstance(row_key, tuple) else (row_key,)))
        row = {k: v for k, v in row.items() if v != ""}
        for engine in engine_order:
            value = per_engine.get(engine)
            row[engine] = "-" if value is None else f"{value:.3f}"
        rendered.append(row)
    sections = [format_table(rendered, f"Simulated seconds ({mode} mode, lower is better)")]

    if mixed:
        # every strategy is compared against the eager Pandas baseline
        base_table = results.ok().filter(strategy="eager").pivot(rows="dataset",
                                                                 cols="engine")
        speedups = {}
        for strategy in ("eager", "lazy", "streaming"):
            strategy_table = results.ok().filter(strategy=strategy).pivot(rows="dataset",
                                                                          cols="engine")
            for dataset, per_engine in strategy_table.items():
                base = base_table.get(dataset, {}).get("pandas")
                if not base or base <= 0:
                    continue
                speedups[(dataset, strategy)] = {engine: base / seconds
                                                 for engine, seconds in per_engine.items()
                                                 if seconds > 0}
    else:
        speedups = results.speedup_vs("pandas", by="dataset")
    if speedups and (mixed or any("pandas" in per for per in speedups.values())):
        rows = []
        for group, per_engine in speedups.items():
            if mixed:
                row = {"dataset": group[0], "strategy": group[1]}
            else:
                row = {"dataset": group}
            for engine in engine_order:
                value = per_engine.get(engine)
                row[engine] = "-" if value is None else f"{value:.2f}x"
            rows.append(row)
        sections.append(format_table(rows, "Speedup over Pandas (higher is better)"))

    failures = results.failures()
    if failures:
        lines = ["Failures:"]
        for m in failures:
            where = "/".join(p for p in (m.dataset, m.pipeline, m.stage, m.step) if p)
            lines.append(f"  {m.engine:<12} {where}: {m.failure_reason}")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def build_advise_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro advise",
        description="Predict the fastest engine × strategy per pipeline "
                    "(cost-model estimation only; nothing is executed)")
    _add_version(parser)
    parser.add_argument("--engines", type=_csv_list, default=None, metavar="A,B,...",
                        help="candidate engines (default: the paper's engine set)")
    parser.add_argument("--datasets", type=_csv_list, default=None, metavar="A,B,...",
                        help="datasets to advise on (default: all four)")
    parser.add_argument("--tpch", action="store_true",
                        help="advise on the TPC-H query plans instead of the "
                             "dataset pipelines")
    parser.add_argument("--queries", type=_csv_list, default=None, metavar="q01,...",
                        help="TPC-H queries (with --tpch; default: all 22)")
    parser.add_argument("--machine", default="paper-server", choices=sorted(_MACHINES),
                        help="machine configuration (default: paper-server)")
    parser.add_argument("--memory-limit", type=float, default=None, metavar="GB",
                        help="cap the machine's RAM at this many GiB (candidates "
                             "the memory model rejects rank as infeasible)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="physical sample scale (default: 0.25)")
    parser.add_argument("--runs", type=int, default=1,
                        help="simulated repetitions (default: 1)")
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument("--top", type=int, default=None, metavar="N",
                        help="show only the N fastest candidates per cell")
    parser.add_argument("--explain", action="store_true",
                        help="also print each cell's logical plan before and "
                             "after optimization, annotated with estimated "
                             "rows/bytes/cost per node")
    return parser


def _advise(argv: list[str]) -> int:
    parser = build_advise_parser()
    args = parser.parse_args(argv)
    machine = _MACHINES[args.machine]
    if args.memory_limit is not None:
        if args.memory_limit <= 0:
            parser.error("--memory-limit must be positive")
        machine = constrained_machine(machine, args.memory_limit)
    if args.queries and not args.tpch:
        parser.error("--queries needs --tpch")
    config = ExperimentConfig(scale=args.scale, runs=args.runs, seed=args.seed,
                              machine=machine)
    if args.datasets:
        config = config.but(datasets=args.datasets)
    session = Session(config)

    try:
        if args.tpch:
            reports = session.advise_tpch(engines=args.engines, queries=args.queries)
        else:
            # the session config already carries any --datasets narrowing
            reports = session.advise(engines=args.engines)
    except KeyError as err:
        print(f"error: {err.args[0] if err.args else err}", file=sys.stderr)
        return 2

    sections = []
    for report in reports:
        section = report.format(top=args.top)
        if args.explain and report.plan is not None:
            section += "\n" + _explain_block(report.plan, report.row_scale)
        sections.append(section)
    print("\n\n".join(sections) if sections else "(nothing to advise on)")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    from .service import DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve run/advise/explain over HTTP from one warm session, "
                    "with per-tenant queues, memory budgets and the shared "
                    "sweep cache")
    _add_version(parser)
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"listen port; 0 picks an ephemeral one "
                             f"(default: {DEFAULT_PORT})")
    parser.add_argument("--workers", type=int, default=4, metavar="N",
                        help="concurrent jobs across all tenants (default: 4)")
    parser.add_argument("--tenants", type=_csv_list, default=None,
                        metavar="a=GB:RPS,b,...",
                        help="pre-registered tenants; 'name=GB' caps that "
                             "tenant's in-flight memory and 'name=GB:RPS' "
                             "adds a token-bucket rate limit (429 + "
                             "Retry-After past it); bare names use "
                             "--memory-limit (unknown tenants register "
                             "themselves on first request)")
    parser.add_argument("--memory-limit", type=float, default=None, metavar="GB",
                        help="default per-tenant memory budget in GiB; jobs "
                             "whose estimated peak would exceed it are "
                             "rejected with HTTP 429 (default: unlimited)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="physical sample scale of the warm session "
                             "(default: 0.05)")
    parser.add_argument("--runs", type=int, default=1,
                        help="simulated repetitions per measurement (default: 1)")
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument("--machine", default="paper-server", choices=sorted(_MACHINES),
                        help="machine configuration (default: paper-server)")
    parser.add_argument("--engines", type=_csv_list, default=None, metavar="A,B,...",
                        help="engine axis of the session (default: the paper's set)")
    parser.add_argument("--datasets", type=_csv_list, default=None, metavar="A,B,...",
                        help="dataset axis of the session (default: all four)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent result-cache location (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache (single-flight "
                             "deduplication still applies)")
    return parser


def _serve(argv: list[str]) -> int:
    import asyncio

    from .service import BenchmarkService

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    config = ExperimentConfig(scale=args.scale, runs=args.runs, seed=args.seed,
                              machine=_MACHINES[args.machine])
    if args.engines:
        config = config.but(engines=args.engines)
    if args.datasets:
        config = config.but(datasets=args.datasets)
    cache = False if args.no_cache else (args.cache_dir or True)
    service = BenchmarkService(config, cache=cache, workers=args.workers,
                               tenants=args.tenants,
                               memory_budget_gb=args.memory_limit,
                               host=args.host, port=args.port)

    async def _amain() -> None:
        await service.start()
        print(f"repro service listening on http://{service.host}:{service.port} "
              f"(scale={config.scale:g}, engines={','.join(config.engines)}, "
              f"datasets={','.join(config.datasets)})", flush=True)
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass
    except OSError as err:  # e.g. port already in use
        print(f"error: {err}", file=sys.stderr)
        return 1
    return 0


def _explain_block(lazy, row_scale: float) -> str:
    """Pre/post-optimization rendering of one report's logical plan."""
    before = lazy.explain(stats=True, row_scale=row_scale)
    after = lazy.explain(optimized=True, stats=True, row_scale=row_scale)
    return ("  plan (unoptimized):\n" + _indent(before)
            + "\n  plan (optimized):\n" + _indent(after))


def _indent(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def build_sweep_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep-worker",
        description="Join a distributed sweep as a worker-host agent: "
                    "connect to a coordinator, rebuild its plan locally, and "
                    "execute granted cells on a local worker pool")
    _add_version(parser)
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the coordinator's listen address")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="local worker-pool size (default: 1)")
    parser.add_argument("--executor", default="thread",
                        choices=["thread", "process"],
                        help="local worker-pool flavour (default: thread)")
    parser.add_argument("--name", default=None,
                        help="host label in the coordinator's statistics "
                             "(default: hostname:pid)")
    return parser


def _sweep_worker(argv: list[str]) -> int:
    from .sweep.distributed import HostWorker

    parser = build_sweep_worker_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"bad --connect address {args.connect!r}; "
                     f"expected HOST:PORT")
    worker = HostWorker(host, int(port), jobs=args.jobs,
                        executor=args.executor, name=args.name)
    try:
        return worker.run()
    except Exception as err:  # noqa: BLE001 — agents exit 1, not a traceback
        print(f"error: sweep-worker failed: {err}", file=sys.stderr)
        return 1


def _parse_hosts_arg(text: str, parser: argparse.ArgumentParser) -> "list[str]":
    """Turn ``--hosts`` ('2', 'wait:2', 'local:2,wait:1') into host labels."""
    labels: "list[str]" = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, count = part.partition(":")
        if name.isdigit() and not count:
            name, count = "local", name
        if name not in ("local", "wait"):
            parser.error(f"bad --hosts entry {part!r}; expected a count, "
                         f"'local[:N]' or 'wait[:N]'")
        try:
            repeat = int(count) if count else 1
        except ValueError:
            parser.error(f"bad count in --hosts entry {part!r}")
        labels += ["local" if name == "local" else "external"] * repeat
    if not labels:
        parser.error(f"--hosts {text!r} selects no hosts")
    return labels


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and not argv[0].startswith("-"):
        if argv[0] == "advise":
            return _advise(argv[1:])
        if argv[0] == "serve":
            return _serve(argv[1:])
        if argv[0] == "sweep-worker":
            return _sweep_worker(argv[1:])
        print(f"error: unknown subcommand {argv[0]!r}; expected one of "
              f"{list(_SUBCOMMANDS)} (or flags for the default sweep — "
              f"see --help)", file=sys.stderr)
        return 2
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.resume and args.no_cache:
        parser.error("--resume needs the result cache; drop --no-cache")
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.streaming is not None and args.mode in ("tpch", "read", "write"):
        parser.error(f"--streaming is not supported in {args.mode} mode "
                     "(use full, stage or core)")
    hosts = None
    if args.hosts:
        if args.mode == "tpch":
            parser.error("--hosts is not supported in tpch mode")
        hosts = _parse_hosts_arg(args.hosts, parser)
    machine = _MACHINES[args.machine]
    if args.memory_limit is not None:
        if args.memory_limit <= 0:
            parser.error("--memory-limit must be positive")
        machine = constrained_machine(machine, args.memory_limit)
    config = ExperimentConfig(scale=args.scale, runs=args.runs, seed=args.seed,
                              machine=machine)
    if args.datasets:
        config = config.but(datasets=args.datasets)
    session = Session(config)
    cache = None if args.no_cache else SweepCache(args.cache_dir)

    if args.retries < 0:
        parser.error("--retries must be non-negative")
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error("--cell-timeout must be positive")
    retry = None
    if args.retries > 0 or args.cell_timeout is not None:
        from .sweep import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retries + 1,
                            cell_timeout=args.cell_timeout)
    fault_plan = None
    if args.inject_faults:
        from .testing.faults import FaultPlan, install_fault_plan

        try:
            fault_plan = FaultPlan.from_spec(args.inject_faults, seed=args.seed)
        except ValueError as err:
            parser.error(str(err))
        install_fault_plan(fault_plan)

    try:
        if args.mode == "tpch":
            results = session.run_tpch(engines=args.engines, queries=args.queries,
                                       backend=args.backend,
                                       workers=args.jobs, cache=cache,
                                       executor=args.executor,
                                       profile=args.profile, retry=retry)
        else:
            lazy = {"auto": None, "eager": False, "lazy": True, "both": "both"}[args.lazy]
            streaming = {None: None, "on": True, "both": "both"}[args.streaming]
            results = session.run(mode=args.mode, engines=args.engines, lazy=lazy,
                                  streaming=streaming, backend=args.backend,
                                  workers=args.jobs, cache=cache,
                                  executor=args.executor,
                                  profile=args.profile, retry=retry,
                                  hosts=hosts, bind=args.bind)
    except KeyError as err:
        print(f"error: {err.args[0] if err.args else err}", file=sys.stderr)
        return 2
    except Exception as err:  # noqa: BLE001 — a failed run exits 1, not a traceback
        print(f"error: run failed: {err}", file=sys.stderr)
        return 1
    finally:
        if fault_plan is not None:
            from .testing.faults import clear_fault_plan

            clear_fault_plan()

    print(_render(results, args.mode))
    if cache is not None and session.last_sweep is not None:
        print(f"\n[sweep] {session.last_sweep.summary()} — cache at {cache.root}")
    if args.profile and session.last_sweep is not None:
        print(f"\nSweep profile (seconds per cell):\n"
              f"{session.last_sweep.profile_table()}")
        if session.last_sweep.distributed:
            print(f"\nDistributed hosts:\n"
                  f"{session.last_sweep.distributed_table()}")
    if args.stats_out and session.last_sweep is not None:
        import json

        with open(args.stats_out, "w", encoding="utf-8") as handle:
            json.dump(session.last_sweep.to_dict(), handle, indent=2)
        print(f"wrote sweep stats to {args.stats_out}")
    if args.out:
        results.to_json(args.out)
        print(f"\nwrote {len(results)} measurements to {args.out}")
    if args.csv:
        results.to_csv(args.csv)
        print(f"wrote {len(results)} measurements to {args.csv}")
    if not results:
        print("error: the selected slice produced no measurements",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
