"""Engine registry: construct simulated engines by name.

The registry is the only place that knows every engine class; experiment
drivers, benchmarks and examples go through :func:`create_engine` /
:func:`create_engines` so that adding an engine is a one-line change.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..plan.optimizer import OptimizerSettings
from ..simulate.hardware import PAPER_SERVER, MachineConfig
from .base import BaseEngine, EngineUnavailableError
from .cudf_engine import CuDFEngine
from .datatable_engine import DataTableEngine
from .duckdb_engine import DuckDBEngine
from .modin_engine import ModinDaskEngine, ModinRayEngine
from .pandas_engine import PandasEngine
from .polars_engine import PolarsEngine
from .spark_engines import SparkPandasEngine, SparkSQLEngine
from .vaex_engine import VaexEngine

__all__ = [
    "ENGINE_CLASSES",
    "DEFAULT_ENGINES",
    "TPCH_ENGINES",
    "create_engine",
    "create_engines",
    "available_engines",
]

ENGINE_CLASSES: dict[str, type[BaseEngine]] = {
    "pandas": PandasEngine,
    "sparkpd": SparkPandasEngine,
    "sparksql": SparkSQLEngine,
    "modin_dask": ModinDaskEngine,
    "modin_ray": ModinRayEngine,
    "polars": PolarsEngine,
    "cudf": CuDFEngine,
    "vaex": VaexEngine,
    "datatable": DataTableEngine,
    "duckdb": DuckDBEngine,
}

#: The engines compared throughout the data-preparation experiments
#: (Figures 1-6); DuckDB joins only for TPC-H (Figure 7).
DEFAULT_ENGINES: tuple[str, ...] = (
    "pandas", "sparkpd", "sparksql", "modin_dask", "modin_ray",
    "polars", "cudf", "vaex", "datatable",
)

TPCH_ENGINES: tuple[str, ...] = DEFAULT_ENGINES + ("duckdb",)


def create_engine(name: str, machine: MachineConfig = PAPER_SERVER,
                  optimizer_settings: OptimizerSettings | None = None) -> BaseEngine:
    """Instantiate one engine by short name.

    Raises :class:`~repro.engines.base.EngineUnavailableError` when the engine
    cannot run on the given machine (CuDF without a GPU).
    """
    try:
        cls = ENGINE_CLASSES[name]
    except KeyError:
        raise KeyError(f"unknown engine {name!r}; available: {sorted(ENGINE_CLASSES)}") from None
    return cls(machine=machine, optimizer_settings=optimizer_settings)


def create_engines(names: Sequence[str] | None = None,
                   machine: MachineConfig = PAPER_SERVER,
                   skip_unavailable: bool = True,
                   optimizer_settings: OptimizerSettings | None = None) -> dict[str, BaseEngine]:
    """Instantiate several engines, optionally skipping unavailable ones.

    The paper itself skips CuDF on GPU-less machine configurations (Section
    4.3), which is what ``skip_unavailable=True`` reproduces.
    """
    engines: dict[str, BaseEngine] = {}
    for name in (names or DEFAULT_ENGINES):
        try:
            engines[name] = create_engine(name, machine, optimizer_settings)
        except EngineUnavailableError:
            if not skip_unavailable:
                raise
    return engines


def available_engines(machine: MachineConfig = PAPER_SERVER,
                      names: Iterable[str] | None = None) -> list[str]:
    """Names of the engines that can run on the given machine."""
    return list(create_engines(list(names) if names else None, machine))
