"""Simulated DuckDB engine.

DuckDB is *not* part of the dataframe comparison (it has no Pandas-like API);
the paper includes it only in the TPC-H experiment as a reference point for
OLAP database systems.  It is modelled here the same way: a vectorized,
multi-threaded SQL executor with full query optimization and larger-than-RAM
spilling, exposed through the same lazy plan interface the TPC-H queries use.
"""

from __future__ import annotations

from .base import BaseEngine

__all__ = ["DuckDBEngine"]


class DuckDBEngine(BaseEngine):
    """In-process analytical SQL engine used as the TPC-H reference point."""

    profile_name = "duckdb"
