"""Base class of the simulated dataframe engines.

An *engine* couples three things:

* a **physical execution strategy** on the substrate — eager per-preparator
  execution, lazy plan building with optimization, chunked streaming,
  partitioned execution, sentinel-null kernels — so that every engine really
  computes the result of every preparator (results are identical across
  engines, which the tests verify);
* an :class:`~repro.simulate.profiles.EngineProfile` and a
  :class:`~repro.simulate.costmodel.CostModel`, which price each executed
  operation on the *nominal* dataset size (the physical data is a small scaled
  sample; the :class:`SimulationContext` carries the scale factor);
* the Pandas-API **compatibility matrix** (Table 3): preparators missing from
  a library's API run through a fallback path that the cost model penalizes,
  mirroring the paper's "implemented by us with best effort / default to
  Pandas" behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core.compat import Compatibility, compatibility
from ..core.pipeline import PipelineStep
from ..core.preparators import Preparator, PreparatorResult, get_preparator
from ..core.stages import Stage
from ..frame.frame import DataFrame
from ..io import read_any, write_any
from ..plan.builder import LazyFrame
from ..plan.executor import ExecutionStats
from ..plan.optimizer import OptimizerSettings
from ..plan.streaming import DEFAULT_BATCH_ROWS, stream_preparator
from ..simulate.clock import OperationRecord, RunReport
from ..simulate.costmodel import CostModel, PlanCost, SimulatedCost
from ..simulate.hardware import PAPER_SERVER, MachineConfig
from ..simulate.memory import SimulatedOOMError
from ..simulate.profiles import EngineProfile, get_profile

__all__ = ["SimulationContext", "BaseEngine", "EngineUnavailableError"]


class EngineUnavailableError(RuntimeError):
    """The engine cannot run on the given machine (e.g. CuDF without a GPU)."""


@dataclass
class SimulationContext:
    """Scale information tying the physical sample to the nominal dataset.

    ``row_scale`` is ``nominal_rows / physical_rows``: the substrate executes
    on the physical sample while the cost model prices the nominal size.
    """

    machine: MachineConfig = PAPER_SERVER
    nominal_rows: int = 0
    physical_rows: int = 0
    dataset_bytes: int = 0
    csv_bytes: int = 0
    parquet_bytes: int = 0
    column_bytes: dict[str, int] = field(default_factory=dict)
    dataset_name: str = ""
    runs: int = 10
    #: Physical column backend the priced ``column_bytes`` were measured on
    #: ("object" or "dict") — pricing provenance, so a context built from a
    #: dictionary-encoded sample is never mistaken for an object-backed one.
    backend: str = "object"

    @property
    def row_scale(self) -> float:
        if self.physical_rows <= 0:
            return 1.0
        return max(1.0, self.nominal_rows / self.physical_rows)

    def nominal_row_count(self, physical_rows: int) -> int:
        return int(round(physical_rows * self.row_scale))

    def bytes_for_columns(self, columns: Sequence[str], physical_rows: int | None = None) -> int:
        """Nominal bytes of the given columns (optionally for a row subset)."""
        if not self.column_bytes:
            rows = self.nominal_rows if physical_rows is None else self.nominal_row_count(physical_rows)
            return rows * max(1, len(columns)) * 16
        total = sum(self.column_bytes.get(name, 0) for name in columns)
        if total == 0:
            total = self.dataset_bytes * max(1, len(columns)) // max(1, len(self.column_bytes))
        if physical_rows is not None and self.nominal_rows > 0:
            fraction = self.nominal_row_count(physical_rows) / self.nominal_rows
            total = int(total * min(1.0, max(fraction, 0.0)))
        return int(total)

    @classmethod
    def for_frame(cls, frame: DataFrame, machine: MachineConfig = PAPER_SERVER,
                  nominal_rows: int | None = None, name: str = "adhoc", runs: int = 10
                  ) -> "SimulationContext":
        """Context for an ad-hoc in-memory frame (examples, tests, TPC-H)."""
        physical = frame.num_rows
        nominal = nominal_rows if nominal_rows is not None else physical
        scale = (nominal / physical) if physical else 1.0
        column_bytes = {c: int(frame[c].memory_usage() * scale) for c in frame.columns}
        dataset_bytes = sum(column_bytes.values())
        return cls(machine=machine, nominal_rows=nominal, physical_rows=physical,
                   dataset_bytes=dataset_bytes, csv_bytes=int(dataset_bytes * 1.1),
                   parquet_bytes=int(dataset_bytes * 0.45), column_bytes=column_bytes,
                   dataset_name=name, runs=runs)


#: Mapping from plan-executor operator labels to cost-model operator classes.
_PLAN_OP_TO_COST_CLASS = {
    "scan": None,
    "read": "read_csv",
    "project": "metadata",
    "filter": "filter",
    "with_column": "elementwise",
    "sort": "sort",
    "groupby": "groupby",
    "join": "join",
    "dedup": "dedup",
    "dropna": "dropna",
    "fillna": "fillna",
    "limit": "metadata",
    "drop": "metadata",
    "pivot": "pivot",
    "onehot": "encode",
    "catenc": "encode",
    "setcase": "string",
    "chdate": "date",
    "norm": "elementwise",
    "map": "elementwise",
}

#: Cost multiplier applied when a preparator is missing from the library API
#: and had to be implemented "with best effort" (Table 3's ◦ entries).
_FALLBACK_PENALTY = 2.5


class BaseEngine:
    """Eager reference engine; every simulated library derives from it."""

    #: Short name of the engine profile (overridden by subclasses).
    profile_name = "pandas"

    def __init__(self, machine: MachineConfig = PAPER_SERVER,
                 optimizer_settings: OptimizerSettings | None = None):
        self.machine = machine
        self.profile: EngineProfile = get_profile(self.profile_name)
        self.cost_model = CostModel(machine)
        self.optimizer_settings = optimizer_settings or OptimizerSettings()
        #: Optional :class:`~repro.core.memo.SubstrateMemo` set by the sweep's
        #: batch execution tier.  When present, physical substrate executions
        #: are served from the memo (pricing always happens per call, so
        #: measurements are bit-identical with or without it); when ``None``
        #: (the default, and always for the sequential reference path) every
        #: call executes the substrate directly.
        self.substrate_memo = None
        self._validate_machine()

    # ------------------------------------------------------------------ #
    # identity / capabilities
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def display_name(self) -> str:
        return self.profile.display_name

    @property
    def supports_lazy(self) -> bool:
        return self.profile.lazy

    def effective_lazy(self, lazy: "bool | None") -> bool:
        """Resolve a laziness request against this engine's capabilities.

        ``None`` means the engine's default (lazy where supported); ``True``
        is honoured only by lazy-capable engines.  This single rule is shared
        by the runner's measurements and the sweep planner's cell coordinates.
        """
        return self.supports_lazy if lazy is None else bool(lazy and self.supports_lazy)

    @property
    def supports_streaming(self) -> bool:
        """Whether the library can run pipelines as a morsel-driven stream."""
        return self.profile.streaming_execution

    def effective_streaming(self, streaming: "bool | None") -> bool:
        """Resolve a streaming request against this engine's capabilities.

        ``None``/``False`` mean eager-or-lazy execution; ``True`` is honoured
        only by engines whose profile declares ``streaming_execution``.  The
        runner's measurements and the sweep planner's cell coordinates share
        this single rule, mirroring :meth:`effective_lazy`.
        """
        return bool(streaming and self.supports_streaming)

    @property
    def supports_parquet(self) -> bool:
        return self.profile.supports_parquet

    def _validate_machine(self) -> None:
        if self.profile.uses_gpu and self.machine.gpu is None:
            raise EngineUnavailableError(
                f"{self.display_name} requires a GPU, but machine "
                f"{self.machine.name!r} has none"
            )

    def compatibility_for(self, preparator: str) -> Compatibility:
        return compatibility(self.name, preparator)

    # ------------------------------------------------------------------ #
    # pricing helpers
    # ------------------------------------------------------------------ #
    def _price(self, op_class: str, physical_rows: int, columns: Sequence[str],
               sim: SimulationContext, *, bytes_in: int | None = None,
               lazy: bool = False, run_index: int = 0,
               pipeline_scope: bool = False, streaming: bool = False) -> SimulatedCost:
        nominal_rows = sim.nominal_row_count(physical_rows)
        if bytes_in is None:
            bytes_in = sim.bytes_for_columns(columns, physical_rows)
        return self.cost_model.estimate(
            self.profile, op_class, nominal_rows, max(1, len(columns)),
            bytes_in=bytes_in, dataset_bytes=sim.dataset_bytes,
            lazy=lazy, run_index=run_index, pipeline_scope=pipeline_scope,
            streaming=streaming,
        )

    def _record(self, step_name: str, op_class: str, stage: Stage, cost: SimulatedCost,
                physical_rows: int, columns: Sequence[str], sim: SimulationContext,
                lazy: bool = False) -> OperationRecord:
        return OperationRecord(
            engine=self.name,
            operation=step_name,
            op_class=op_class,
            stage=stage.value,
            seconds=cost.seconds,
            rows=sim.nominal_row_count(physical_rows),
            columns=max(1, len(columns)),
            peak_bytes=cost.peak_bytes,
            spilled=cost.spilled,
            spilled_bytes=cost.spilled_bytes,
            streamed=cost.streamed,
            lazy=lazy,
        )

    # ------------------------------------------------------------------ #
    # physical execution hooks (overridden by engines with special paths)
    # ------------------------------------------------------------------ #

    #: Row-local preparators the engine evaluates as chunked streaming passes
    #: over row batches (Vaex's virtual columns, DataTable's memory-mapped
    #: kernels).  Empty for whole-frame engines.
    streamable_preparators: frozenset[str] = frozenset()
    #: Rows per chunk of the per-preparator streaming path.
    stream_chunk_rows: int = DEFAULT_BATCH_ROWS

    def _execute_preparator(self, preparator: Preparator, frame: DataFrame,
                            params: Mapping[str, Any]) -> PreparatorResult:
        if (preparator.name in self.streamable_preparators
                and frame.num_rows > self.stream_chunk_rows):
            return stream_preparator(preparator, frame, params, self.stream_chunk_rows)
        return preparator.apply(frame, params)

    def _preparator_path_tag(self, preparator: Preparator, frame: DataFrame) -> str:
        """Physical-execution signature of ``_execute_preparator`` for a call.

        The substrate memo may share one execution's result across engines
        only when this tag matches: identical tag means the *identical code
        path* runs on identical inputs, so the shared result is bit-exact.
        Engines with special physical paths must override this alongside
        ``_execute_preparator``.
        """
        if (preparator.name in self.streamable_preparators
                and frame.num_rows > self.stream_chunk_rows):
            return f"chunk{self.stream_chunk_rows}"
        return "plain"

    # ------------------------------------------------------------------ #
    # single-step execution (function-core mode)
    # ------------------------------------------------------------------ #
    def execute_step(self, frame: DataFrame, step: "PipelineStep | str",
                     sim: SimulationContext, params: Mapping[str, Any] | None = None,
                     run_index: int = 0, lazy: bool = False,
                     pipeline_scope: bool = False,
                     streaming: bool = False) -> tuple[PreparatorResult, OperationRecord]:
        """Run one preparator eagerly and price it.

        ``streaming=True`` prices the step as part of a morsel-driven pipeline
        (bounded windows, breakers spill instead of OOM).  Raises
        :class:`~repro.simulate.memory.SimulatedOOMError` when the memory
        model rejects the operation on this machine.
        """
        if isinstance(step, PipelineStep):
            name, call_params = step.preparator, step.params
        else:
            name, call_params = step, dict(params or {})
        preparator = get_preparator(name)
        touched = preparator.touched_columns(frame, call_params)
        cost = self._price(preparator.op_class, frame.num_rows, touched, sim,
                           lazy=lazy, run_index=run_index, pipeline_scope=pipeline_scope,
                           streaming=streaming)
        if self.compatibility_for(name) is Compatibility.MISSING:
            cost.seconds *= self._fallback_penalty(preparator)
        if self.substrate_memo is not None:
            result = self.substrate_memo.preparator_result(self, preparator, frame,
                                                           call_params)
        else:
            result = self._execute_preparator(preparator, frame, call_params)
        record = self._record(name, preparator.op_class, preparator.stage, cost,
                              frame.num_rows, touched, sim, lazy=lazy)
        return result, record

    def _fallback_penalty(self, preparator: Preparator) -> float:
        return _FALLBACK_PENALTY

    # ------------------------------------------------------------------ #
    # I/O
    # ------------------------------------------------------------------ #
    def read_dataset(self, frame: DataFrame, sim: SimulationContext,
                     file_format: str = "csv", path: "str | Path | None" = None,
                     run_index: int = 0,
                     streaming: bool = False) -> tuple[DataFrame, OperationRecord]:
        """Price (and optionally physically perform) loading the dataset."""
        if file_format in ("parquet", "rparquet") and not self.supports_parquet:
            raise EngineUnavailableError(f"{self.display_name} does not support Parquet")
        op_class = "read_csv" if file_format == "csv" else "read_parquet"
        bytes_in = sim.csv_bytes if op_class == "read_csv" else sim.parquet_bytes
        cost = self._price(op_class, sim.physical_rows, list(sim.column_bytes) or ["*"], sim,
                           bytes_in=bytes_in, run_index=run_index, streaming=streaming)
        loaded = read_any(path, "csv" if file_format == "csv" else "rparquet") if path else frame
        record = self._record("read", op_class, Stage.IO, cost, sim.physical_rows,
                              loaded.columns, sim)
        return loaded, record

    def write_dataset(self, frame: DataFrame, sim: SimulationContext,
                      file_format: str = "csv", path: "str | Path | None" = None,
                      run_index: int = 0, streaming: bool = False) -> OperationRecord:
        """Price (and optionally physically perform) writing the frame."""
        if file_format in ("parquet", "rparquet") and not self.supports_parquet:
            raise EngineUnavailableError(f"{self.display_name} does not support Parquet")
        op_class = "write_csv" if file_format == "csv" else "write_parquet"
        bytes_out = sim.csv_bytes if op_class == "write_csv" else sim.parquet_bytes
        cost = self._price(op_class, frame.num_rows, frame.columns, sim,
                           bytes_in=bytes_out, run_index=run_index, streaming=streaming)
        if path is not None:
            write_any(frame, path, "csv" if file_format == "csv" else "rparquet")
        return self._record("write", op_class, Stage.IO, cost, frame.num_rows,
                            frame.columns, sim)

    # ------------------------------------------------------------------ #
    # multi-step execution (pipeline-stage / pipeline-full modes)
    # ------------------------------------------------------------------ #
    def execute_steps(self, frame: DataFrame, steps: Sequence[PipelineStep],
                      sim: SimulationContext, *, lazy: bool = False, run_index: int = 0,
                      report: RunReport | None = None,
                      pipeline_scope: bool = True,
                      streaming: bool = False) -> tuple[DataFrame, RunReport]:
        """Run a sequence of steps eagerly, lazily or as a morsel stream.

        Lazy execution (only for engines whose library supports it) batches
        consecutive *chainable, lazily expressible* steps into one logical
        plan, optimizes it and prices the operators that actually ran —
        reproducing the Section 4.2 comparison.  Streaming execution (only
        for engines whose profile declares ``streaming_execution``) runs the
        same plans through the morsel-driven
        :class:`~repro.plan.streaming.StreamingExecutor`: results are
        bit-identical, but the memory model prices bounded batch windows and
        degrades breaker overflow to simulated spill instead of OOM.
        """
        report = report or RunReport(engine=self.name, label="steps")
        if streaming and self.supports_streaming:
            frame = self._execute_steps_plan(frame, steps, sim, run_index, report,
                                             pipeline_scope, streaming=True)
            return frame, report
        if lazy and self.supports_lazy:
            frame = self._execute_steps_plan(frame, steps, sim, run_index, report,
                                             pipeline_scope, streaming=False)
            return frame, report
        current = frame
        for step in steps:
            result, record = self.execute_step(current, step, sim, run_index=run_index,
                                               pipeline_scope=pipeline_scope)
            report.add(record)
            if result.chained:
                current = result.frame
        return current, report

    # -- plan-based paths (lazy and streaming) --------------------------- #
    def _execute_steps_plan(self, frame: DataFrame, steps: Sequence[PipelineStep],
                            sim: SimulationContext, run_index: int, report: RunReport,
                            pipeline_scope: bool, streaming: bool) -> DataFrame:
        current = frame
        pending: LazyFrame | None = None
        segment: list[PipelineStep] = []  # the steps folded into ``pending``

        def collect(lazy_frame: LazyFrame) -> "tuple[DataFrame, ExecutionStats]":
            if streaming:
                return lazy_frame.collect_streaming(
                    self.optimizer_settings, batch_rows=self.stream_chunk_rows,
                    cost_model=self.cost_model, profile=self.profile)
            return lazy_frame.collect_with_stats(
                self.optimizer_settings,
                cost_model=self.cost_model, profile=self.profile)

        def flush(lazy_frame: LazyFrame | None) -> None:
            nonlocal current
            if lazy_frame is None:
                return
            if self.substrate_memo is not None:
                # Keyed per profile: cost-based optimization may pick a
                # different physical plan per engine, so plan segments are
                # never shared across profiles — only across the per-cell
                # ``runs`` repetitions (and identical cells), which execute
                # byte-identical plans on the same base frame.
                collected, stats = self.substrate_memo.collect_plan(
                    self, current, self._plan_segment_key(segment, streaming),
                    lambda: collect(lazy_frame))
            else:
                collected, stats = collect(lazy_frame)
            self._price_plan_stats(stats, sim, run_index, report, pipeline_scope,
                                   streaming=streaming)
            current = collected

        for step in steps:
            preparator = step.spec
            if preparator.supports_lazy:
                base = pending if pending is not None else LazyFrame.from_frame(current)
                extended = preparator.lazy_builder(base, step.params)
                if extended is not None:
                    pending = extended
                    segment.append(step)
                    continue
            # Step cannot be deferred: materialize what is pending, then run it.
            flush(pending)
            pending = None
            segment = []
            result, record = self.execute_step(current, step, sim, run_index=run_index,
                                               lazy=True, pipeline_scope=pipeline_scope,
                                               streaming=streaming)
            report.add(record)
            if result.chained:
                current = result.frame
        flush(pending)
        return current

    def _plan_segment_key(self, segment: Sequence[PipelineStep], streaming: bool) -> str:
        """Memo key of one deferred plan segment (see ``SubstrateMemo``)."""
        from ..core.memo import _stable_digest

        steps = _stable_digest([step.to_dict() for step in segment])
        mode = f"stream{self.stream_chunk_rows}" if streaming else "lazy"
        return (f"{steps}|{mode}|{self.profile.name}|{self.machine.name}"
                f"|{_stable_digest(vars(self.optimizer_settings))}")

    def _plan_op_bytes(self, op, sim: SimulationContext) -> int:
        """Nominal bytes one plan operator touches.

        Reads are priced on the file footprint: a CSV scan parses the whole
        file regardless of projection, while a Parquet scan skips the column
        chunks the optimizer projected away.  Every other operator uses the
        real per-column byte widths of the columns it recorded.
        """
        if op.operator == "read":
            if op.file_format in ("parquet", "rparquet"):
                width = max(1, op.source_columns, op.columns)
                return sim.parquet_bytes * max(1, op.columns) // width
            return sim.csv_bytes
        columns = op.column_names or ("*",) * max(1, op.columns)
        return sim.bytes_for_columns(columns, op.rows_in)

    def _price_plan_stats(self, stats: ExecutionStats, sim: SimulationContext,
                          run_index: int, report: RunReport, pipeline_scope: bool,
                          streaming: bool = False) -> None:
        for op in stats.operators:
            op_class = _PLAN_OP_TO_COST_CLASS.get(op.operator, "elementwise")
            if op_class is None:
                continue
            if op_class == "read_csv" and op.file_format in ("parquet", "rparquet"):
                op_class = "read_parquet"
            priced_rows = op.rows_in
            if op.operator == "join" and op.build_rows:
                # Hash-build weight: building costs ~2x probing per row, so the
                # recorded build side counts twice (rows_in already holds
                # probe + build once).  Join reordering's "build on the
                # smaller side" decision becomes a measured win through this
                # term, mirroring plan-level estimation.
                priced_rows += op.build_rows
            cost = self.cost_model.estimate(
                self.profile, op_class, sim.nominal_row_count(priced_rows),
                max(1, op.columns), bytes_in=self._plan_op_bytes(op, sim),
                dataset_bytes=sim.dataset_bytes,
                lazy=True, run_index=run_index, pipeline_scope=pipeline_scope,
                streaming=streaming,
            )
            report.add(OperationRecord(
                engine=self.name, operation=f"plan:{op.operator}", op_class=op_class,
                stage="plan", seconds=cost.seconds, rows=sim.nominal_row_count(op.rows_in),
                columns=max(1, op.columns), peak_bytes=cost.peak_bytes,
                spilled=cost.spilled, spilled_bytes=cost.spilled_bytes,
                streamed=cost.streamed or op.streamed, lazy=True,
            ))

    # ------------------------------------------------------------------ #
    # cost estimation (the advisor path: nothing is executed)
    # ------------------------------------------------------------------ #
    def plan_cost(self, plan, sim: SimulationContext | None = None, *,
                  lazy: bool = True, streaming: bool = False, catalog=None,
                  scan_stats=None, pipeline_scope: bool = False,
                  run_index: int = 0) -> PlanCost:
        """Estimated cost of a logical plan under this engine's pricing.

        Thin entry point over
        :meth:`~repro.simulate.costmodel.CostModel.estimate_plan` that
        supplies the engine's profile and, when a simulation context is
        given, the nominal row scale and dataset footprint.
        """
        return self.cost_model.estimate_plan(
            self.profile, plan, catalog=catalog, scan_stats=scan_stats,
            row_scale=sim.row_scale if sim is not None else 1.0,
            dataset_bytes=sim.dataset_bytes if sim is not None else None,
            lazy=lazy, streaming=streaming, pipeline_scope=pipeline_scope,
            run_index=run_index)

    def estimate_steps(self, frame: DataFrame, steps: Sequence[PipelineStep],
                       sim: SimulationContext, *, lazy: bool = False,
                       streaming: bool = False, run_index: int = 0) -> PlanCost:
        """Estimated cost of running a pipeline — without executing anything.

        Mirrors the pricing structure of :meth:`execute_steps`: under the
        lazy/streaming strategies, chainable steps are compiled into logical
        plan segments (via each preparator's ``lazy_builder``), optimized
        with the engine's settings and priced by
        :meth:`~repro.simulate.costmodel.CostModel.estimate_plan`; everything
        else — and every step under the eager strategy — is priced per
        operator on the statistics layer's estimated row counts.  Estimated
        table statistics are threaded through the whole pipeline, so a
        filter's selectivity shrinks every downstream operator.  A
        memory-model rejection flags the estimate ``oom`` (the candidate is
        predicted infeasible) instead of raising.  Raises
        :class:`EngineUnavailableError` for file formats the engine cannot
        read or write.
        """
        from ..plan.optimizer import Optimizer
        from ..plan.stats import stats_from_context

        use_lazy = lazy and self.supports_lazy
        use_streaming = streaming and self.supports_streaming
        plan_based = use_lazy or use_streaming
        table = stats_from_context(sim, frame)
        total = PlanCost(out_stats=table)
        pending: LazyFrame | None = None

        def flush() -> None:
            nonlocal pending, table
            if pending is None:
                return
            optimizer = Optimizer(self.optimizer_settings,
                                  cost_model=self.cost_model, profile=self.profile)
            segment = self.cost_model.estimate_plan(
                self.profile, optimizer.optimize(pending.plan), scan_stats=table,
                dataset_bytes=sim.dataset_bytes, lazy=True,
                streaming=use_streaming, pipeline_scope=True, run_index=run_index)
            total.add(segment)
            if segment.out_stats is not None:
                table = segment.out_stats
            pending = None

        for step in steps:
            if total.oom:
                break
            if step.preparator in ("read", "write"):
                flush()
                try:
                    total.add(self._estimate_io(step, sim, run_index, use_streaming))
                except SimulatedOOMError:
                    total.oom = True
                continue
            preparator = step.spec
            if plan_based and preparator.supports_lazy:
                base = pending if pending is not None else LazyFrame.from_frame(frame)
                extended = preparator.lazy_builder(base, step.params)
                if extended is not None:
                    pending = extended
                    continue
            flush()
            touched = preparator.touched_columns(frame, step.params)
            try:
                cost = self.cost_model.estimate(
                    self.profile, preparator.op_class, int(table.rows),
                    max(1, len(touched)), bytes_in=table.bytes_for(touched),
                    dataset_bytes=sim.dataset_bytes, lazy=plan_based,
                    run_index=run_index, pipeline_scope=True,
                    streaming=use_streaming)
            except SimulatedOOMError:
                total.oom = True
                break
            seconds = cost.seconds
            if self.compatibility_for(preparator.name) is Compatibility.MISSING:
                seconds *= self._fallback_penalty(preparator)
            total.seconds += seconds
            total.peak_bytes = max(total.peak_bytes, cost.peak_bytes)
            total.spilled_bytes += cost.spilled_bytes
            total.per_node.append((step.preparator, seconds))
            table = _apply_step_stats(table, step)
        if not total.oom:
            flush()
        total.out_stats = table
        return total

    def _estimate_io(self, step: PipelineStep, sim: SimulationContext,
                     run_index: int, streaming: bool) -> PlanCost:
        """Estimated cost of a read/write pipeline step (no file touched)."""
        file_format = str(step.params.get("format", "csv"))
        if file_format in ("parquet", "rparquet") and not self.supports_parquet:
            raise EngineUnavailableError(f"{self.display_name} does not support Parquet")
        if step.preparator == "read":
            op_class = "read_csv" if file_format == "csv" else "read_parquet"
        else:
            op_class = "write_csv" if file_format == "csv" else "write_parquet"
        bytes_io = sim.csv_bytes if file_format == "csv" else sim.parquet_bytes
        cost = self._price(op_class, sim.physical_rows, list(sim.column_bytes) or ["*"],
                           sim, bytes_in=bytes_io, run_index=run_index,
                           streaming=streaming)
        return PlanCost(seconds=cost.seconds, peak_bytes=cost.peak_bytes,
                        spilled_bytes=cost.spilled_bytes,
                        per_node=[(f"{step.preparator}:{file_format}", cost.seconds)])

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(machine={self.machine.name})"


#: Row-count effects of preparators with no plan node, used while threading
#: estimated statistics through a pipeline (see ``_apply_step_stats``).
def _apply_step_stats(table, step: PipelineStep):
    """Propagate a non-deferrable step's estimated effect on table statistics.

    The null/distinct math lives on :class:`~repro.plan.stats.TableStats`
    (shared with :class:`~repro.plan.stats.StatsEstimator`); this function
    only translates pipeline-step parameter shapes into those helpers.
    """
    from ..plan.stats import (
        DEFAULT_PREDICATE_SELECTIVITY,
        ColumnStats,
        TableStats,
        predicate_selectivity,
    )

    params = step.params
    name = step.preparator
    if name == "query":
        try:
            from ..core.expr_spec import parse_expression

            expression = parse_expression(params.get("predicate")
                                          or params.get("expression"))
        except Exception:
            return table.with_rows(table.rows * DEFAULT_PREDICATE_SELECTIVITY)
        selectivity = min(1.0, max(0.0, predicate_selectivity(expression, table)))
        return table.with_rows(table.rows * selectivity)
    if name == "dropna":
        subset = params.get("subset") or list(table.columns)
        subset = [subset] if isinstance(subset, str) else list(subset)
        return table.drop_nulls(subset, str(params.get("how", "any")))
    if name == "fillna":
        value = params.get("value")
        touched = set(value) if isinstance(value, Mapping) else set(table.columns)
        return table.fill_nulls(touched)
    if name == "dedup":
        subset = params.get("subset") or list(table.columns)
        subset = [subset] if isinstance(subset, str) else list(subset)
        return table.with_rows(table.distinct_count(subset))
    if name == "group":
        from dataclasses import replace as _replace

        keys = params.get("by") or list(table.columns)[:1]
        keys = [keys] if isinstance(keys, str) else list(keys)
        rows = table.distinct_count(keys)
        # key columns become unique in the output, as in the plan estimator
        columns = {key: _replace(table.column(key), distinct_fraction=1.0)
                   for key in keys}
        for out_name in dict(params.get("agg", {})):
            columns[out_name] = ColumnStats()
        return TableStats(rows, columns or dict(table.columns))
    if name == "pivot":
        index = params.get("index")
        rows = table.distinct_count([index]) if index else table.rows
        return table.with_rows(rows)
    if name == "drop":
        dropped = params.get("columns")
        dropped = {dropped} if isinstance(dropped, str) else set(dropped or ())
        return TableStats(table.rows, {n: c for n, c in table.columns.items()
                                       if n not in dropped})
    return table
