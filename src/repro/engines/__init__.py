"""Simulated dataframe engines.

One engine per library evaluated in the paper (plus DuckDB for TPC-H), all
executing the same preparators on the same substrate but with the execution
strategy, cost profile, memory behaviour and API-compatibility level of the
library they stand in for.
"""

from .base import BaseEngine, EngineUnavailableError, SimulationContext
from .cudf_engine import CuDFEngine
from .datatable_engine import DataTableEngine
from .duckdb_engine import DuckDBEngine
from .modin_engine import ModinDaskEngine, ModinRayEngine
from .pandas_engine import PandasEngine
from .polars_engine import PolarsEngine
from .registry import (
    DEFAULT_ENGINES,
    ENGINE_CLASSES,
    TPCH_ENGINES,
    available_engines,
    create_engine,
    create_engines,
)
from .spark_engines import SparkPandasEngine, SparkSQLEngine
from .vaex_engine import VaexEngine

__all__ = [
    "BaseEngine",
    "SimulationContext",
    "EngineUnavailableError",
    "PandasEngine",
    "SparkPandasEngine",
    "SparkSQLEngine",
    "ModinDaskEngine",
    "ModinRayEngine",
    "PolarsEngine",
    "CuDFEngine",
    "VaexEngine",
    "DataTableEngine",
    "DuckDBEngine",
    "ENGINE_CLASSES",
    "DEFAULT_ENGINES",
    "TPCH_ENGINES",
    "create_engine",
    "create_engines",
    "available_engines",
]
