"""Simulated PySpark engines: Pandas-on-Spark (SparkPD) and Spark SQL.

Both engines share the Spark execution substrate in the paper — a JVM-backed,
multithreaded executor with Catalyst query optimization and disk spillover —
but expose different APIs:

* **SparkPD** (Pandas on Spark, né Koalas) translates Pandas calls into Spark
  plans.  Each call pays a translation/driver round trip, which is why the
  paper finds it among the slowest engines for cheap metadata operations while
  benefiting enormously (≈80 % on Patrol) from lazy whole-pipeline execution.
* **SparkSQL** works directly on Spark DataFrames/SQL; it has lower per-call
  overhead, the same optimizer, and the disk-spillover mechanism that makes it
  the only engine completing the largest pipelines on the laptop
  configuration.

Physical execution happens on the substrate; laziness uses the plan layer with
all optimizer rules enabled (Catalyst's early filtering / projection pruning).
"""

from __future__ import annotations

from .base import BaseEngine

__all__ = ["SparkPandasEngine", "SparkSQLEngine"]


class SparkPandasEngine(BaseEngine):
    """Pandas-on-Spark API: Pandas-compatible calls translated to Spark plans."""

    profile_name = "sparkpd"


class SparkSQLEngine(BaseEngine):
    """Spark SQL API: relational operators with Catalyst optimization."""

    profile_name = "sparksql"
