"""Simulated CuDF engine (NVIDIA RAPIDS).

CuDF executes the Pandas API on a single GPU: massive data parallelism for
sorts, joins, group-bys and encodings, at the price of (i) a host-to-device
transfer for the working data, (ii) per-call kernel-launch overhead that
dominates on small datasets (which is why Polars beats it on Athlete), and
(iii) the requirement that the working set fit in GPU memory — CuDF is
excluded from the paper's scalability experiment for exactly this reason.

The engine refuses to instantiate on machines without a GPU
(:class:`~repro.engines.base.EngineUnavailableError`), and the memory model
raises a simulated OOM when the working set exceeds the device memory.
"""

from __future__ import annotations

from .base import BaseEngine

__all__ = ["CuDFEngine"]


class CuDFEngine(BaseEngine):
    """GPU-accelerated engine with a Pandas-like API and no query optimizer."""

    profile_name = "cudf"
