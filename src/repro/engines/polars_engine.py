"""Simulated Polars engine.

Polars (Rust, Arrow-backed) supports both eager and lazy execution; its eager
API often delegates to the lazy engine internally, and the lazy API adds
streaming execution, early filtering and projection pushdown.  Nulls are
tracked with Arrow validity bitmaps, which is why ``isna`` is orders of
magnitude faster than Pandas' element-wise comparison.  Its weakness in the
paper is scalability: the strict in-memory execution model makes it the first
engine to hit OOM when data outgrows RAM.

The lazy path uses the plan layer with every optimizer rule enabled; an
ablation constructor argument lets the benchmarks disable individual rules.
"""

from __future__ import annotations

from ..plan.optimizer import OptimizerSettings
from ..simulate.hardware import PAPER_SERVER, MachineConfig
from .base import BaseEngine

__all__ = ["PolarsEngine"]


class PolarsEngine(BaseEngine):
    """Rust/Arrow engine with eager and lazy (optimized) execution."""

    profile_name = "polars"

    def __init__(self, machine: MachineConfig = PAPER_SERVER,
                 optimizer_settings: OptimizerSettings | None = None):
        super().__init__(machine, optimizer_settings or OptimizerSettings())
