"""Simulated DataTable engine (H2O ``datatable``).

DataTable stores Frames column-oriented in native-C buffers, memory-maps data
on disk, uses copy-on-write sharing, and encodes missing values with
*sentinel* values instead of a validity bitmap.  Statistics are computed when
the Frame is created (making ``stats`` almost free), casts manipulate buffers
in place, and the CSV reader memory-maps the file — but grouping and joining
are comparatively slow, joins only support unique keys (anything else falls
back to Pandas), and Parquet is not supported at all.

The physical ``isna`` below really goes through the sentinel representation
(:meth:`~repro.frame.column.Column.to_sentinel`) to exercise that distinct
code path; results are identical to the bitmap-based engines.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..core.preparators import Preparator, PreparatorResult
from ..frame.column import Column
from ..frame.dtypes import BOOL
from ..frame.frame import DataFrame
from .base import BaseEngine

__all__ = ["DataTableEngine"]


class DataTableEngine(BaseEngine):
    """Column-oriented native-C engine with sentinel-encoded nulls."""

    profile_name = "datatable"

    def _execute_preparator(self, preparator: Preparator, frame: DataFrame,
                            params: Mapping[str, Any]) -> PreparatorResult:
        if preparator.name == "isna":
            return PreparatorResult(frame, output=self._isna_via_sentinels(frame), chained=False)
        return preparator.apply(frame, params)

    def _preparator_path_tag(self, preparator: Preparator, frame: DataFrame) -> str:
        if preparator.name == "isna":
            return "dt-sentinel"  # distinct physical path; never shared
        return super()._preparator_path_tag(preparator, frame)

    @staticmethod
    def _isna_via_sentinels(frame: DataFrame) -> DataFrame:
        """Missing-value mask computed from the sentinel encoding."""
        data: dict[str, Column] = {}
        for name in frame.columns:
            column = frame[name]
            sentinel = column.to_sentinel()
            restored = Column.from_sentinel(np.asarray(sentinel), column.dtype
                                            if column.dtype.value != "categorical" else column.dtype)
            data[name] = Column(~restored.validity, BOOL)
        return DataFrame(data)
