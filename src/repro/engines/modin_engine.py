"""Simulated Modin engines (Dask and Ray executors).

Modin keeps the Pandas data format but partitions the dataframe (by rows,
columns or blocks) and dispatches partition-level tasks to an execution
engine: Dask (centralized scheduler) or Ray (distributed bottom-up
scheduler).  Its 15 core operators cover ~90 % of the Pandas API; anything
else triggers the *default-to-Pandas* mode — the whole frame is converted back
to a single Pandas partition, processed single-threaded, and re-partitioned,
which the paper identifies as Modin's main weakness.

The physical execution below really partitions the substrate frame for
row-parallel preparators (the partition count follows the machine's Ray/Dask
worker configuration) and falls back to whole-frame execution — with the cost
penalty of the Pandas round trip — for preparators outside the core-operator
set.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.compat import Compatibility
from ..core.preparators import Preparator, PreparatorResult
from ..frame.frame import DataFrame, concat_rows
from .base import BaseEngine

__all__ = ["ModinDaskEngine", "ModinRayEngine"]

#: Preparators that are embarrassingly row-parallel and therefore executed
#: per-partition (same result, genuinely partitioned code path).  ``norm`` is
#: excluded: its min-max/z-score statistics are global, so a per-partition
#: pass would change results (real Modin computes them frame-wide too).
_ROW_PARALLEL = {"fillna", "calccol", "setcase", "replace", "edit", "isna", "query"}

#: Cost penalty of the default-to-Pandas round trip (partition merge, single
#: threaded execution, re-partitioning).
_DEFAULT_TO_PANDAS_PENALTY = 4.0


class _ModinEngine(BaseEngine):
    """Shared behaviour of the two Modin executors."""

    def _partition_count(self) -> int:
        return max(2, self.machine.ray_workers if self.profile_name == "modin_ray"
                   else self.machine.dask_workers)

    def _execute_preparator(self, preparator: Preparator, frame: DataFrame,
                            params: Mapping[str, Any]) -> PreparatorResult:
        if preparator.name in _ROW_PARALLEL and frame.num_rows >= 4:
            return self._execute_partitioned(preparator, frame, params)
        return preparator.apply(frame, params)

    def _preparator_path_tag(self, preparator: Preparator, frame: DataFrame) -> str:
        if preparator.name in _ROW_PARALLEL and frame.num_rows >= 4:
            return f"part{self._partition_count()}"
        return super()._preparator_path_tag(preparator, frame)

    def _execute_partitioned(self, preparator: Preparator, frame: DataFrame,
                             params: Mapping[str, Any]) -> PreparatorResult:
        parts = self._partition_count()
        rows = frame.num_rows
        step = max(1, rows // parts)
        pieces: list[DataFrame] = []
        chained = True
        for start in range(0, rows, step):
            chunk = frame.slice(start, step)
            result = preparator.apply(chunk, params)
            chained = result.chained
            pieces.append(result.frame if result.chained else chunk)
        if not chained:
            # Inspection preparators: run once more on the whole frame to get
            # the side output (cheap on the physical sample).
            return preparator.apply(frame, params)
        return PreparatorResult(concat_rows(pieces))

    def _fallback_penalty(self, preparator: Preparator) -> float:
        # Missing API entries trigger Modin's default-to-Pandas mode.
        return _DEFAULT_TO_PANDAS_PENALTY

    def compatibility_for(self, preparator: str) -> Compatibility:
        return super().compatibility_for(preparator)


class ModinDaskEngine(_ModinEngine):
    """Modin running on the Dask executor (centralized scheduler)."""

    profile_name = "modin_dask"


class ModinRayEngine(_ModinEngine):
    """Modin running on the Ray executor (distributed bottom-up scheduler)."""

    profile_name = "modin_ray"
