"""Simulated Pandas engine — the single-threaded, eager baseline.

Pandas is the reference point of every figure in the paper: fully Pandas-API
compatible by definition, eager evaluation (every preparator materializes its
result immediately), no multithreading, no query optimization, the whole
dataset and all intermediates kept in main memory.
"""

from __future__ import annotations

from .base import BaseEngine

__all__ = ["PandasEngine"]


class PandasEngine(BaseEngine):
    """Eager, single-threaded reference engine."""

    profile_name = "pandas"
