"""Simulated Vaex engine.

Vaex memory-maps its data and evaluates column-wise operations as streaming
passes over chunks, backed by virtual columns (expressions stored instead of
materialized).  That makes element-wise transforms, filters and date kernels
extremely cheap and memory-frugal — but group-bys, joins and pivots, whose
outputs are held entirely in memory, are its weak spot (the paper measures it
as by far the slowest engine on TPC-H for this reason).

The chunked physical execution lives in the shared
:func:`repro.plan.streaming.stream_preparator` path of
:class:`~repro.engines.base.BaseEngine`; this subclass only declares *which*
preparators stream (the row-local, chunk-friendly ones) and Vaex's chunk
size.  Whole-pipeline morsel-driven execution comes from the profile's
``streaming_execution`` flag, shared with the other streaming engines.
"""

from __future__ import annotations

from .base import BaseEngine

__all__ = ["VaexEngine"]


class VaexEngine(BaseEngine):
    """Memory-mapped, streaming, column-wise engine."""

    profile_name = "vaex"

    #: Row-local preparators evaluated as streaming passes over row chunks.
    #: ``norm`` (min-max scaling) is deliberately absent: its statistics are
    #: global, so a per-chunk pass would change results.
    streamable_preparators = frozenset(
        {"query", "calccol", "fillna", "dropna", "setcase", "edit", "replace"})

    #: Rows per streamed chunk on the physical sample.
    stream_chunk_rows = 2048
