"""Simulated Vaex engine.

Vaex memory-maps its data and evaluates column-wise operations as streaming
passes over chunks, backed by virtual columns (expressions stored instead of
materialized).  That makes element-wise transforms, filters and date kernels
extremely cheap and memory-frugal — but group-bys, joins and pivots, whose
outputs are held entirely in memory, are its weak spot (the paper measures it
as by far the slowest engine on TPC-H for this reason).

The physical execution below genuinely streams the chunk-friendly preparators
(filter, calccol, fillna, dropna, setcase, norm, edit) over row windows of the
substrate frame and concatenates the results, matching Vaex's execution model;
everything else falls back to whole-frame execution.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.preparators import Preparator, PreparatorResult
from ..frame.frame import DataFrame, concat_rows
from .base import BaseEngine

__all__ = ["VaexEngine"]

#: Preparators evaluated as streaming passes over row chunks.
_STREAMABLE = {"query", "calccol", "fillna", "dropna", "setcase", "norm", "edit", "replace"}

#: Number of rows per streamed chunk on the physical sample.
_CHUNK_ROWS = 2048


class VaexEngine(BaseEngine):
    """Memory-mapped, streaming, column-wise engine."""

    profile_name = "vaex"

    def _execute_preparator(self, preparator: Preparator, frame: DataFrame,
                            params: Mapping[str, Any]) -> PreparatorResult:
        if preparator.name in _STREAMABLE and frame.num_rows > _CHUNK_ROWS:
            return self._execute_streaming(preparator, frame, params)
        return preparator.apply(frame, params)

    def _execute_streaming(self, preparator: Preparator, frame: DataFrame,
                           params: Mapping[str, Any]) -> PreparatorResult:
        pieces: list[DataFrame] = []
        chained = True
        for start in range(0, frame.num_rows, _CHUNK_ROWS):
            chunk = frame.slice(start, _CHUNK_ROWS)
            result = preparator.apply(chunk, params)
            chained = result.chained
            if not chained:
                break
            pieces.append(result.frame)
        if not chained:
            return preparator.apply(frame, params)
        return PreparatorResult(concat_rows(pieces))
