"""The substrate DataFrame.

:class:`DataFrame` is an ordered mapping of column names to
:class:`~repro.frame.column.Column` objects of equal length.  It provides the
full operator vocabulary required by the paper's 27 preparators (Table 3) and
by the 22 TPC-H queries — selection, filtering, sorting, group-by, join,
pivot, deduplication, missing-value handling, string/date transforms,
encodings, descriptive statistics — plus conversion helpers used by the
simulated engines.

The API intentionally resembles Pandas (the "de facto standard" the paper
builds Bento around) without copying it verbatim: every method returns a new
frame, there is no implicit row index, and nulls are first-class citizens.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from . import strings as string_ops
from .column import Column
from .datetimes import extract_component, format_datetime_column, parse_datetime_column
from .dtypes import BOOL, CATEGORICAL, DType, FLOAT64, INT64, parse_dtype
from .errors import (
    ColumnNotFoundError,
    DuplicateColumnError,
    EmptyFrameError,
    LengthMismatchError,
)
from .groupby import GroupBy, aggregate
from .join import hash_join

__all__ = ["DataFrame", "concat_rows"]


class DataFrame:
    """Two-dimensional, column-oriented table with typed, nullable columns."""

    # _plan_stats_cache holds the statistics layer's harvested TableStats
    # (see repro.plan.stats.harvest_frame); plans reference the same frame
    # many times during optimization, so harvesting must be one-shot.
    __slots__ = ("_data", "_plan_stats_cache")

    def __init__(self, data: Mapping[str, "Column | Sequence[Any]"] | None = None):
        self._data: dict[str, Column] = {}
        if not data:
            return
        length: int | None = None
        for name, values in data.items():
            column = values if isinstance(values, Column) else Column.from_values(values)
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise LengthMismatchError(
                    f"column {name!r} has {len(column)} rows, expected {length}"
                )
            if name in self._data:
                raise DuplicateColumnError(f"duplicate column name {name!r}")
            self._data[str(name)] = column

    # ------------------------------------------------------------------ #
    # shape / metadata (EDA preparators: getcols, dtypes)
    # ------------------------------------------------------------------ #
    @property
    def columns(self) -> list[str]:
        """Column names in order (the ``getcols`` preparator)."""
        return list(self._data.keys())

    @property
    def dtypes(self) -> dict[str, DType]:
        """Mapping of column name to logical dtype (the ``dtypes`` preparator)."""
        return {name: col.dtype for name, col in self._data.items()}

    @property
    def num_rows(self) -> int:
        if not self._data:
            return 0
        return len(next(iter(self._data.values())))

    @property
    def num_columns(self) -> int:
        return len(self._data)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_columns)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __getitem__(self, name: str) -> Column:
        try:
            return self._data[name]
        except KeyError:
            raise ColumnNotFoundError(name, tuple(self._data)) from None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DataFrame) and self.equals(other)

    def __hash__(self):  # frames are mutable containers; keep them unhashable
        raise TypeError("DataFrame objects are unhashable")

    def equals(self, other: "DataFrame") -> bool:
        """Column-wise equality, order sensitive, null aware."""
        if self.columns != other.columns:
            return False
        return all(self[name].equals(other[name]) for name in self.columns)

    def memory_usage(self) -> int:
        """Approximate in-memory footprint of all columns, in bytes."""
        return sum(col.memory_usage() for col in self._data.values())

    def copy(self) -> "DataFrame":
        return DataFrame({name: col.copy() for name, col in self._data.items()})

    def to_backend(self, backend: str) -> "DataFrame":
        """Re-represent every column on another physical backend (no-op when
        already there; see :mod:`repro.frame.backends`)."""
        from .backends import convert_frame

        return convert_frame(self, backend)

    def row(self, index: int) -> dict[str, Any]:
        """Single row as a dict (used by tests and examples, not pipelines)."""
        return {name: col[index] for name, col in self._data.items()}

    def to_dict(self) -> dict[str, list[Any]]:
        """Materialize as a plain dict of lists (None for nulls)."""
        return {name: col.to_list() for name, col in self._data.items()}

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, Any]],
                  columns: Sequence[str] | None = None) -> "DataFrame":
        """Build a frame from a list of row dicts."""
        if columns is None:
            seen: dict[str, None] = {}
            for row in rows:
                for key in row:
                    seen.setdefault(key, None)
            columns = list(seen)
        data = {name: [row.get(name) for row in rows] for name in columns}
        return cls(data)

    # ------------------------------------------------------------------ #
    # column-level manipulation (DT preparators: drop, rename, calccol, cast)
    # ------------------------------------------------------------------ #
    def select(self, names: Sequence[str]) -> "DataFrame":
        """Keep only the listed columns, in the given order."""
        missing = [n for n in names if n not in self._data]
        if missing:
            raise ColumnNotFoundError(missing[0], tuple(self._data))
        return DataFrame({name: self._data[name] for name in names})

    def drop(self, names: "str | Sequence[str]") -> "DataFrame":
        """Remove columns (the ``drop`` preparator)."""
        targets = {names} if isinstance(names, str) else set(names)
        missing = targets - set(self._data)
        if missing:
            raise ColumnNotFoundError(sorted(missing)[0], tuple(self._data))
        return DataFrame({n: c for n, c in self._data.items() if n not in targets})

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        """Rename columns (the ``rename`` preparator)."""
        missing = [n for n in mapping if n not in self._data]
        if missing:
            raise ColumnNotFoundError(missing[0], tuple(self._data))
        data: dict[str, Column] = {}
        for name, col in self._data.items():
            new_name = mapping.get(name, name)
            if new_name in data:
                raise DuplicateColumnError(f"rename would duplicate column {new_name!r}")
            data[new_name] = col
        return DataFrame(data)

    def with_column(self, name: str, values: "Column | Sequence[Any]") -> "DataFrame":
        """Add or replace a column (backs the ``calccol`` preparator)."""
        column = values if isinstance(values, Column) else Column.from_values(values)
        if self._data and len(column) != self.num_rows:
            raise LengthMismatchError(
                f"new column {name!r} has {len(column)} rows, frame has {self.num_rows}"
            )
        data = dict(self._data)
        data[name] = column
        return DataFrame(data)

    def with_columns(self, columns: Mapping[str, "Column | Sequence[Any]"]) -> "DataFrame":
        out = self
        for name, values in columns.items():
            out = out.with_column(name, values)
        return out

    def cast(self, mapping: Mapping[str, "DType | str"]) -> "DataFrame":
        """Cast columns to new dtypes (the ``cast`` preparator)."""
        data = dict(self._data)
        for name, dtype in mapping.items():
            if name not in data:
                raise ColumnNotFoundError(name, tuple(self._data))
            data[name] = data[name].cast(parse_dtype(dtype))
        return DataFrame(data)

    # ------------------------------------------------------------------ #
    # row-level selection (EDA: query; DC: dropna, dedup)
    # ------------------------------------------------------------------ #
    def head(self, n: int = 5) -> "DataFrame":
        return DataFrame({name: col.head(n) for name, col in self._data.items()})

    def slice(self, offset: int, length: int | None = None) -> "DataFrame":
        return DataFrame({name: col.slice(offset, length) for name, col in self._data.items()})

    def take(self, indices: np.ndarray) -> "DataFrame":
        return DataFrame({name: col.take(indices) for name, col in self._data.items()})

    def filter(self, mask: "Column | np.ndarray") -> "DataFrame":
        """Keep rows where the boolean mask is True (the ``query`` preparator)."""
        if isinstance(mask, Column):
            mask = mask.to_numpy_bool()
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.num_rows:
            raise LengthMismatchError("filter mask length does not match frame length")
        return DataFrame({name: col.filter(mask) for name, col in self._data.items()})

    def sample(self, fraction: float, seed: int = 7) -> "DataFrame":
        """Random row sample without replacement (used for dataset scaling)."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        n = self.num_rows
        k = max(1, int(round(n * fraction))) if n else 0
        indices = rng.choice(n, size=k, replace=False) if n else np.array([], dtype=np.int64)
        return self.take(np.sort(indices))

    def sort_values(self, by: "str | Sequence[str]", ascending: "bool | Sequence[bool]" = True,
                    nulls_last: bool = True) -> "DataFrame":
        """Sort rows by one or more columns (the ``sort`` preparator).

        Multi-key sort is implemented as repeated stable sorts from the last
        key to the first, the standard radix-style trick.
        """
        keys = [by] if isinstance(by, str) else list(by)
        orders = [ascending] * len(keys) if isinstance(ascending, bool) else list(ascending)
        if len(orders) != len(keys):
            raise ValueError("ascending must be a bool or match the number of sort keys")
        if self.num_rows == 0:
            return self.copy()
        indices = np.arange(self.num_rows)
        for key, asc in zip(reversed(keys), reversed(orders)):
            column = self[key].take(indices)
            order = column.sort_indices(ascending=asc, nulls_last=nulls_last)
            indices = indices[order]
        return self.take(indices)

    def drop_duplicates(self, subset: Sequence[str] | None = None, keep: str = "first") -> "DataFrame":
        """Remove duplicate rows (the ``dedup`` preparator)."""
        if keep not in ("first", "last"):
            raise ValueError("keep must be 'first' or 'last'")
        names = list(subset) if subset else self.columns
        for name in names:
            if name not in self._data:
                raise ColumnNotFoundError(name, tuple(self._data))
        key_lists = [self._data[name].to_list() for name in names]
        seen: dict[tuple, int] = {}
        rows = range(self.num_rows) if keep == "first" else range(self.num_rows - 1, -1, -1)
        for row in rows:
            key = tuple(key_list[row] for key_list in key_lists)
            seen.setdefault(key, row)
        kept = np.array(sorted(seen.values()), dtype=np.int64)
        return self.take(kept)

    def dropna(self, subset: Sequence[str] | None = None, how: str = "any") -> "DataFrame":
        """Drop rows with nulls (the ``dropna`` preparator)."""
        if how not in ("any", "all"):
            raise ValueError("how must be 'any' or 'all'")
        names = list(subset) if subset else self.columns
        if not names:
            return self.copy()
        masks = []
        for name in names:
            if name not in self._data:
                raise ColumnNotFoundError(name, tuple(self._data))
            masks.append(self._data[name].validity)
        stacked = np.vstack(masks)
        keep = stacked.all(axis=0) if how == "any" else stacked.any(axis=0)
        return self.filter(keep)

    # ------------------------------------------------------------------ #
    # missing values (EDA: isna; DC: fillna)
    # ------------------------------------------------------------------ #
    def isna(self) -> "DataFrame":
        """Boolean frame marking nulls (the ``isna`` preparator)."""
        return DataFrame({name: col.is_null() for name, col in self._data.items()})

    def null_counts(self) -> dict[str, int]:
        return {name: col.null_count() for name, col in self._data.items()}

    def null_fraction(self) -> float:
        """Fraction of null cells over all cells (Table 2's ``% Null``)."""
        cells = self.num_rows * self.num_columns
        if cells == 0:
            return 0.0
        return sum(self.null_counts().values()) / cells

    def fillna(self, value: "Any | Mapping[str, Any]") -> "DataFrame":
        """Fill nulls with a scalar or a per-column mapping (``fillna``)."""
        data = dict(self._data)
        if isinstance(value, Mapping):
            for name, fill in value.items():
                if name not in data:
                    raise ColumnNotFoundError(name, tuple(self._data))
                data[name] = data[name].fill_null(fill)
        else:
            for name, col in data.items():
                if col.null_count():
                    try:
                        data[name] = col.fill_null(value)
                    except (TypeError, ValueError):
                        continue
        return DataFrame(data)

    # ------------------------------------------------------------------ #
    # statistics (EDA: stats, outlier)
    # ------------------------------------------------------------------ #
    def describe(self, approximate_quantiles: bool = False) -> "DataFrame":
        """Descriptive statistics for numeric columns (the ``stats`` preparator)."""
        numeric = [n for n, c in self._data.items() if c.dtype.is_numeric]
        stats = ["count", "mean", "std", "min", "q25", "q50", "q75", "max"]
        data: dict[str, list[Any]] = {"statistic": stats}
        for name in numeric:
            col = self._data[name]
            data[name] = [
                float(col.count()),
                col.mean(),
                col.std(),
                None if col.min() is None else float(col.min()),
                col.quantile(0.25, approximate=approximate_quantiles),
                col.quantile(0.50, approximate=approximate_quantiles),
                col.quantile(0.75, approximate=approximate_quantiles),
                None if col.max() is None else float(col.max()),
            ]
        return DataFrame(data)

    def quantile(self, q: float, columns: Sequence[str] | None = None,
                 approximate: bool = False) -> dict[str, float | None]:
        names = columns or [n for n, c in self._data.items() if c.dtype.is_numeric]
        return {name: self._data[name].quantile(q, approximate=approximate) for name in names}

    def locate_outliers(self, column: str, factor: float = 1.5,
                        approximate: bool = False) -> Column:
        """IQR-based outlier mask for one numeric column (the ``outlier`` preparator)."""
        col = self[column]
        q1 = col.quantile(0.25, approximate=approximate)
        q3 = col.quantile(0.75, approximate=approximate)
        if q1 is None or q3 is None:
            return Column(np.zeros(self.num_rows, dtype=bool), BOOL)
        iqr = q3 - q1
        lower, upper = q1 - factor * iqr, q3 + factor * iqr
        floats = col.to_numpy_float()
        mask = (floats < lower) | (floats > upper)
        mask = np.where(np.isnan(floats), False, mask)
        return Column(mask.astype(bool), BOOL)

    # ------------------------------------------------------------------ #
    # string / datetime / value transforms (DC preparators)
    # ------------------------------------------------------------------ #
    def search_pattern(self, column: str, pattern: str, regex: bool = True) -> "DataFrame":
        """Rows whose string column matches a pattern (``srchptn``)."""
        mask = string_ops.contains(self[column], pattern, regex=regex)
        return self.filter(mask)

    def set_case(self, columns: Sequence[str], mode: str = "lower") -> "DataFrame":
        """Change case of string columns (``setcase``)."""
        data = dict(self._data)
        for name in columns:
            data[name] = string_ops.set_case(self[name], mode)
        return DataFrame(data)

    def replace_values(self, column: str, mapping: Mapping[Any, Any]) -> "DataFrame":
        """Replace exact value occurrences in one column (``replace``)."""
        return self.with_column(column, self[column].replace(dict(mapping)))

    def edit_values(self, column: str, func: Callable[[Any], Any],
                    dtype: "DType | str | None" = None) -> "DataFrame":
        """Apply a scalar function to one column (``edit``)."""
        return self.with_column(column, self[column].apply(func, dtype))

    def normalize(self, columns: Sequence[str], method: str = "minmax") -> "DataFrame":
        """Normalize numeric columns (``norm``)."""
        data = dict(self._data)
        for name in columns:
            data[name] = self[name].normalize(method)
        return DataFrame(data)

    def parse_dates(self, columns: Sequence[str], fmt: str | None = None) -> "DataFrame":
        """Parse string columns into DATETIME columns (``chdate``)."""
        data = dict(self._data)
        for name in columns:
            data[name] = parse_datetime_column(self[name], fmt)
        return DataFrame(data)

    def format_dates(self, columns: Sequence[str], fmt: str = "%Y-%m-%d") -> "DataFrame":
        """Format DATETIME columns as strings (``chdate`` output direction)."""
        data = dict(self._data)
        for name in columns:
            data[name] = format_datetime_column(self[name], fmt)
        return DataFrame(data)

    def extract_date_component(self, column: str, component: str, into: str | None = None) -> "DataFrame":
        """Add an integer calendar component column extracted from a date column."""
        return self.with_column(into or f"{column}_{component}",
                                extract_component(self[column], component))

    # ------------------------------------------------------------------ #
    # encodings (DT preparators: onehot, catenc)
    # ------------------------------------------------------------------ #
    def categorical_encode(self, columns: Sequence[str]) -> "DataFrame":
        """Dictionary-encode string columns into integer codes (``catenc``)."""
        data = dict(self._data)
        for name in columns:
            encoded = self[name].cast(CATEGORICAL)
            data[name] = Column(encoded.values.astype(np.int64), INT64, encoded.validity)
        return DataFrame(data)

    def one_hot_encode(self, column: str, prefix: str | None = None,
                       max_categories: int = 64) -> "DataFrame":
        """Expand a string column into 0/1 indicator columns (``onehot``)."""
        source = self[column]
        values = source.to_list()
        categories = sorted({v for v in values if v is not None}, key=str)[:max_categories]
        prefix = prefix if prefix is not None else column
        out = self.drop(column)
        for cat in categories:
            # Null source rows get 0 in every indicator column (Pandas' get_dummies).
            mask = np.array([v == cat for v in values], dtype=np.int64)
            out = out.with_column(f"{prefix}_{cat}", Column(mask, INT64))
        return out

    # ------------------------------------------------------------------ #
    # relational operators (DT: group, join, pivot)
    # ------------------------------------------------------------------ #
    def groupby(self, keys: "str | Sequence[str]") -> GroupBy:
        keys = [keys] if isinstance(keys, str) else list(keys)
        for name in keys:
            if name not in self._data:
                raise ColumnNotFoundError(name, tuple(self._data))
        return GroupBy(self, keys)

    def group_agg(self, keys: "str | Sequence[str]",
                  aggregations: Mapping[str, "str | Sequence[str]"]) -> "DataFrame":
        """Group-by + aggregate in one call (the ``group`` preparator)."""
        keys = [keys] if isinstance(keys, str) else list(keys)
        return aggregate(self, keys, aggregations)

    def join(self, other: "DataFrame", on: "str | Sequence[str] | None" = None,
             left_on: "str | Sequence[str] | None" = None,
             right_on: "str | Sequence[str] | None" = None,
             how: str = "inner", suffix: str = "_right") -> "DataFrame":
        """Equi-join with another frame (the ``join`` preparator)."""
        if on is not None:
            left_on = right_on = on
        if left_on is None or right_on is None:
            raise ValueError("join requires 'on' or both 'left_on' and 'right_on'")
        left_keys = [left_on] if isinstance(left_on, str) else list(left_on)
        right_keys = [right_on] if isinstance(right_on, str) else list(right_on)
        return hash_join(self, other, left_keys, right_keys, how=how, suffix=suffix)

    def pivot_table(self, index: str, columns: str, values: str, aggfunc: str = "mean") -> "DataFrame":
        """Spreadsheet-style pivot (the ``pivot`` preparator).

        Rows are the distinct values of ``index``; one output column per
        distinct value of ``columns``; cells aggregate ``values`` with
        ``aggfunc``.  Missing combinations become nulls.
        """
        if self.num_rows == 0:
            raise EmptyFrameError("pivot_table on an empty frame")
        grouped = self.group_agg([index, columns], {values: aggfunc})
        index_values = []
        seen_index: dict[Any, int] = {}
        for v in grouped[index].to_list():
            if v not in seen_index:
                seen_index[v] = len(index_values)
                index_values.append(v)
        col_values = []
        seen_cols: dict[Any, int] = {}
        for v in grouped[columns].to_list():
            if v not in seen_cols:
                seen_cols[v] = len(col_values)
                col_values.append(v)
        cells: list[list[Any]] = [[None] * len(index_values) for _ in col_values]
        value_list = grouped[values].to_list()
        idx_list = grouped[index].to_list()
        col_list = grouped[columns].to_list()
        for idx_value, col_value, cell in zip(idx_list, col_list, value_list):
            cells[seen_cols[col_value]][seen_index[idx_value]] = cell
        data: dict[str, Any] = {index: Column.from_values(index_values)}
        for col_value, series in zip(col_values, cells):
            data[f"{columns}_{col_value}"] = Column.from_values(series)
        return DataFrame(data)

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def to_string(self, max_rows: int = 10) -> str:
        """Small fixed-width textual rendering for examples and reports."""
        header = self.columns
        rows = [
            [("" if v is None else str(v)) for v in self.row(i).values()]
            for i in range(min(max_rows, self.num_rows))
        ]
        widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
                  for i, h in enumerate(header)]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for r in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        if self.num_rows > max_rows:
            lines.append(f"... ({self.num_rows} rows total)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataFrame(shape={self.shape}, columns={self.columns[:8]})"


def concat_rows(frames: Iterable[DataFrame]) -> DataFrame:
    """Vertically concatenate frames sharing the same schema."""
    frames = list(frames)
    if not frames:
        return DataFrame()
    columns = frames[0].columns
    for frame in frames[1:]:
        if frame.columns != columns:
            raise LengthMismatchError("cannot concatenate frames with different schemas")
    data: dict[str, Column] = {}
    for name in columns:
        pieces = [frame[name] for frame in frames]
        dtype = pieces[0].dtype
        merged_values: list[Any] = []
        for piece in pieces:
            merged_values.extend(piece.to_list())
        # Categorical columns are re-encoded from their merged string values,
        # so chunked execution keeps the dtype a whole-frame pass would have.
        data[name] = Column.from_values(merged_values, dtype)
    return DataFrame(data)
