"""Exception hierarchy for the dataframe substrate.

Every error raised by :mod:`repro.frame`, :mod:`repro.plan` and :mod:`repro.io`
derives from :class:`FrameError`, so callers can catch substrate problems with
a single ``except`` clause while still distinguishing the common failure modes
(unknown column, incompatible dtypes, malformed input, ...).
"""

from __future__ import annotations


class FrameError(Exception):
    """Base class for all substrate errors."""


class ColumnNotFoundError(FrameError, KeyError):
    """A referenced column does not exist in the frame."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        message = f"column {name!r} not found"
        if available:
            message += f"; available columns: {', '.join(available)}"
        super().__init__(message)


class DuplicateColumnError(FrameError, ValueError):
    """A frame would end up with two columns sharing the same name."""


class DTypeError(FrameError, TypeError):
    """An operation received a column of an unsupported or mismatched dtype."""


class LengthMismatchError(FrameError, ValueError):
    """Columns of different lengths were combined into one frame."""


class EmptyFrameError(FrameError, ValueError):
    """An operation that requires rows was applied to an empty frame."""


class JoinError(FrameError, ValueError):
    """Join keys are invalid (missing columns, incompatible dtypes, ...)."""


class ExpressionError(FrameError, ValueError):
    """An expression tree cannot be evaluated against the target frame."""


class PlanError(FrameError, ValueError):
    """A logical plan is malformed or cannot be optimized/executed."""


class IOFormatError(FrameError, ValueError):
    """A file being read does not conform to the expected format."""


class UnsupportedOperationError(FrameError, NotImplementedError):
    """The requested operation is not supported by this engine or dtype."""
