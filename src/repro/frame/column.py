"""Typed column with explicit null handling.

A :class:`Column` couples a numpy storage array with a boolean *validity mask*
(``True`` marks a valid value, ``False`` a null), the Arrow-style
representation used by Polars and CuDF in the paper.  The simulated DataTable
engine instead relies on the sentinel view exposed by
:meth:`Column.to_sentinel` / :meth:`Column.from_sentinel`.

Columns are immutable from the caller's point of view: every operation returns
a new column (copy-on-write is emulated by sharing the underlying buffers when
no mutation is needed).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .dtypes import (
    BOOL,
    CATEGORICAL,
    DATETIME,
    DType,
    FLOAT64,
    INT64,
    STRING,
    common_dtype,
    infer_dtype,
    numpy_storage_dtype,
    parse_dtype,
)
from .backends import ColumnFactory, OBJECT_BACKEND, WILDCARD, active_backend
from .errors import DTypeError, LengthMismatchError

__all__ = ["Column"]

# Sentinels used by the DataTable-style encoding (one per storage kind).
_INT_SENTINEL = np.iinfo(np.int64).min
_FLOAT_SENTINEL = np.nan
_STRING_SENTINEL = ""


def _as_object_array(values: Iterable[Any]) -> np.ndarray:
    # Materialize iterators exactly once: sizing via ``len(list(values))`` and
    # then enumerating the original iterable would consume a generator during
    # sizing and fill nothing.
    if not hasattr(values, "__len__"):
        values = list(values)
    arr = np.empty(len(values), dtype=object)
    for i, item in enumerate(values):
        arr[i] = item
    return arr


class Column:
    """A single named-less, typed column of values with a validity mask."""

    __slots__ = ("dtype", "values", "validity", "categories")

    #: Physical backend this class implements (see :mod:`repro.frame.backends`).
    backend = OBJECT_BACKEND

    def __init__(
        self,
        values: np.ndarray,
        dtype: DType,
        validity: np.ndarray | None = None,
        categories: np.ndarray | None = None,
    ):
        if validity is None:
            validity = np.ones(len(values), dtype=bool)
        if len(validity) != len(values):
            raise LengthMismatchError(
                f"values ({len(values)}) and validity ({len(validity)}) lengths differ"
            )
        self.values = values
        self.validity = validity
        self.dtype = dtype
        self.categories = categories
        if dtype is CATEGORICAL and categories is None:
            raise DTypeError("categorical columns require a category table")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(cls, values: Sequence[Any], dtype: DType | str | None = None) -> "Column":
        """Build a column from a Python sequence or numpy array.

        ``None`` and float NaN entries become nulls.  The dtype is inferred
        when not provided.
        """
        if isinstance(values, Column):
            return values
        if dtype is not None:
            dtype = parse_dtype(dtype)
        if isinstance(values, np.ndarray) and values.dtype != object:
            inferred = infer_dtype(values)
            dtype = dtype or inferred
            if dtype is DATETIME and values.dtype.kind == "M":
                data = values.astype("datetime64[ns]").view(np.int64).copy()
                validity = ~np.isnat(values)
                return cls(data, DATETIME, validity)
            if inferred.is_numeric and dtype.is_numeric:
                data = values.astype(numpy_storage_dtype(dtype))
                validity = np.ones(len(values), dtype=bool)
                if data.dtype.kind == "f":
                    validity = ~np.isnan(values.astype(np.float64))
                    data = np.where(validity, data, 0.0 if dtype is FLOAT64 else 0)
                return cls(np.asarray(data), dtype, validity)
            # fall through to the generic object path for everything else
            values = values.astype(object)

        objs = values if isinstance(values, np.ndarray) else _as_object_array(list(values))
        validity = np.array(
            [not (v is None or (isinstance(v, float) and np.isnan(v))) for v in objs], dtype=bool
        )
        if dtype is None:
            dtype = infer_dtype(objs)
        storage = numpy_storage_dtype(dtype)
        n = len(objs)
        if dtype is STRING:
            data = np.empty(n, dtype=object)
            for i, (v, ok) in enumerate(zip(objs, validity)):
                data[i] = str(v) if ok else None
            # Physical representation is backend-dependent: route through the
            # (typecode, backend) factory so e.g. the "dict" backend can build
            # a dictionary-encoded column from the same normalized parts.
            return ColumnFactory.build(STRING.typecode, active_backend(), data, validity)
        if dtype is CATEGORICAL:
            strings = np.array([str(v) if ok else None for v, ok in zip(objs, validity)], dtype=object)
            return cls._encode_categorical(strings, validity)
        if dtype is DATETIME:
            data = np.zeros(n, dtype=np.int64)
            for i, (v, ok) in enumerate(zip(objs, validity)):
                if not ok:
                    continue
                if isinstance(v, (int, np.integer)):
                    data[i] = int(v)
                elif isinstance(v, (float, np.floating)):
                    data[i] = int(v)
                elif isinstance(v, np.datetime64):
                    data[i] = v.astype("datetime64[ns]").view(np.int64)
                else:
                    from .datetimes import parse_datetime_scalar

                    parsed = parse_datetime_scalar(str(v))
                    if parsed is None:
                        validity[i] = False
                    else:
                        data[i] = parsed
            return cls(data, DATETIME, validity)
        data = np.zeros(n, dtype=storage)
        for i, (v, ok) in enumerate(zip(objs, validity)):
            if not ok:
                continue
            try:
                data[i] = v
            except (TypeError, ValueError) as exc:
                raise DTypeError(f"cannot store {v!r} in a {dtype} column") from exc
        return cls(data, dtype, validity)

    @classmethod
    def _encode_categorical(cls, strings: np.ndarray, validity: np.ndarray) -> "Column":
        valid_strings = [s for s, ok in zip(strings, validity) if ok]
        categories = np.array(sorted(set(valid_strings)), dtype=object)
        lookup = {cat: i for i, cat in enumerate(categories)}
        codes = np.full(len(strings), -1, dtype=np.int32)
        for i, (s, ok) in enumerate(zip(strings, validity)):
            if ok:
                codes[i] = lookup[s]
        return cls(codes, CATEGORICAL, validity.copy(), categories=categories)

    @classmethod
    def full_null(cls, length: int, dtype: DType = FLOAT64) -> "Column":
        """A column of ``length`` nulls."""
        storage = numpy_storage_dtype(dtype)
        if dtype is STRING:
            data = np.empty(length, dtype=object)
            return ColumnFactory.build(STRING.typecode, active_backend(), data,
                                       np.zeros(length, dtype=bool))
        data = np.zeros(length, dtype=storage)
        categories = np.array([], dtype=object) if dtype is CATEGORICAL else None
        return cls(data, dtype, np.zeros(length, dtype=bool), categories=categories)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.to_list())

    def __getitem__(self, index: int) -> Any:
        if isinstance(index, (int, np.integer)):
            if not self.validity[index]:
                return None
            return self._decode(self.values[index])
        raise TypeError("Column indexing supports single integer positions only")

    def _decode(self, raw: Any) -> Any:
        if self.dtype is CATEGORICAL:
            return self.categories[int(raw)]
        if self.dtype is BOOL:
            return bool(raw)
        if self.dtype is INT64:
            return int(raw)
        if self.dtype is FLOAT64:
            return float(raw)
        if self.dtype is DATETIME:
            return int(raw)
        return raw

    def to_list(self) -> list[Any]:
        """Materialize as a Python list with ``None`` for nulls."""
        return [self[i] for i in range(len(self))]

    def copy(self) -> "Column":
        return type(self)(self.values.copy(), self.dtype, self.validity.copy(),
                          None if self.categories is None else self.categories.copy())

    def to_backend(self, backend: str) -> "Column":
        """Re-represent this column on another physical backend."""
        from .backends import convert_column

        return convert_column(self, backend)

    def equals(self, other: "Column") -> bool:
        """Exact equality including null positions (NaN-safe for floats)."""
        if not isinstance(other, Column) or len(self) != len(other) or self.dtype != other.dtype:
            return False
        if not np.array_equal(self.validity, other.validity):
            return False
        mine, theirs = self.to_list(), other.to_list()
        for a, b in zip(mine, theirs):
            if a is None and b is None:
                continue
            if isinstance(a, float) and isinstance(b, float):
                if np.isnan(a) and np.isnan(b):
                    continue
                if abs(a - b) > 1e-9 * max(1.0, abs(a), abs(b)):
                    return False
            elif a != b:
                return False
        return True

    # ------------------------------------------------------------------ #
    # nulls
    # ------------------------------------------------------------------ #
    def null_count(self) -> int:
        return int((~self.validity).sum())

    def is_null(self) -> "Column":
        """Boolean column marking nulls (the ``isna`` preparator)."""
        return Column(~self.validity.copy(), BOOL)

    def not_null(self) -> "Column":
        return Column(self.validity.copy(), BOOL)

    def fill_null(self, value: Any) -> "Column":
        """Replace nulls with ``value`` (the ``fillna`` preparator)."""
        if self.null_count() == 0:
            return self.copy()
        out = self.copy()
        if self.dtype is STRING:
            out.values[~out.validity] = str(value)
        elif self.dtype is CATEGORICAL:
            text = str(value)
            if text not in set(out.categories.tolist()):
                out.categories = np.append(out.categories, text)
            code = int(np.where(out.categories == text)[0][0])
            out.values[~out.validity] = code
        else:
            out.values[~out.validity] = value
        out.validity[:] = True
        return out

    def drop_null(self) -> "Column":
        return self.filter(self.validity)

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #
    def take(self, indices: np.ndarray) -> "Column":
        indices = np.asarray(indices)
        return type(self)(self.values[indices], self.dtype, self.validity[indices],
                          self.categories)

    def filter(self, mask: "np.ndarray | Column") -> "Column":
        if isinstance(mask, Column):
            mask = mask.to_numpy_bool()
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(self):
            raise LengthMismatchError("filter mask length does not match column length")
        return type(self)(self.values[mask], self.dtype, self.validity[mask], self.categories)

    def slice(self, offset: int, length: int | None = None) -> "Column":
        stop = len(self) if length is None else min(len(self), offset + length)
        return type(self)(self.values[offset:stop], self.dtype, self.validity[offset:stop],
                          self.categories)

    def head(self, n: int) -> "Column":
        return self.slice(0, n)

    # ------------------------------------------------------------------ #
    # conversion helpers
    # ------------------------------------------------------------------ #
    def to_numpy_float(self) -> np.ndarray:
        """Float view with NaN for nulls (numeric/datetime columns only)."""
        if self.dtype is STRING or self.dtype is CATEGORICAL:
            raise DTypeError(f"cannot view {self.dtype} column as float")
        out = self.values.astype(np.float64)
        out[~self.validity] = np.nan
        return out

    def to_numpy_bool(self) -> np.ndarray:
        """Boolean mask view; nulls count as False (SQL-like semantics)."""
        if self.dtype is not BOOL:
            raise DTypeError("expected a BOOL column")
        return np.asarray(self.values, dtype=bool) & self.validity

    def to_string_array(self) -> np.ndarray:
        """Object array of strings with ``None`` for nulls."""
        if self.dtype is STRING:
            out = self.values.copy()
            out[~self.validity] = None
            return out
        if self.dtype is CATEGORICAL:
            out = np.empty(len(self), dtype=object)
            for i in range(len(self)):
                out[i] = self.categories[self.values[i]] if self.validity[i] else None
            return out
        out = np.empty(len(self), dtype=object)
        for i in range(len(self)):
            out[i] = None if not self.validity[i] else str(self._decode(self.values[i]))
        return out

    def memory_usage(self) -> int:
        """Approximate in-memory footprint in bytes.

        String columns are sized from their actual average length (plus a
        small per-object overhead) so that the simulated dataset sizes track
        the generated data rather than a fixed per-string budget.
        """
        n = len(self)
        if self.dtype is STRING:
            sample = self.values[:1024]
            lengths = [len(v) for v in sample if isinstance(v, str)]
            avg = (sum(lengths) / len(lengths)) if lengths else 8.0
            return int(n * (avg + 16)) + n // 8 + 1
        base = n * self.dtype.itemsize + n // 8 + 1
        if self.dtype is CATEGORICAL and self.categories is not None:
            base += int(sum(len(str(c)) for c in self.categories))
        return base

    # ------------------------------------------------------------------ #
    # sentinel view (DataTable-style encoding)
    # ------------------------------------------------------------------ #
    def to_sentinel(self) -> np.ndarray:
        """Single-buffer representation with sentinel-encoded nulls."""
        if self.dtype is INT64 or self.dtype is DATETIME:
            out = self.values.astype(np.int64).copy()
            out[~self.validity] = _INT_SENTINEL
            return out
        if self.dtype is FLOAT64:
            out = self.values.astype(np.float64).copy()
            out[~self.validity] = _FLOAT_SENTINEL
            return out
        if self.dtype is BOOL:
            out = self.values.astype(np.int8).copy()
            out[~self.validity] = -1
            return out
        out = self.to_string_array()
        out[~self.validity] = _STRING_SENTINEL
        return out

    @classmethod
    def from_sentinel(cls, data: np.ndarray, dtype: DType) -> "Column":
        """Inverse of :meth:`to_sentinel`."""
        dtype = parse_dtype(dtype)
        if dtype is INT64 or dtype is DATETIME:
            validity = data != _INT_SENTINEL
            values = np.where(validity, data, 0).astype(np.int64)
            return cls(values, dtype, validity)
        if dtype is FLOAT64:
            validity = ~np.isnan(data)
            values = np.where(validity, data, 0.0)
            return cls(values, dtype, validity)
        if dtype is BOOL:
            validity = data >= 0
            return cls(np.where(validity, data, 0).astype(bool), BOOL, validity)
        validity = np.array([bool(v) for v in data], dtype=bool)
        values = np.array([v if v else None for v in data], dtype=object)
        return cls(values, STRING, validity)

    # ------------------------------------------------------------------ #
    # casting
    # ------------------------------------------------------------------ #
    def cast(self, dtype: DType | str) -> "Column":
        """Cast to another logical dtype (the ``cast`` preparator)."""
        target = parse_dtype(dtype)
        if target == self.dtype:
            return self.copy()
        if target is STRING:
            return Column(self.to_string_array(), STRING, self.validity.copy())
        if target is CATEGORICAL:
            return Column._encode_categorical(self.to_string_array(), self.validity.copy())
        if self.dtype in (STRING, CATEGORICAL):
            strings = self.to_string_array()
            return Column.from_values(strings.tolist(), target)
        if target is BOOL:
            values = self.values.astype(bool)
            return Column(values, BOOL, self.validity.copy())
        if target in (INT64, DATETIME):
            values = self.values.astype(np.int64)
            return Column(values, target, self.validity.copy())
        if target is FLOAT64:
            values = self.values.astype(np.float64)
            return Column(values, FLOAT64, self.validity.copy())
        raise DTypeError(f"unsupported cast {self.dtype} -> {target}")

    # ------------------------------------------------------------------ #
    # elementwise arithmetic / comparison
    # ------------------------------------------------------------------ #
    def _binary_numeric(self, other: "Column | Any", op: Callable, result_dtype: DType | None) -> "Column":
        if isinstance(other, Column):
            if len(other) != len(self):
                raise LengthMismatchError("binary operation on columns of different lengths")
            validity = self.validity & other.validity
            left = self.values.astype(np.float64)
            right = other.values.astype(np.float64)
            dtype = result_dtype or common_dtype(self.dtype, other.dtype)
        else:
            validity = self.validity.copy()
            left = self.values.astype(np.float64)
            right = float(other)
            dtype = result_dtype or (
                FLOAT64 if isinstance(other, float) or self.dtype is FLOAT64 else self.dtype
            )
        with np.errstate(divide="ignore", invalid="ignore"):
            raw = op(left, right)
        if dtype is BOOL:
            values = np.asarray(raw, dtype=bool)
        elif dtype is FLOAT64:
            values = np.asarray(raw, dtype=np.float64)
            bad = ~np.isfinite(values)
            validity = validity & ~bad
            values = np.where(validity, values, 0.0)
        else:
            values = np.asarray(np.nan_to_num(raw), dtype=numpy_storage_dtype(dtype))
        return Column(values, dtype, validity)

    def _ensure_numeric(self, op_name: str) -> None:
        if self.dtype in (STRING, CATEGORICAL):
            raise DTypeError(f"{op_name} requires a numeric column, got {self.dtype}")

    def add(self, other: "Column | Any") -> "Column":
        self._ensure_numeric("add")
        return self._binary_numeric(other, np.add, None)

    def sub(self, other: "Column | Any") -> "Column":
        self._ensure_numeric("sub")
        return self._binary_numeric(other, np.subtract, None)

    def mul(self, other: "Column | Any") -> "Column":
        self._ensure_numeric("mul")
        return self._binary_numeric(other, np.multiply, None)

    def div(self, other: "Column | Any") -> "Column":
        self._ensure_numeric("div")
        return self._binary_numeric(other, np.divide, FLOAT64)

    def neg(self) -> "Column":
        self._ensure_numeric("neg")
        return self._binary_numeric(-1, np.multiply, None)

    def _compare(self, other: "Column | Any", op: Callable) -> "Column":
        if self.dtype in (STRING, CATEGORICAL) or (
            isinstance(other, Column) and other.dtype in (STRING, CATEGORICAL)
        ) or isinstance(other, str):
            left = self.to_string_array()
            if isinstance(other, Column):
                right = other.to_string_array()
                validity = self.validity & other.validity
            else:
                right = np.full(len(self), str(other), dtype=object)
                validity = self.validity.copy()
            values = np.zeros(len(self), dtype=bool)
            for i in range(len(self)):
                if validity[i]:
                    values[i] = bool(op(left[i], right[i]))
            return Column(values, BOOL, validity)
        return self._binary_numeric(other, op, BOOL)

    def eq(self, other: "Column | Any") -> "Column":
        return self._compare(other, np.equal if not isinstance(other, str) else (lambda a, b: a == b))

    def ne(self, other: "Column | Any") -> "Column":
        out = self.eq(other)
        return Column(~out.values, BOOL, out.validity)

    def lt(self, other: "Column | Any") -> "Column":
        return self._compare(other, np.less if not isinstance(other, str) else (lambda a, b: a < b))

    def le(self, other: "Column | Any") -> "Column":
        return self._compare(other, np.less_equal if not isinstance(other, str) else (lambda a, b: a <= b))

    def gt(self, other: "Column | Any") -> "Column":
        return self._compare(other, np.greater if not isinstance(other, str) else (lambda a, b: a > b))

    def ge(self, other: "Column | Any") -> "Column":
        return self._compare(other, np.greater_equal if not isinstance(other, str) else (lambda a, b: a >= b))

    def logical_and(self, other: "Column") -> "Column":
        return Column(self.to_numpy_bool() & other.to_numpy_bool(), BOOL)

    def logical_or(self, other: "Column") -> "Column":
        return Column(self.to_numpy_bool() | other.to_numpy_bool(), BOOL)

    def logical_not(self) -> "Column":
        return Column(~self.to_numpy_bool(), BOOL)

    def is_in(self, values: Iterable[Any]) -> "Column":
        lookup = set(values)
        out = np.zeros(len(self), dtype=bool)
        for i, v in enumerate(self.to_list()):
            out[i] = v in lookup
        return Column(out, BOOL, self.validity.copy())

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def _valid_floats(self) -> np.ndarray:
        return self.values[self.validity].astype(np.float64)

    def count(self) -> int:
        return int(self.validity.sum())

    def sum(self) -> float:
        self._ensure_numeric("sum")
        vals = self._valid_floats()
        return float(vals.sum()) if len(vals) else 0.0

    def mean(self) -> float | None:
        self._ensure_numeric("mean")
        vals = self._valid_floats()
        return float(vals.mean()) if len(vals) else None

    def min(self) -> Any:
        vals = [v for v in self.to_list() if v is not None]
        return min(vals) if vals else None

    def max(self) -> Any:
        vals = [v for v in self.to_list() if v is not None]
        return max(vals) if vals else None

    def std(self) -> float | None:
        self._ensure_numeric("std")
        vals = self._valid_floats()
        if len(vals) < 2:
            return None
        return float(vals.std(ddof=1))

    def var(self) -> float | None:
        out = self.std()
        return None if out is None else out * out

    def nunique(self) -> int:
        return len({v for v in self.to_list() if v is not None})

    def quantile(self, q: float, approximate: bool = False, sample_size: int = 4096,
                 seed: int = 13) -> float | None:
        """Quantile of the valid values.

        ``approximate=True`` follows the Spark/Polars strategy described in
        the paper for the ``outlier`` preparator: a bounded-size random sample
        is used instead of a full sort, trading a small error for speed.
        """
        self._ensure_numeric("quantile")
        vals = self._valid_floats()
        if len(vals) == 0:
            return None
        if approximate and len(vals) > sample_size:
            rng = np.random.default_rng(seed)
            vals = rng.choice(vals, size=sample_size, replace=False)
        return float(np.quantile(vals, q))

    def unique(self) -> "Column":
        seen: dict[Any, None] = {}
        for v in self.to_list():
            if v is not None and v not in seen:
                seen[v] = None
        return Column.from_values(list(seen.keys()), self.dtype if self.dtype is not CATEGORICAL else STRING)

    def value_counts(self) -> dict[Any, int]:
        counts: dict[Any, int] = {}
        for v in self.to_list():
            if v is None:
                continue
            counts[v] = counts.get(v, 0) + 1
        return counts

    def mode(self) -> Any:
        counts = self.value_counts()
        if not counts:
            return None
        return max(counts.items(), key=lambda kv: (kv[1], str(kv[0])))[0]

    # ------------------------------------------------------------------ #
    # ordering
    # ------------------------------------------------------------------ #
    def _sort_keys(self) -> np.ndarray:
        """Array whose stable argsort orders the valid values ascending.

        Null rows may carry any key; :meth:`sort_indices` regroups them at the
        requested end afterwards.  Backends override this to sort on their
        physical representation (e.g. dictionary codes) instead of decoding.
        """
        if self.dtype in (STRING, CATEGORICAL):
            strings = self.to_string_array()
            return np.array([s if s is not None else "" for s in strings], dtype=object)
        floats = self.values.astype(np.float64).copy()
        floats[~self.validity] = np.inf
        return floats

    def sort_indices(self, ascending: bool = True, nulls_last: bool = True) -> np.ndarray:
        """Stable argsort with nulls grouped at one end."""
        order = np.argsort(self._sort_keys(), kind="stable")
        if not ascending:
            valid_part = order[self.validity[order]]
            null_part = order[~self.validity[order]]
            order = np.concatenate([valid_part[::-1], null_part])
        else:
            valid_part = order[self.validity[order]]
            null_part = order[~self.validity[order]]
            order = np.concatenate([valid_part, null_part])
        if not nulls_last:
            valid_part = order[self.validity[order]]
            null_part = order[~self.validity[order]]
            order = np.concatenate([null_part, valid_part])
        return order

    # ------------------------------------------------------------------ #
    # value replacement / normalization
    # ------------------------------------------------------------------ #
    def replace(self, mapping: dict[Any, Any]) -> "Column":
        """Replace occurrences of keys with values (the ``replace`` preparator)."""
        out = self.to_list()
        changed = False
        for i, v in enumerate(out):
            if v in mapping:
                out[i] = mapping[v]
                changed = True
        if not changed:
            return self.copy()
        dtype = self.dtype if self.dtype is not CATEGORICAL else STRING
        try:
            return Column.from_values(out, dtype)
        except DTypeError:
            return Column.from_values(out)

    def clip(self, lower: float | None = None, upper: float | None = None) -> "Column":
        self._ensure_numeric("clip")
        values = self.values.astype(np.float64).copy()
        if lower is not None:
            values = np.maximum(values, lower)
        if upper is not None:
            values = np.minimum(values, upper)
        dtype = FLOAT64 if self.dtype is FLOAT64 else self.dtype
        return Column(values.astype(numpy_storage_dtype(dtype)), dtype, self.validity.copy())

    def normalize(self, method: str = "minmax") -> "Column":
        """Normalize numeric values (the ``norm`` preparator).

        ``minmax`` rescales into [0, 1]; ``zscore`` standardizes to zero mean
        and unit variance.  Constant columns map to 0.0.
        """
        self._ensure_numeric("normalize")
        vals = self.to_numpy_float()
        valid = self.validity
        out = np.zeros(len(self), dtype=np.float64)
        if valid.any():
            src = vals[valid]
            if method == "minmax":
                lo, hi = float(np.nanmin(src)), float(np.nanmax(src))
                span = hi - lo
                out[valid] = 0.0 if span == 0 else (src - lo) / span
            elif method == "zscore":
                mu, sigma = float(np.nanmean(src)), float(np.nanstd(src))
                out[valid] = 0.0 if sigma == 0 else (src - mu) / sigma
            else:
                raise ValueError(f"unknown normalization method {method!r}")
        return Column(out, FLOAT64, valid.copy())

    def apply(self, func: Callable[[Any], Any], dtype: DType | str | None = None) -> "Column":
        """Apply a Python function to every non-null value (the ``edit`` preparator)."""
        out = [func(v) if v is not None else None for v in self.to_list()]
        return Column.from_values(out, dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(v) for v in self.to_list()[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column<{self.dtype}, n={len(self)}, nulls={self.null_count()}>[{preview}{suffix}]"


# --------------------------------------------------------------------------- #
# "object" reference backend registration
# --------------------------------------------------------------------------- #
def _build_object_string(values: np.ndarray, validity: np.ndarray) -> Column:
    return Column(values, STRING, validity)


def _build_object_any(values: np.ndarray, dtype: DType, validity: np.ndarray,
                      categories: np.ndarray | None = None) -> Column:
    return Column(values, dtype, validity, categories)


ColumnFactory.register((STRING.typecode, OBJECT_BACKEND), _build_object_string)
ColumnFactory.register((WILDCARD, OBJECT_BACKEND), _build_object_any)
