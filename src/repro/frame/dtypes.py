"""Logical data types for substrate columns.

The substrate supports a small, closed set of logical dtypes that is
sufficient for every preparator in the paper and for the TPC-H queries:

* ``INT64``      — 64-bit signed integers
* ``FLOAT64``    — double precision floats
* ``BOOL``       — booleans
* ``STRING``     — variable-length unicode strings
* ``DATETIME``   — nanoseconds since the Unix epoch (int64 payload)
* ``CATEGORICAL``— dictionary-encoded strings (int32 codes + category table)

Each logical dtype maps onto a numpy storage dtype; null handling is done with
an external validity mask (see :mod:`repro.frame.column`), mirroring the
Arrow-style representation used by Polars/CuDF in the paper, with an optional
sentinel representation used by the simulated DataTable engine.
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from .errors import DTypeError

__all__ = [
    "DType",
    "INT64",
    "FLOAT64",
    "BOOL",
    "STRING",
    "DATETIME",
    "CATEGORICAL",
    "infer_dtype",
    "numpy_storage_dtype",
    "is_numeric",
    "common_dtype",
    "parse_dtype",
]


class DType(enum.Enum):
    """Logical column type."""

    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    STRING = "string"
    DATETIME = "datetime"
    CATEGORICAL = "categorical"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def typecode(self) -> str:
        """String key used to register column builders per backend
        (see :class:`repro.frame.backends.ColumnFactory`)."""
        return self.value

    @property
    def is_numeric(self) -> bool:
        return self in (DType.INT64, DType.FLOAT64, DType.BOOL)

    @property
    def is_temporal(self) -> bool:
        return self is DType.DATETIME

    @property
    def itemsize(self) -> int:
        """Approximate per-value storage footprint in bytes.

        Strings are assigned an average budget of 32 bytes, which matches the
        memory model used to extrapolate dataset sizes (Table 2 reports string
        length ranges; 32 bytes is a conservative mid-point including object
        overhead).
        """
        return _ITEMSIZE[self]


INT64 = DType.INT64
FLOAT64 = DType.FLOAT64
BOOL = DType.BOOL
STRING = DType.STRING
DATETIME = DType.DATETIME
CATEGORICAL = DType.CATEGORICAL

_ITEMSIZE = {
    DType.INT64: 8,
    DType.FLOAT64: 8,
    DType.BOOL: 1,
    DType.STRING: 32,
    DType.DATETIME: 8,
    DType.CATEGORICAL: 4,
}

_STORAGE = {
    DType.INT64: np.dtype(np.int64),
    DType.FLOAT64: np.dtype(np.float64),
    DType.BOOL: np.dtype(np.bool_),
    DType.STRING: np.dtype(object),
    DType.DATETIME: np.dtype(np.int64),
    DType.CATEGORICAL: np.dtype(np.int32),
}

_ALIASES = {
    "int": DType.INT64,
    "int64": DType.INT64,
    "integer": DType.INT64,
    "float": DType.FLOAT64,
    "float64": DType.FLOAT64,
    "double": DType.FLOAT64,
    "bool": DType.BOOL,
    "boolean": DType.BOOL,
    "str": DType.STRING,
    "string": DType.STRING,
    "object": DType.STRING,
    "datetime": DType.DATETIME,
    "timestamp": DType.DATETIME,
    "date": DType.DATETIME,
    "category": DType.CATEGORICAL,
    "categorical": DType.CATEGORICAL,
}


def parse_dtype(value: "DType | str") -> DType:
    """Turn a dtype or a user-facing alias string into a :class:`DType`."""
    if isinstance(value, DType):
        return value
    if isinstance(value, str):
        key = value.strip().lower()
        if key in _ALIASES:
            return _ALIASES[key]
    raise DTypeError(f"unknown dtype {value!r}")


def numpy_storage_dtype(dtype: DType) -> np.dtype:
    """Numpy dtype used to store values of the given logical dtype."""
    return _STORAGE[dtype]


def is_numeric(dtype: DType) -> bool:
    return dtype.is_numeric


def infer_dtype(values: Any) -> DType:
    """Infer the logical dtype of a Python/numpy sequence.

    ``None`` and NaN entries are ignored during inference; a sequence with only
    nulls defaults to ``FLOAT64`` (the same behaviour Pandas exhibits).
    """
    arr = np.asarray(values, dtype=object) if not isinstance(values, np.ndarray) else values
    if arr.dtype != object:
        kind = arr.dtype.kind
        if kind in "iu":
            return DType.INT64
        if kind == "f":
            return DType.FLOAT64
        if kind == "b":
            return DType.BOOL
        if kind == "M":
            return DType.DATETIME
        if kind in "US":
            return DType.STRING
        return DType.STRING
    saw_float = saw_int = saw_bool = saw_str = False
    for item in arr.ravel():
        if item is None or (isinstance(item, float) and np.isnan(item)):
            continue
        if isinstance(item, bool) or isinstance(item, np.bool_):
            saw_bool = True
        elif isinstance(item, (int, np.integer)):
            saw_int = True
        elif isinstance(item, (float, np.floating)):
            saw_float = True
        elif isinstance(item, str):
            saw_str = True
        else:
            saw_str = True
    if saw_str:
        return DType.STRING
    if saw_float:
        return DType.FLOAT64
    if saw_int:
        return DType.INT64
    if saw_bool:
        return DType.BOOL
    return DType.FLOAT64


def common_dtype(left: DType, right: DType) -> DType:
    """Result dtype of an arithmetic operation between two numeric dtypes."""
    if left == right:
        return left
    numeric_order = {DType.BOOL: 0, DType.INT64: 1, DType.FLOAT64: 2}
    if left in numeric_order and right in numeric_order:
        return left if numeric_order[left] >= numeric_order[right] else right
    if DType.STRING in (left, right):
        return DType.STRING
    if DType.DATETIME in (left, right):
        other = right if left is DType.DATETIME else left
        if other in (DType.INT64, DType.FLOAT64):
            return DType.DATETIME
    raise DTypeError(f"no common dtype between {left} and {right}")
