"""Columnar dataframe substrate.

This package implements, from scratch on top of numpy, the dataframe data
structure that every library evaluated in the paper exposes: typed nullable
columns, a two-dimensional frame, group-by, joins, pivots, string and datetime
kernels, and an expression AST used by the lazy engines.
"""

from .backends import (
    ColumnFactory,
    active_backend,
    convert_column,
    convert_frame,
    known_backends,
    set_default_backend,
    use_backend,
)
from .column import Column
from .dictionary import DictStringColumn
from .dtypes import (
    BOOL,
    CATEGORICAL,
    DATETIME,
    DType,
    FLOAT64,
    INT64,
    STRING,
    infer_dtype,
    parse_dtype,
)
from .errors import (
    ColumnNotFoundError,
    DTypeError,
    DuplicateColumnError,
    EmptyFrameError,
    ExpressionError,
    FrameError,
    IOFormatError,
    JoinError,
    LengthMismatchError,
    PlanError,
    UnsupportedOperationError,
)
from .expressions import Expression, col, lit
from .frame import DataFrame, concat_rows
from .sharing import FrameManifest, SharedFrameStore, attach_frame, export_frame

__all__ = [
    "Column",
    "ColumnFactory",
    "DictStringColumn",
    "active_backend",
    "convert_column",
    "convert_frame",
    "known_backends",
    "set_default_backend",
    "use_backend",
    "DataFrame",
    "concat_rows",
    "FrameManifest",
    "SharedFrameStore",
    "attach_frame",
    "export_frame",
    "DType",
    "INT64",
    "FLOAT64",
    "BOOL",
    "STRING",
    "DATETIME",
    "CATEGORICAL",
    "infer_dtype",
    "parse_dtype",
    "Expression",
    "col",
    "lit",
    "FrameError",
    "ColumnNotFoundError",
    "DuplicateColumnError",
    "DTypeError",
    "LengthMismatchError",
    "EmptyFrameError",
    "JoinError",
    "ExpressionError",
    "PlanError",
    "IOFormatError",
    "UnsupportedOperationError",
]
